//! Offline shim for the `smallvec` crate (see `crates/shims/README.md`).
//!
//! [`SmallVec<T, N>`] stores up to `N` elements inline (no heap allocation)
//! and spills to a `Vec<T>` beyond that. The workspace uses it on the
//! per-packet forwarding path, where port lists are almost always tiny
//! (a unicast output is one port; home-scale floods are a handful), so the
//! inline representation makes the common case allocation-free.
//!
//! The API mirrors the subset of the real crate's v2 generics form that the
//! workspace uses; `T: Copy + Default` keeps the inline buffer simple (no
//! `MaybeUninit` plumbing) and holds for the small id types stored here.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A vector with inline capacity `N`, spilling to the heap when it grows
/// past `N` elements.
#[derive(Clone)]
pub struct SmallVec<T: Copy + Default, const N: usize> {
    inline: [T; N],
    len: usize,
    /// `Some` once spilled; the inline buffer is then unused.
    spill: Option<Vec<T>>,
}

impl<T: Copy + Default, const N: usize> SmallVec<T, N> {
    /// An empty vector (inline, no allocation).
    pub fn new() -> Self {
        SmallVec { inline: [T::default(); N], len: 0, spill: None }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.spill {
            Some(v) => v.len(),
            None => self.len,
        }
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the contents have spilled to the heap.
    pub fn spilled(&self) -> bool {
        self.spill.is_some()
    }

    /// Append an element.
    pub fn push(&mut self, value: T) {
        if let Some(v) = &mut self.spill {
            v.push(value);
            return;
        }
        if self.len < N {
            self.inline[self.len] = value;
            self.len += 1;
        } else {
            let mut v = Vec::with_capacity(N * 2);
            v.extend_from_slice(&self.inline[..self.len]);
            v.push(value);
            self.spill = Some(v);
        }
    }

    /// Remove all elements, keeping any spilled capacity.
    pub fn clear(&mut self) {
        if let Some(v) = &mut self.spill {
            v.clear();
        }
        self.len = 0;
    }

    /// Copy from a slice.
    pub fn from_slice(s: &[T]) -> Self {
        let mut out = Self::new();
        for &x in s {
            out.push(x);
        }
        out
    }

    /// Insert `value` at `index`, shifting later elements right.
    pub fn insert(&mut self, index: usize, value: T) {
        let len = self.len();
        assert!(index <= len, "insertion index {index} out of bounds (len {len})");
        if let Some(v) = &mut self.spill {
            v.insert(index, value);
            return;
        }
        if len < N {
            self.inline.copy_within(index..len, index + 1);
            self.inline[index] = value;
            self.len += 1;
        } else {
            let mut v = Vec::with_capacity(N * 2);
            v.extend_from_slice(&self.inline[..index]);
            v.push(value);
            v.extend_from_slice(&self.inline[index..len]);
            self.spill = Some(v);
        }
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.spill {
            Some(v) => v.as_slice(),
            None => &self.inline[..self.len],
        }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.spill {
            Some(v) => v.as_mut_slice(),
            None => &mut self.inline[..self.len],
        }
    }

    /// Copy the contents into a plain `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for SmallVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<Vec<T>> for SmallVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> From<Vec<T>> for SmallVec<T, N> {
    fn from(v: Vec<T>) -> Self {
        if v.len() > N {
            SmallVec { inline: [T::default(); N], len: 0, spill: Some(v) }
        } else {
            Self::from_slice(&v)
        }
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = Self::new();
        for x in iter {
            out.push(x);
        }
        out
    }
}

impl<T: Copy + Default, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Owning iterator over a [`SmallVec`].
pub struct IntoIter<T: Copy + Default, const N: usize> {
    vec: SmallVec<T, N>,
    pos: usize,
}

impl<T: Copy + Default, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        let item = self.vec.as_slice().get(self.pos).copied();
        self.pos += 1;
        item
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vec.len().saturating_sub(self.pos);
        (rem, Some(rem))
    }
}

impl<T: Copy + Default, const N: usize> ExactSizeIterator for IntoIter<T, N> {}

impl<T: Copy + Default, const N: usize> IntoIterator for SmallVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;
    fn into_iter(self) -> IntoIter<T, N> {
        IntoIter { vec: self, pos: 0 }
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Construct a [`SmallVec`] from a list of elements, like `vec![]`.
#[macro_export]
macro_rules! smallvec {
    () => { $crate::SmallVec::new() };
    ($($x:expr),+ $(,)?) => {{
        let mut v = $crate::SmallVec::new();
        $(v.push($x);)+
        v
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: SmallVec<u16, 4> = SmallVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
        v.push(4);
        assert!(v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn deref_and_iteration() {
        let v: SmallVec<u8, 8> = (0..5).collect();
        assert_eq!(v.iter().copied().sum::<u8>(), 10);
        assert_eq!(v.into_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn equality_and_conversions() {
        let v: SmallVec<u32, 2> = SmallVec::from(vec![1, 2, 3]);
        assert!(v.spilled());
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(v.to_vec(), vec![1, 2, 3]);
        let w: SmallVec<u32, 2> = smallvec![1, 2, 3];
        assert_eq!(v, w);
        let empty: SmallVec<u32, 2> = smallvec![];
        assert!(empty.is_empty());
    }

    #[test]
    fn clear_resets_both_representations() {
        let mut v: SmallVec<u8, 2> = smallvec![1, 2, 3];
        v.clear();
        assert!(v.is_empty());
        v.push(9);
        assert_eq!(v.as_slice(), &[9]);
    }
}
