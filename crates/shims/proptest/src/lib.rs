//! Offline shim for the `proptest` crate (see `crates/shims/README.md`).
//!
//! Random property testing without shrinking: each `proptest!` test runs
//! a fixed number of cases sampled from its strategies with an RNG seeded
//! deterministically from the test's name, so failures reproduce exactly.
//! Covers the API surface the workspace uses: `Strategy`/`prop_map`,
//! `Just`, `any`, ranges, `prop_oneof!`, `collection::vec`, and the
//! `prop_assert*` macros.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Number of cases each property runs (overridable via `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// The RNG driving a property test run.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeded deterministically from the test name.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A failed test case (returned by `prop_assert*`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Mapped strategy (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed sub-strategies (built by `prop_oneof!`).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
        let i = rng.gen_range(0..self.0.len());
        self.0[i].sample(rng)
    }
}

/// "Any value of this type" strategy, via [`any`].
pub struct Any<T>(PhantomData<T>);

/// Arbitrary value of `T` from raw random bits.
pub fn any<T: ArbitraryBits>() -> Any<T> {
    Any(PhantomData)
}

/// Types constructible from raw random bits for [`any`].
pub trait ArbitraryBits {
    /// Build from 64 random bits.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(impl ArbitraryBits for $t {
            fn from_bits(bits: u64) -> $t { bits as $t }
        })*
    };
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryBits for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl ArbitraryBits for f64 {
    fn from_bits(bits: u64) -> f64 {
        f64::from_bits(bits)
    }
}

impl ArbitraryBits for f32 {
    fn from_bits(bits: u64) -> f32 {
        f32::from_bits(bits as u32)
    }
}

impl<T: ArbitraryBits> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::from_bits(rng.next_u64())
    }
}

/// String strategies from a regex subset: concatenations of literal chars
/// and `[class]` atoms, each optionally repeated `{m}` / `{m,n}`. Covers
/// the patterns used in this workspace (e.g. `"[ -~]{0,20}"`); anything
/// fancier panics so the gap is visible rather than silently mis-sampled.
impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let pat: Vec<char> = self.chars().collect();
        let mut i = 0;
        let mut out = String::new();
        while i < pat.len() {
            let class: Vec<char> = if pat[i] == '[' {
                i += 1;
                let mut class = Vec::new();
                while i < pat.len() && pat[i] != ']' {
                    if i + 2 < pat.len() && pat[i + 1] == '-' && pat[i + 2] != ']' {
                        let (lo, hi) = (pat[i] as u32, pat[i + 2] as u32);
                        assert!(lo <= hi, "bad range in regex subset: {self:?}");
                        class.extend((lo..=hi).filter_map(char::from_u32));
                        i += 3;
                    } else {
                        let mut c = pat[i];
                        if c == '\\' {
                            i += 1;
                            c = pat[i];
                        }
                        class.push(c);
                        i += 1;
                    }
                }
                assert!(i < pat.len(), "unterminated class in regex subset: {self:?}");
                i += 1;
                class
            } else {
                let mut c = pat[i];
                assert!(
                    !"(){}|?*+^$.".contains(c) || c == '\\',
                    "unsupported regex construct {c:?} in {self:?}"
                );
                if c == '\\' {
                    i += 1;
                    c = pat[i];
                }
                i += 1;
                vec![c]
            };
            let (lo, hi) = if i < pat.len() && pat[i] == '{' {
                let close = pat[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated repetition in {self:?}"))
                    + i;
                let body: String = pat[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
                    None => {
                        let m: usize = body.parse().unwrap();
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(!class.is_empty(), "empty class in regex subset: {self:?}");
            for _ in 0..rng.gen_range(lo..hi + 1) {
                out.push(class[rng.gen_range(0..class.len())]);
            }
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(S0.0, S1.1);
tuple_strategy!(S0.0, S1.1, S2.2);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3);

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        })*
    };
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A `Vec` of `size` elements sampled from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy built by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.start < self.size.end {
                rng.gen_range(self.size.clone())
            } else {
                self.size.start
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, Strategy, TestCaseError,
    };
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $(let $arg = $strat;)*
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for case in 0..$crate::cases() {
                    $(let $arg = $crate::Strategy::sample(&$arg, &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest {} failed at case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
}

/// Fallible assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fallible equality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} ({:?} != {:?})",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            )));
        }
    }};
}

/// Fallible inequality assertion inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if *lhs == *rhs {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a),
                stringify!($b),
                lhs
            )));
        }
    }};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_per_name() {
        use rand::Rng;
        let a: Vec<u64> = {
            let mut r = crate::TestRng::for_test("t");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::TestRng::for_test("t");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn oneof_map_and_vec_compose(
            v in prop::collection::vec(prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|x| x)], 0..9),
        ) {
            prop_assert!(v.len() < 9);
            for x in v {
                prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
            }
        }

        #[test]
        fn regex_subset_and_tuples(
            s in "[a-c]{2,5}",
            pair in ("[x-z]{1,3}", 0u8..4),
        ) {
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let (word, n) = pair;
            prop_assert!(!word.is_empty() && word.len() <= 3);
            prop_assert!(word.chars().all(|c| ('x'..='z').contains(&c)));
            prop_assert!(n < 4);
        }

        #[test]
        fn any_samples(b in any::<bool>(), x in any::<u16>(), f in any::<f64>()) {
            prop_assert!(!b || b);
            prop_assert_eq!(x, x);
            prop_assert!(f.is_nan() || f == f);
        }
    }
}
