//! Offline shim for `serde_derive`: emits *empty* trait impls.
//!
//! The shimmed `serde::Serialize`/`Deserialize` traits are markers with no
//! methods, so the derive only has to name the type being derived. The
//! parser below is deliberately tiny (no `syn`): it scans the top-level
//! token stream for the `struct`/`enum`/`union` keyword, takes the next
//! identifier as the type name, and rejects generic types — nothing in
//! this workspace derives serde traits on a generic type.

use proc_macro::{TokenStream, TokenTree};

fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            if p.as_char() == '<' {
                                panic!(
                                    "serde shim derive does not support generic type `{name}`; \
                                     write the impl by hand"
                                );
                            }
                        }
                        return name.to_string();
                    }
                    other => panic!("serde shim derive: expected type name, found {other:?}"),
                }
            }
        }
    }
    panic!("serde shim derive: no struct/enum/union found in input");
}

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}").parse().unwrap()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}").parse().unwrap()
}
