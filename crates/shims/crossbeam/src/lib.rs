//! Offline shim for the `crossbeam` crate (see `crates/shims/README.md`).
//!
//! Only `crossbeam::scope` is used in this workspace; it maps directly to
//! `std::thread::scope` (std has had scoped threads since 1.63). The one
//! API difference: crossbeam passes a scope reference into each spawned
//! closure for nested spawning — callers here all ignore it (`|_|`), so
//! the shim passes `()`.

use std::thread;

/// Scope handle passed to [`scope`]'s closure.
pub struct Scope<'scope, 'env: 'scope>(&'scope thread::Scope<'scope, 'env>);

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives `()` where crossbeam
    /// would pass a nested scope handle.
    pub fn spawn<T, F>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        T: Send + 'scope,
        F: FnOnce(()) -> T + Send + 'scope,
    {
        self.0.spawn(|| f(()))
    }
}

/// Run `f` with a scope in which borrowing spawned threads can be created;
/// all threads are joined before this returns. Always `Ok` (a panicking
/// child propagates the panic, as with `std::thread::scope`).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope(s))))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scoped_threads_join_and_borrow() {
        let counter = AtomicU32::new(0);
        let out = super::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                handles.push(s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed)));
            }
            for h in handles {
                h.join().unwrap();
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }
}
