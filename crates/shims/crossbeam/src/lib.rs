//! Offline shim for the `crossbeam` crate (see `crates/shims/README.md`).
//!
//! Two pieces of crossbeam are used in this workspace:
//!
//! * `crossbeam::scope` — maps directly to `std::thread::scope` (std has
//!   had scoped threads since 1.63). The one API difference: crossbeam
//!   passes a scope reference into each spawned closure for nested
//!   spawning — callers here all ignore it (`|_|`), so the shim passes `()`.
//! * [`deque`] — the `Injector`/`Worker`/`Stealer` work-stealing triple
//!   used by the parallel sweep runner. The shim trades crossbeam's
//!   lock-free Chase–Lev deque for mutex-guarded `VecDeque`s: identical
//!   API and stealing semantics, adequate under the coarse-grained load
//!   here (one queue operation per *world*, not per packet).

use std::thread;

pub mod deque {
    //! Work-stealing deques (API-compatible subset of `crossbeam-deque`).

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The source was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// Lost a race; try again.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Whether the source was empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// A FIFO queue every worker can push to and steal from.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Self {
            Injector { queue: Mutex::new(VecDeque::new()) }
        }

        /// Push a task onto the global queue.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Steal the oldest task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }

    /// A worker's local deque. The owner pushes/pops at one end; thieves
    /// take from the other via a [`Stealer`].
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// A new FIFO worker queue.
        pub fn new_fifo() -> Self {
            Worker { queue: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// A handle other threads can steal through.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { queue: Arc::clone(&self.queue) }
        }

        /// Push a task onto the local queue.
        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        /// Pop a task from the owner's end.
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().unwrap().pop_front()
        }

        /// Whether the local queue is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }

    /// A thief-side handle onto a [`Worker`]'s deque.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { queue: Arc::clone(&self.queue) }
        }
    }

    impl<T> Stealer<T> {
        /// Steal the oldest task from the victim's queue.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the victim's queue is empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn injector_is_fifo() {
            let inj = Injector::new();
            inj.push(1);
            inj.push(2);
            assert_eq!(inj.steal(), Steal::Success(1));
            assert_eq!(inj.steal(), Steal::Success(2));
            assert_eq!(inj.steal(), Steal::<i32>::Empty);
        }

        #[test]
        fn worker_and_stealer_share_a_queue() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            w.push(10);
            w.push(20);
            assert_eq!(s.steal().success(), Some(10));
            assert_eq!(w.pop(), Some(20));
            assert!(s.is_empty());
        }

        #[test]
        fn steal_across_threads() {
            let inj = Injector::new();
            for i in 0..100 {
                inj.push(i);
            }
            let total = std::sync::atomic::AtomicU64::new(0);
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        while let Steal::Success(v) = inj.steal() {
                            total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                        }
                    });
                }
            });
            assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), (0..100).sum::<u64>());
            assert!(inj.is_empty());
        }
    }
}

/// Scope handle passed to [`scope`]'s closure.
pub struct Scope<'scope, 'env: 'scope>(&'scope thread::Scope<'scope, 'env>);

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives `()` where crossbeam
    /// would pass a nested scope handle.
    pub fn spawn<T, F>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        T: Send + 'scope,
        F: FnOnce(()) -> T + Send + 'scope,
    {
        self.0.spawn(|| f(()))
    }
}

/// Run `f` with a scope in which borrowing spawned threads can be created;
/// all threads are joined before this returns. Always `Ok` (a panicking
/// child propagates the panic, as with `std::thread::scope`).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope(s))))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scoped_threads_join_and_borrow() {
        let counter = AtomicU32::new(0);
        let out = super::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..4 {
                handles.push(s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed)));
            }
            for h in handles {
                h.join().unwrap();
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }
}
