//! Offline shim for the `rand` crate (see `crates/shims/README.md`).
//!
//! Implements the API surface this workspace uses — `StdRng` (xoshiro256**
//! seeded via splitmix64), the [`Rng`]/[`SeedableRng`] traits with
//! `gen`/`gen_bool`/`gen_range`, and [`seq::SliceRandom`] with
//! `choose`/`shuffle`. The streams differ from upstream `rand`'s, but all
//! workspace code relies only on determinism-per-seed and statistical
//! uniformity, never on exact upstream values.

/// Core RNG contract plus the convenience samplers.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` from the "standard" distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard(self) < p.clamp(0.0, 1.0)
    }

    /// Uniform sample from a half-open range. Panics on an empty range.
    fn gen_range<T: UniformRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::uniform(self, range)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding contract.
pub trait SeedableRng: Sized {
    /// Deterministically construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value.
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn standard<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types samplable uniformly from a `Range` by [`Rng::gen_range`].
pub trait UniformRange: Sized {
    /// Uniform sample from `range`.
    fn uniform<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {
        $(impl UniformRange for $t {
            fn uniform<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Lemire multiply-shift: uniform enough for simulation use.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (range.start as i128 + hi) as $t
            }
        })*
    };
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformRange for f64 {
    fn uniform<R: Rng + ?Sized>(rng: &mut R, range: std::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + f64::standard(rng) * (range.end - range.start)
    }
}

/// Named RNGs.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 expansion of the seed, as upstream does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// `choose`/`shuffle` over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher-Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_is_uniform_unit() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.03);
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(4);
        let xs = [1, 2, 3, 4];
        assert!(xs.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut ys: Vec<u32> = (0..100).collect();
        ys.shuffle(&mut rng);
        let mut sorted = ys.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(ys, sorted); // astronomically unlikely to be identity
    }
}
