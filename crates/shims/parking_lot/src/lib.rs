//! Offline shim for the `parking_lot` crate (see `crates/shims/README.md`).
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API:
//! `read()`/`write()`/`lock()` return guards directly. A poisoned std lock
//! (a writer panicked) propagates the panic, matching parking_lot's
//! effective behavior for this workspace's usage.

use std::sync;

/// A reader-writer lock with a non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("rwlock poisoned")
    }
}

/// A mutex with a non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}
