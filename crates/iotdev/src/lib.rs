//! `iotdev` — the IoT device substrate of the IoTSec reproduction.
//!
//! The paper's threat model rests on three properties of real IoT
//! deployments, and this crate models all three:
//!
//! 1. **Devices are cyber-physical.** Devices sense and actuate a shared
//!    physical [`env::Environment`] (temperature, smoke, light, occupancy,
//!    window/door state). Implicit cross-device coupling — the oven heats
//!    the room that the thermostat senses — is exactly what the paper's
//!    policy and learning layers must reason about.
//! 2. **Devices ship with unfixable flaws.** Every row of the paper's
//!    Table 1 becomes an executable [`vuln::Vulnerability`] class attached
//!    to device instances: hardcoded default credentials, wide-open
//!    management interfaces, leaked firmware key pairs, no-auth control
//!    channels, open DNS resolvers, and cloud backdoors that bypass the
//!    vendor app.
//! 3. **Attackers live on the network.** The [`attacker::Attacker`] is an
//!    ordinary network endpoint that probes, brute-forces, replays leaked
//!    keys, reflects DNS, and chains multi-stage campaigns through the
//!    physical environment.
//!
//! Device behaviour is an explicit finite state machine per class
//! ([`classes`]), with a machine-readable abstract model
//! ([`model::AbstractModel`]) mirroring §4.2's proposal that per-class
//! FSM models — not per-SKU honeypots — are the scalable unit of
//! reasoning.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacker;
pub mod classes;
pub mod device;
pub mod env;
pub mod events;
pub mod model;
pub mod proto;
pub mod registry;
pub mod vuln;

pub use attacker::{AttackOutcome, AttackPlan, AttackStep, Attacker};
pub use device::{AdminCreds, DeviceClass, DeviceId, DeviceOutput, IoTDevice, OutMessage};
pub use env::{DiscreteEnv, EnvSnapshot, EnvVar, Environment};
pub use events::{SecurityEvent, SecurityEventKind};
pub use model::AbstractModel;
pub use proto::{AppMessage, ControlAction, MgmtCommand};
pub use registry::{Sku, SkuRegistry};
pub use vuln::Vulnerability;
