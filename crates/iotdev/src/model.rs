//! Abstract per-class device models (§4.2 of the paper).
//!
//! The paper argues that per-SKU honeypots cannot scale, and proposes
//! instead a community library of *abstract models of device classes*
//! ("toaster, microwave, smart bulb rather than specific instances") that
//! capture key input–output behaviour and environment interactions. The
//! learning layer then fuzzes over these models to discover cross-device
//! interactions and searches them to find multi-stage attacks.
//!
//! An [`AbstractModel`] is a small FSM: named states, inputs (control
//! actions or environment-edge triggers), and transitions annotated with
//! the *eventual* environment writes they cause. Writes are deliberately
//! over-approximate — "turning the oven on can eventually make Smoke=yes"
//! — which keeps attack-graph search sound (it never misses a physically
//! possible chain).

use crate::classes::PlugLoad;
use crate::device::DeviceClass;
use crate::env::EnvVar;
use crate::proto::ControlAction;
use serde::Serialize;

/// An input that can drive a model transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum AbstractInput {
    /// A network control action.
    Action(ControlAction),
    /// The environment variable reached this value.
    EnvBecomes(EnvVar, &'static str),
}

/// One transition of an abstract model.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Transition {
    /// Source state index.
    pub from: usize,
    /// Triggering input.
    pub input: AbstractInput,
    /// Destination state index.
    pub to: usize,
    /// Environment values this transition can eventually cause.
    pub writes: Vec<(EnvVar, &'static str)>,
}

/// An abstract model of a device class (optionally specialized by the
/// plug's load, which determines its physical coupling).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AbstractModel {
    /// The modelled class.
    pub class: DeviceClass,
    /// Human-readable state names.
    pub states: Vec<&'static str>,
    /// Index of the initial state.
    pub initial: usize,
    /// Transitions.
    pub transitions: Vec<Transition>,
    /// Environment variables the device senses.
    pub env_reads: Vec<EnvVar>,
}

impl AbstractModel {
    /// The model for a device class; pass the plug's load for
    /// [`DeviceClass::SmartPlug`] to capture its physical coupling
    /// (`None` means a generic load).
    pub fn for_device(class: DeviceClass, load: Option<PlugLoad>) -> AbstractModel {
        use AbstractInput::*;
        use ControlAction::*;
        match class {
            DeviceClass::SmartPlug => {
                let mut on_writes = vec![(EnvVar::PowerDraw, "high")];
                let mut off_writes = vec![(EnvVar::PowerDraw, "normal")];
                match load {
                    Some(PlugLoad::AirConditioner) => {
                        // Cutting AC power lets the room heat up.
                        off_writes.push((EnvVar::Temperature, "high"));
                        on_writes.push((EnvVar::Temperature, "normal"));
                    }
                    Some(PlugLoad::Oven) => {
                        // Powering the oven can eventually cause smoke.
                        on_writes.push((EnvVar::Smoke, "yes"));
                        on_writes.push((EnvVar::Temperature, "high"));
                    }
                    Some(PlugLoad::Lamp) => {
                        on_writes.push((EnvVar::Light, "bright"));
                        off_writes.push((EnvVar::Light, "dark"));
                    }
                    Some(PlugLoad::Generic) | None => {}
                }
                AbstractModel {
                    class,
                    states: vec!["off", "on"],
                    initial: 1,
                    transitions: vec![
                        Transition { from: 0, input: Action(TurnOn), to: 1, writes: on_writes },
                        Transition { from: 1, input: Action(TurnOff), to: 0, writes: off_writes },
                    ],
                    env_reads: vec![],
                }
            }
            DeviceClass::Oven => AbstractModel {
                class,
                states: vec!["off", "heating"],
                initial: 0,
                transitions: vec![
                    Transition {
                        from: 0,
                        input: Action(TurnOn),
                        to: 1,
                        writes: vec![(EnvVar::Temperature, "high"), (EnvVar::Smoke, "yes")],
                    },
                    Transition { from: 1, input: Action(TurnOff), to: 0, writes: vec![] },
                ],
                env_reads: vec![],
            },
            DeviceClass::WindowActuator => AbstractModel {
                class,
                states: vec!["closed", "open"],
                initial: 0,
                transitions: vec![
                    Transition {
                        from: 0,
                        input: Action(Open),
                        to: 1,
                        writes: vec![(EnvVar::Window, "open"), (EnvVar::Temperature, "high")],
                    },
                    Transition {
                        from: 1,
                        input: Action(Close),
                        to: 0,
                        writes: vec![(EnvVar::Window, "closed")],
                    },
                ],
                env_reads: vec![],
            },
            DeviceClass::SmartLock => AbstractModel {
                class,
                states: vec!["locked", "unlocked"],
                initial: 0,
                transitions: vec![
                    Transition {
                        from: 0,
                        input: Action(Unlock),
                        to: 1,
                        writes: vec![(EnvVar::Door, "unlocked")],
                    },
                    Transition {
                        from: 1,
                        input: Action(Lock),
                        to: 0,
                        writes: vec![(EnvVar::Door, "locked")],
                    },
                ],
                env_reads: vec![],
            },
            DeviceClass::LightBulb => AbstractModel {
                class,
                states: vec!["off", "on"],
                initial: 0,
                transitions: vec![
                    Transition {
                        from: 0,
                        input: Action(TurnOn),
                        to: 1,
                        writes: vec![(EnvVar::Light, "bright")],
                    },
                    Transition {
                        from: 1,
                        input: Action(TurnOff),
                        to: 0,
                        writes: vec![(EnvVar::Light, "dark")],
                    },
                ],
                env_reads: vec![],
            },
            DeviceClass::Thermostat => AbstractModel {
                class,
                states: vec!["idle", "cooling"],
                initial: 0,
                transitions: vec![
                    Transition {
                        from: 0,
                        input: EnvBecomes(EnvVar::Temperature, "high"),
                        to: 1,
                        writes: vec![(EnvVar::Temperature, "normal")],
                    },
                    Transition {
                        from: 1,
                        input: EnvBecomes(EnvVar::Temperature, "normal"),
                        to: 0,
                        writes: vec![],
                    },
                    // An attacker-raised setpoint suppresses cooling.
                    Transition {
                        from: 1,
                        input: Action(SetTarget(350)),
                        to: 0,
                        writes: vec![(EnvVar::Temperature, "high")],
                    },
                ],
                env_reads: vec![EnvVar::Temperature],
            },
            DeviceClass::FireAlarm => AbstractModel {
                class,
                states: vec!["ok", "alarm"],
                initial: 0,
                transitions: vec![
                    Transition {
                        from: 0,
                        input: EnvBecomes(EnvVar::Smoke, "yes"),
                        to: 1,
                        writes: vec![],
                    },
                    Transition {
                        from: 1,
                        input: EnvBecomes(EnvVar::Smoke, "no"),
                        to: 0,
                        writes: vec![],
                    },
                ],
                env_reads: vec![EnvVar::Smoke],
            },
            DeviceClass::Camera | DeviceClass::MotionSensor => AbstractModel {
                class,
                states: vec!["no-motion", "motion"],
                initial: 0,
                transitions: vec![
                    Transition {
                        from: 0,
                        input: EnvBecomes(EnvVar::Occupancy, "present"),
                        to: 1,
                        writes: vec![],
                    },
                    Transition {
                        from: 1,
                        input: EnvBecomes(EnvVar::Occupancy, "absent"),
                        to: 0,
                        writes: vec![],
                    },
                ],
                env_reads: vec![EnvVar::Occupancy],
            },
            DeviceClass::LightSensor => AbstractModel {
                class,
                states: vec!["dark", "bright"],
                initial: 0,
                transitions: vec![
                    Transition {
                        from: 0,
                        input: EnvBecomes(EnvVar::Light, "bright"),
                        to: 1,
                        writes: vec![],
                    },
                    Transition {
                        from: 1,
                        input: EnvBecomes(EnvVar::Light, "dark"),
                        to: 0,
                        writes: vec![],
                    },
                ],
                env_reads: vec![EnvVar::Light],
            },
            DeviceClass::TrafficLight => AbstractModel {
                class,
                states: vec!["red", "yellow", "green"],
                initial: 0,
                transitions: vec![
                    Transition { from: 0, input: Action(SetPhase(2)), to: 2, writes: vec![] },
                    Transition { from: 2, input: Action(SetPhase(0)), to: 0, writes: vec![] },
                    Transition { from: 0, input: Action(SetPhase(1)), to: 1, writes: vec![] },
                    Transition { from: 1, input: Action(SetPhase(0)), to: 0, writes: vec![] },
                ],
                env_reads: vec![],
            },
            DeviceClass::SetTopBox | DeviceClass::Refrigerator => AbstractModel {
                class,
                states: vec!["on"],
                initial: 0,
                transitions: vec![],
                env_reads: vec![],
            },
        }
    }

    /// Environment variables any transition of this model can write.
    pub fn env_writes(&self) -> Vec<EnvVar> {
        let mut vars: Vec<EnvVar> =
            self.transitions.iter().flat_map(|t| t.writes.iter().map(|(v, _)| *v)).collect();
        vars.sort();
        vars.dedup();
        vars
    }

    /// Transitions firing from `state` on `input`.
    pub fn step(&self, state: usize, input: AbstractInput) -> Option<&Transition> {
        self.transitions.iter().find(|t| t.from == state && t.input == input)
    }

    /// All distinct inputs this model reacts to.
    pub fn inputs(&self) -> Vec<AbstractInput> {
        let mut inputs: Vec<AbstractInput> = self.transitions.iter().map(|t| t.input).collect();
        inputs.dedup_by(|a, b| a == b);
        let mut uniq = Vec::new();
        for i in inputs {
            if !uniq.contains(&i) {
                uniq.push(i);
            }
        }
        uniq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_classes_have_models() {
        for class in DeviceClass::ALL {
            let m = AbstractModel::for_device(class, None);
            assert!(!m.states.is_empty());
            assert!(m.initial < m.states.len());
            for t in &m.transitions {
                assert!(t.from < m.states.len());
                assert!(t.to < m.states.len());
            }
        }
    }

    #[test]
    fn ac_plug_off_implies_heat() {
        let m = AbstractModel::for_device(DeviceClass::SmartPlug, Some(PlugLoad::AirConditioner));
        let t = m.step(1, AbstractInput::Action(ControlAction::TurnOff)).unwrap();
        assert!(t.writes.contains(&(EnvVar::Temperature, "high")));
    }

    #[test]
    fn oven_plug_on_implies_smoke_risk() {
        let m = AbstractModel::for_device(DeviceClass::SmartPlug, Some(PlugLoad::Oven));
        let t = m.step(0, AbstractInput::Action(ControlAction::TurnOn)).unwrap();
        assert!(t.writes.contains(&(EnvVar::Smoke, "yes")));
    }

    #[test]
    fn sensors_read_but_do_not_write() {
        for class in [DeviceClass::Camera, DeviceClass::FireAlarm, DeviceClass::LightSensor] {
            let m = AbstractModel::for_device(class, None);
            assert!(!m.env_reads.is_empty());
            assert!(m.env_writes().is_empty(), "{class:?}");
        }
    }

    #[test]
    fn stepping_follows_transitions() {
        let m = AbstractModel::for_device(DeviceClass::WindowActuator, None);
        let t = m.step(0, AbstractInput::Action(ControlAction::Open)).unwrap();
        assert_eq!(m.states[t.to], "open");
        assert!(m.step(0, AbstractInput::Action(ControlAction::Close)).is_none());
    }

    #[test]
    fn inputs_are_deduplicated() {
        let m = AbstractModel::for_device(DeviceClass::TrafficLight, None);
        // Four transitions but only three distinct inputs (SetPhase(0)
        // appears twice).
        assert_eq!(m.transitions.len(), 4);
        assert_eq!(m.inputs().len(), 3);
    }
}
