//! The attacker: a network endpoint that exploits Table 1 flaws and
//! chains multi-stage, cyber-physical campaigns.
//!
//! An [`Attacker`] executes an [`AttackPlan`] — an ordered list of
//! [`AttackStep`]s — as a state machine driven by the simulation loop:
//! `poll` emits the next step's packets, `on_delivery` consumes replies,
//! and per-step [`AttackOutcome`]s accumulate as ground truth for the
//! experiments ("did the campaign succeed with defense X in place?").

use crate::device::OutMessage;
use crate::proto::{ports, AppMessage, ControlAction, ControlAuth, MgmtCommand};
use iotnet::addr::Ipv4Addr;
use iotnet::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How a control-plane step authenticates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackAuth {
    /// No credentials (works only against `no-auth-control` devices).
    None,
    /// Explicit credentials (e.g. well-known defaults).
    Creds {
        /// Username.
        user: String,
        /// Password.
        pass: String,
    },
    /// A session token captured by an earlier successful login against
    /// the same target.
    Session,
    /// A key pair stolen earlier via `ExtractKeys` (from any device of
    /// the SKU — the paper's point about fleet-wide keys).
    StolenKey,
}

/// One step of an attack plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttackStep {
    /// Probe a management interface (any answer counts as "present").
    Probe {
        /// Target device address.
        target: Ipv4Addr,
    },
    /// Attempt one management login.
    Login {
        /// Target device address.
        target: Ipv4Addr,
        /// Username to try.
        user: String,
        /// Password to try.
        pass: String,
    },
    /// Run a dictionary of well-known default credentials.
    DictionaryLogin {
        /// Target device address.
        target: Ipv4Addr,
    },
    /// Issue a management command (uses a captured session token if one
    /// exists for the target, else token 0 — which only wide-open
    /// interfaces accept).
    Mgmt {
        /// Target device address.
        target: Ipv4Addr,
        /// The command.
        command: MgmtCommand,
    },
    /// Send a control-plane actuation.
    Control {
        /// Target device address.
        target: Ipv4Addr,
        /// The action.
        action: ControlAction,
        /// Authentication method.
        auth: AttackAuth,
    },
    /// Send a vendor-cloud backdoor command.
    Cloud {
        /// Target device address.
        target: Ipv4Addr,
        /// The action.
        action: ControlAction,
    },
    /// Reflect DNS off an open resolver toward a victim (source-spoofed).
    DnsReflect {
        /// The open resolver to bounce off.
        reflector: Ipv4Addr,
        /// The spoofed source — where the amplified responses land.
        victim: Ipv4Addr,
        /// Number of queries to fire.
        queries: u32,
    },
    /// Wait for the physical world to evolve (e.g. for the room to heat
    /// up after cutting the AC).
    Wait {
        /// How long.
        duration: SimDuration,
    },
}

impl AttackStep {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            AttackStep::Probe { target } => format!("probe {target}"),
            AttackStep::Login { target, user, .. } => format!("login {user}@{target}"),
            AttackStep::DictionaryLogin { target } => format!("dictionary-login {target}"),
            AttackStep::Mgmt { target, command } => format!("mgmt {command:?} @{target}"),
            AttackStep::Control { target, action, .. } => format!("control {action:?} @{target}"),
            AttackStep::Cloud { target, action } => format!("cloud {action:?} @{target}"),
            AttackStep::DnsReflect { reflector, victim, queries } => {
                format!("dns-reflect x{queries} via {reflector} -> {victim}")
            }
            AttackStep::Wait { duration } => format!("wait {duration}"),
        }
    }
}

/// An ordered campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackPlan {
    /// Campaign name (for reports).
    pub name: String,
    /// The steps, executed in order.
    pub steps: Vec<AttackStep>,
}

impl AttackPlan {
    /// Build a plan.
    pub fn new(name: &str, steps: Vec<AttackStep>) -> AttackPlan {
        AttackPlan { name: name.into(), steps }
    }
}

/// The recorded result of one step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// Step index in the plan.
    pub step: usize,
    /// Step label.
    pub label: String,
    /// Whether the step achieved its goal.
    pub success: bool,
    /// When the outcome was decided.
    pub at: SimTime,
}

/// A message the attacker wants injected, possibly with a spoofed source
/// (DNS reflection).
#[derive(Debug, Clone, PartialEq)]
pub struct AttackerEmit {
    /// The message.
    pub out: OutMessage,
    /// Spoofed source address, if any.
    pub spoof_src: Option<Ipv4Addr>,
}

/// The default credential dictionary (well-known IoT defaults).
pub fn default_dictionary() -> Vec<(String, String)> {
    [
        ("admin", "admin"),
        ("admin", "1234"),
        ("root", "root"),
        ("admin", "password"),
        ("user", "user"),
    ]
    .iter()
    .map(|(u, p)| (u.to_string(), p.to_string()))
    .collect()
}

const REPLY_TIMEOUT: SimDuration = SimDuration::from_secs(2);

#[derive(Debug)]
enum AttackerState {
    Idle,
    Awaiting { deadline: SimTime, dict_idx: usize },
    Waiting { until: SimTime },
    Done,
}

/// The attacker endpoint.
#[derive(Debug)]
pub struct Attacker {
    /// The attacker's own address (on the WAN side in most scenarios).
    pub ip: Ipv4Addr,
    plan: AttackPlan,
    step_idx: usize,
    state: AttackerState,
    tokens: HashMap<Ipv4Addr, u32>,
    stolen_keys: Vec<u64>,
    dictionary: Vec<(String, String)>,
    outcomes: Vec<AttackOutcome>,
    next_src_port: u16,
    /// Total DNS queries fired (for the DDoS accounting).
    pub dns_queries_sent: u64,
}

impl Attacker {
    /// An attacker at `ip` executing `plan`.
    pub fn new(ip: Ipv4Addr, plan: AttackPlan) -> Attacker {
        Attacker {
            ip,
            plan,
            step_idx: 0,
            state: AttackerState::Idle,
            tokens: HashMap::new(),
            stolen_keys: Vec::new(),
            dictionary: default_dictionary(),
            outcomes: vec![],
            next_src_port: 40_000,
            dns_queries_sent: 0,
        }
    }

    /// Whether the plan has finished.
    pub fn done(&self) -> bool {
        matches!(self.state, AttackerState::Done)
    }

    /// Rewind the campaign to its freshly-constructed state — step 0,
    /// idle, no tokens, keys, or outcomes — keeping the plan, source IP
    /// and dictionary. Resident worlds (E26) reuse the attacker across
    /// rounds; callers re-seed any out-of-band keys afterwards exactly
    /// as the builder does via [`Attacker::learn_key`].
    pub fn reset_runtime(&mut self) {
        self.step_idx = 0;
        self.state = AttackerState::Idle;
        self.tokens.clear();
        self.stolen_keys.clear();
        self.outcomes.clear();
        self.next_src_port = 40_000;
        self.dns_queries_sent = 0;
    }

    /// Per-step outcomes so far.
    pub fn outcomes(&self) -> &[AttackOutcome] {
        &self.outcomes
    }

    /// Whether every step succeeded (and the plan completed).
    pub fn campaign_succeeded(&self) -> bool {
        self.done()
            && self.outcomes.len() == self.plan.steps.len()
            && self.outcomes.iter().all(|o| o.success)
    }

    /// A key stolen during the campaign, if any.
    pub fn stolen_key(&self) -> Option<u64> {
        self.stolen_keys.first().copied()
    }

    /// Seed a key obtained out of band — e.g. extracted offline from a
    /// publicly downloadable firmware image, which is precisely how the
    /// Table 1 row 4 CCTV keys leaked (the key is fleet-wide).
    pub fn learn_key(&mut self, key: u64) {
        self.stolen_keys.push(key);
    }

    /// A captured session token for `target`, if any.
    pub fn token_for(&self, target: Ipv4Addr) -> Option<u32> {
        self.tokens.get(&target).copied()
    }

    fn alloc_port(&mut self) -> u16 {
        let p = self.next_src_port;
        self.next_src_port = self.next_src_port.wrapping_add(1).max(40_000);
        p
    }

    fn record(&mut self, now: SimTime, success: bool) {
        let label = self.plan.steps[self.step_idx].label();
        self.outcomes.push(AttackOutcome { step: self.step_idx, label, success, at: now });
        self.step_idx += 1;
        self.state = if self.step_idx >= self.plan.steps.len() {
            AttackerState::Done
        } else {
            AttackerState::Idle
        };
    }

    fn emit_to(&mut self, target: Ipv4Addr, msg: AppMessage) -> AttackerEmit {
        let dst_port = msg.plane_port();
        AttackerEmit {
            out: OutMessage { dst: target, dst_port, src_port: self.alloc_port(), msg },
            spoof_src: None,
        }
    }

    /// Drive the attacker: returns packets to inject at `now`.
    pub fn poll(&mut self, now: SimTime) -> Vec<AttackerEmit> {
        match self.state {
            AttackerState::Done => Vec::new(),
            AttackerState::Waiting { until } => {
                if now >= until {
                    self.record(now, true);
                }
                Vec::new()
            }
            AttackerState::Awaiting { deadline, dict_idx } => {
                if now >= deadline {
                    // Timed out; dictionary steps try the next entry.
                    if let AttackStep::DictionaryLogin { target } =
                        self.plan.steps[self.step_idx].clone()
                    {
                        if dict_idx + 1 < self.dictionary.len() {
                            let (user, pass) = self.dictionary[dict_idx + 1].clone();
                            let emit = self.emit_to(target, AppMessage::MgmtLogin { user, pass });
                            self.state = AttackerState::Awaiting {
                                deadline: now + REPLY_TIMEOUT,
                                dict_idx: dict_idx + 1,
                            };
                            return vec![emit];
                        }
                    }
                    self.record(now, false);
                }
                Vec::new()
            }
            AttackerState::Idle => {
                if self.step_idx >= self.plan.steps.len() {
                    self.state = AttackerState::Done;
                    return Vec::new();
                }
                let step = self.plan.steps[self.step_idx].clone();
                match step {
                    AttackStep::Probe { target } => {
                        let emit = self.emit_to(
                            target,
                            AppMessage::MgmtLogin { user: "probe".into(), pass: "probe".into() },
                        );
                        self.state =
                            AttackerState::Awaiting { deadline: now + REPLY_TIMEOUT, dict_idx: 0 };
                        vec![emit]
                    }
                    AttackStep::Login { target, user, pass } => {
                        let emit = self.emit_to(target, AppMessage::MgmtLogin { user, pass });
                        self.state =
                            AttackerState::Awaiting { deadline: now + REPLY_TIMEOUT, dict_idx: 0 };
                        vec![emit]
                    }
                    AttackStep::DictionaryLogin { target } => {
                        let (user, pass) = self.dictionary[0].clone();
                        let emit = self.emit_to(target, AppMessage::MgmtLogin { user, pass });
                        self.state =
                            AttackerState::Awaiting { deadline: now + REPLY_TIMEOUT, dict_idx: 0 };
                        vec![emit]
                    }
                    AttackStep::Mgmt { target, command } => {
                        let token = self.token_for(target).unwrap_or(0);
                        let emit = self.emit_to(target, AppMessage::MgmtCommand { token, command });
                        self.state =
                            AttackerState::Awaiting { deadline: now + REPLY_TIMEOUT, dict_idx: 0 };
                        vec![emit]
                    }
                    AttackStep::Control { target, action, auth } => {
                        let auth = match auth {
                            AttackAuth::None => ControlAuth::None,
                            AttackAuth::Creds { user, pass } => {
                                ControlAuth::Password { user, pass }
                            }
                            AttackAuth::Session => {
                                ControlAuth::Token(self.token_for(target).unwrap_or(0))
                            }
                            AttackAuth::StolenKey => {
                                ControlAuth::Key(self.stolen_key().unwrap_or(0))
                            }
                        };
                        let emit = self.emit_to(target, AppMessage::Control { action, auth });
                        self.state =
                            AttackerState::Awaiting { deadline: now + REPLY_TIMEOUT, dict_idx: 0 };
                        vec![emit]
                    }
                    AttackStep::Cloud { target, action } => {
                        let emit = self.emit_to(target, AppMessage::CloudCommand { action });
                        self.state =
                            AttackerState::Awaiting { deadline: now + REPLY_TIMEOUT, dict_idx: 0 };
                        vec![emit]
                    }
                    AttackStep::DnsReflect { reflector, victim, queries } => {
                        let mut emits = Vec::with_capacity(queries as usize);
                        for i in 0..queries {
                            let msg = AppMessage::DnsQuery {
                                name: format!("amp{i}.example"),
                                recursion: true,
                            };
                            let src_port = self.alloc_port();
                            emits.push(AttackerEmit {
                                out: OutMessage {
                                    dst: reflector,
                                    dst_port: ports::DNS,
                                    src_port,
                                    msg,
                                },
                                spoof_src: Some(victim),
                            });
                        }
                        self.dns_queries_sent += queries as u64;
                        // Fire-and-forget: responses go to the victim.
                        self.record(now, true);
                        emits
                    }
                    AttackStep::Wait { duration } => {
                        self.state = AttackerState::Waiting { until: now + duration };
                        Vec::new()
                    }
                }
            }
        }
    }

    /// Feed a packet delivered to the attacker's endpoint.
    pub fn on_delivery(&mut self, now: SimTime, from: Ipv4Addr, msg: &AppMessage) {
        let AttackerState::Awaiting { .. } = self.state else {
            return;
        };
        if self.step_idx >= self.plan.steps.len() {
            return;
        }
        let step = self.plan.steps[self.step_idx].clone();
        match (step, msg) {
            (AttackStep::Probe { target }, _) if from == target => {
                self.record(now, true);
            }
            (AttackStep::Login { target, .. }, AppMessage::MgmtLoginOk { token })
            | (AttackStep::DictionaryLogin { target }, AppMessage::MgmtLoginOk { token })
                if from == target =>
            {
                self.tokens.insert(target, *token);
                self.record(now, true);
            }
            (AttackStep::Login { target, .. }, AppMessage::MgmtDenied) if from == target => {
                self.record(now, false);
            }
            (AttackStep::DictionaryLogin { target }, AppMessage::MgmtDenied) if from == target => {
                // Try the next dictionary entry immediately.
                let AttackerState::Awaiting { dict_idx, .. } = self.state else {
                    return;
                };
                if dict_idx + 1 < self.dictionary.len() {
                    self.state = AttackerState::Awaiting {
                        deadline: now, // poll() fires the next try
                        dict_idx,
                    };
                } else {
                    self.record(now, false);
                }
            }
            (AttackStep::Mgmt { target, command }, AppMessage::MgmtResult { ok, data })
                if from == target =>
            {
                if *ok && command == MgmtCommand::ExtractKeys && data.len() >= 8 {
                    let mut k = [0u8; 8];
                    k.copy_from_slice(&data[..8]);
                    self.stolen_keys.push(u64::from_be_bytes(k));
                }
                self.record(now, *ok);
            }
            (AttackStep::Mgmt { target, .. }, AppMessage::MgmtDenied) if from == target => {
                self.record(now, false);
            }
            (AttackStep::Control { target, .. }, AppMessage::ControlAck { ok })
            | (AttackStep::Cloud { target, .. }, AppMessage::ControlAck { ok })
                if from == target =>
            {
                self.record(now, *ok);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceClass, DeviceId, IoTDevice};
    use crate::env::Environment;
    use crate::registry::Sku;
    use crate::vuln::Vulnerability;

    fn drive(attacker: &mut Attacker, device: &mut IoTDevice, rounds: usize) {
        // A minimal in-memory "network": zero-latency, loss-free.
        let mut env = Environment::new();
        let mut now = SimTime::ZERO;
        for _ in 0..rounds {
            let emits = attacker.poll(now);
            for e in emits {
                let src = e.spoof_src.unwrap_or(attacker.ip);
                if e.out.dst == device.ip {
                    let out = device.handle_message(
                        now,
                        src,
                        e.out.src_port,
                        e.out.dst_port,
                        e.out.msg.clone(),
                        &mut env,
                    );
                    for m in out.messages {
                        if m.dst == attacker.ip {
                            attacker.on_delivery(now, device.ip, &m.msg);
                        }
                    }
                }
            }
            now += SimDuration::from_millis(100);
            if attacker.done() {
                break;
            }
        }
    }

    fn cam_with_default_creds() -> IoTDevice {
        IoTDevice::new(
            DeviceId(0),
            Sku::new("avtech", "ip-cam", "1.3"),
            DeviceClass::Camera,
            Ipv4Addr::new(10, 0, 0, 5),
            vec![Vulnerability::default_admin_admin()],
        )
    }

    #[test]
    fn dictionary_login_cracks_default_creds() {
        let mut cam = cam_with_default_creds();
        let target = cam.ip;
        let mut atk = Attacker::new(
            Ipv4Addr::new(100, 64, 0, 9),
            AttackPlan::new(
                "crack",
                vec![
                    AttackStep::DictionaryLogin { target },
                    AttackStep::Mgmt { target, command: MgmtCommand::GetImage },
                ],
            ),
        );
        drive(&mut atk, &mut cam, 100);
        assert!(atk.campaign_succeeded(), "{:?}", atk.outcomes());
        assert!(cam.privacy_leaked);
        assert!(atk.token_for(target).is_some());
    }

    #[test]
    fn dictionary_fails_on_secure_device() {
        let mut cam = IoTDevice::new(
            DeviceId(0),
            Sku::new("secure", "cam", "9"),
            DeviceClass::Camera,
            Ipv4Addr::new(10, 0, 0, 5),
            vec![],
        );
        let target = cam.ip;
        let mut atk = Attacker::new(
            Ipv4Addr::new(100, 64, 0, 9),
            AttackPlan::new("crack", vec![AttackStep::DictionaryLogin { target }]),
        );
        drive(&mut atk, &mut cam, 100);
        assert!(atk.done());
        assert!(!atk.campaign_succeeded());
        assert!(!cam.privacy_leaked);
    }

    #[test]
    fn key_theft_then_replay() {
        let key = 0x5eed_c0de_5eed_c0de;
        let mut cam = IoTDevice::new(
            DeviceId(0),
            Sku::new("cctvcorp", "dvr-cam", "4.1"),
            DeviceClass::Camera,
            Ipv4Addr::new(10, 0, 0, 6),
            vec![Vulnerability::ExposedKeyPair { key }, Vulnerability::OpenMgmtAccess],
        );
        let target = cam.ip;
        let mut atk = Attacker::new(
            Ipv4Addr::new(100, 64, 0, 9),
            AttackPlan::new(
                "steal-key",
                vec![
                    AttackStep::Mgmt { target, command: MgmtCommand::ExtractKeys },
                    AttackStep::Control {
                        target,
                        action: ControlAction::TurnOff,
                        auth: AttackAuth::StolenKey,
                    },
                ],
            ),
        );
        drive(&mut atk, &mut cam, 100);
        assert!(atk.campaign_succeeded(), "{:?}", atk.outcomes());
        assert_eq!(atk.stolen_key(), Some(key));
        assert!(cam.compromised);
    }

    #[test]
    fn cloud_backdoor_campaign() {
        let mut plug = IoTDevice::new(
            DeviceId(0),
            Sku::new("belkin", "wemo", "1.1"),
            DeviceClass::SmartPlug,
            Ipv4Addr::new(10, 0, 0, 7),
            vec![Vulnerability::CloudBypassBackdoor],
        );
        let target = plug.ip;
        let mut atk = Attacker::new(
            Ipv4Addr::new(100, 64, 0, 9),
            AttackPlan::new(
                "backdoor-off",
                vec![AttackStep::Cloud { target, action: ControlAction::TurnOff }],
            ),
        );
        drive(&mut atk, &mut plug, 100);
        assert!(atk.campaign_succeeded());
        assert!(plug.compromised);
    }

    #[test]
    fn dns_reflect_spoofs_victim() {
        let victim = Ipv4Addr::new(203, 0, 113, 50);
        let reflector = Ipv4Addr::new(10, 0, 0, 8);
        let mut atk = Attacker::new(
            Ipv4Addr::new(100, 64, 0, 9),
            AttackPlan::new(
                "ddos",
                vec![AttackStep::DnsReflect { reflector, victim, queries: 25 }],
            ),
        );
        let emits = atk.poll(SimTime::ZERO);
        assert_eq!(emits.len(), 25);
        assert!(emits.iter().all(|e| e.spoof_src == Some(victim)));
        assert!(emits.iter().all(|e| e.out.dst == reflector));
        assert!(atk.done());
        assert!(atk.campaign_succeeded());
        assert_eq!(atk.dns_queries_sent, 25);
    }

    #[test]
    fn wait_step_elapses() {
        let mut atk = Attacker::new(
            Ipv4Addr::new(100, 64, 0, 9),
            AttackPlan::new(
                "patience",
                vec![AttackStep::Wait { duration: SimDuration::from_secs(10) }],
            ),
        );
        assert!(atk.poll(SimTime::ZERO).is_empty());
        assert!(!atk.done());
        atk.poll(SimTime::from_secs(5));
        assert!(!atk.done());
        atk.poll(SimTime::from_secs(10));
        assert!(atk.done());
        assert!(atk.campaign_succeeded());
    }

    #[test]
    fn unanswered_probe_times_out_as_failure() {
        let mut atk = Attacker::new(
            Ipv4Addr::new(100, 64, 0, 9),
            AttackPlan::new(
                "probe-the-void",
                vec![AttackStep::Probe { target: Ipv4Addr::new(10, 0, 0, 99) }],
            ),
        );
        atk.poll(SimTime::ZERO);
        atk.poll(SimTime::from_secs(5)); // past the timeout
        assert!(atk.done());
        assert!(!atk.campaign_succeeded());
        assert!(!atk.outcomes()[0].success);
    }
}
