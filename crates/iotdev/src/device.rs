//! The device wrapper: network plumbing, authentication, vulnerability
//! semantics and session state shared by every device class.
//!
//! A device is an endpoint that speaks the [`crate::proto`] protocol.
//! This module implements the parts common to all classes — management
//! logins and sessions, control-plane authentication, the behavioural
//! effect of each [`Vulnerability`] — and delegates actuation/sensing to
//! the per-class FSMs in [`crate::classes`].

use crate::classes::{DeviceLogic, TickOutput};
use crate::env::Environment;
use crate::events::{SecurityEvent, SecurityEventKind};
use crate::proto::{
    ports, AppMessage, ControlAction, ControlAuth, EventKind, MgmtCommand, TelemetryKind,
};
use crate::registry::Sku;
use crate::vuln::Vulnerability;
use bytes::Bytes;
use core::fmt;
use iotnet::addr::Ipv4Addr;
use iotnet::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a device within a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// The classes of IoT device the substrate models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// IP surveillance camera (Table 1 rows 1 and 4; Figures 4–5).
    Camera,
    /// Smart plug (Belkin Wemo; Table 1 rows 6–7, Figure 5).
    SmartPlug,
    /// Networked thermostat controlling the HVAC.
    Thermostat,
    /// Smoke/CO alarm (NEST Protect).
    FireAlarm,
    /// Motorized window actuator (Figure 3).
    WindowActuator,
    /// Connected light bulb.
    LightBulb,
    /// Ambient light sensor.
    LightSensor,
    /// Smart door lock.
    SmartLock,
    /// Connected oven (the fire hazard of Figure 5).
    Oven,
    /// PIR motion sensor.
    MotionSensor,
    /// TV set-top box (Table 1 row 2).
    SetTopBox,
    /// Smart refrigerator (Table 1 row 3).
    Refrigerator,
    /// Networked traffic light (Table 1 row 5).
    TrafficLight,
}

impl DeviceClass {
    /// Every modelled class.
    pub const ALL: [DeviceClass; 13] = [
        DeviceClass::Camera,
        DeviceClass::SmartPlug,
        DeviceClass::Thermostat,
        DeviceClass::FireAlarm,
        DeviceClass::WindowActuator,
        DeviceClass::LightBulb,
        DeviceClass::LightSensor,
        DeviceClass::SmartLock,
        DeviceClass::Oven,
        DeviceClass::MotionSensor,
        DeviceClass::SetTopBox,
        DeviceClass::Refrigerator,
        DeviceClass::TrafficLight,
    ];

    /// A stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            DeviceClass::Camera => "camera",
            DeviceClass::SmartPlug => "smart-plug",
            DeviceClass::Thermostat => "thermostat",
            DeviceClass::FireAlarm => "fire-alarm",
            DeviceClass::WindowActuator => "window-actuator",
            DeviceClass::LightBulb => "light-bulb",
            DeviceClass::LightSensor => "light-sensor",
            DeviceClass::SmartLock => "smart-lock",
            DeviceClass::Oven => "oven",
            DeviceClass::MotionSensor => "motion-sensor",
            DeviceClass::SetTopBox => "set-top-box",
            DeviceClass::Refrigerator => "refrigerator",
            DeviceClass::TrafficLight => "traffic-light",
        }
    }
}

/// Owner-configured administrator credentials.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdminCreds {
    /// Username.
    pub user: String,
    /// Password.
    pub pass: String,
}

impl AdminCreds {
    /// Construct credentials.
    pub fn new(user: &str, pass: &str) -> AdminCreds {
        AdminCreds { user: user.into(), pass: pass.into() }
    }

    /// A reasonable owner-chosen credential set.
    pub fn owner_default() -> AdminCreds {
        AdminCreds::new("owner", "S3cure!pass")
    }
}

/// An application message the device wants sent.
#[derive(Debug, Clone, PartialEq)]
pub struct OutMessage {
    /// Destination IP.
    pub dst: Ipv4Addr,
    /// Destination port.
    pub dst_port: u16,
    /// Source port.
    pub src_port: u16,
    /// The message.
    pub msg: AppMessage,
}

/// Everything a device produced in response to one stimulus.
#[derive(Debug, Default)]
pub struct DeviceOutput {
    /// Messages to send.
    pub messages: Vec<OutMessage>,
    /// Security events for the controller.
    pub events: Vec<SecurityEvent>,
}

impl DeviceOutput {
    fn reply(dst: Ipv4Addr, dst_port: u16, src_port: u16, msg: AppMessage) -> DeviceOutput {
        DeviceOutput {
            messages: vec![OutMessage { dst, dst_port, src_port, msg }],
            events: Vec::new(),
        }
    }
}

const AUTH_BURST_THRESHOLD: u32 = 3;

/// One simulated IoT device.
#[derive(Debug)]
pub struct IoTDevice {
    /// Deployment-wide id.
    pub id: DeviceId,
    /// SKU (vendor/model/firmware).
    pub sku: Sku,
    /// Device class.
    pub class: DeviceClass,
    /// The device's own IP address.
    pub ip: Ipv4Addr,
    /// Owner-configured credentials (changeable via `SetPassword`).
    pub creds: AdminCreds,
    /// Unfixable flaws this instance ships with.
    pub vulns: Vec<Vulnerability>,
    /// Class-specific FSM.
    pub logic: DeviceLogic,
    /// Where telemetry and events are reported (the hub / IFTTT bridge).
    pub hub: Option<Ipv4Addr>,
    /// The owner's controller address (the smartphone app); used to tell
    /// legitimate from foreign actuation in metrics.
    pub owner: Option<Ipv4Addr>,
    /// Telemetry period.
    pub telemetry_period: SimDuration,

    sessions: HashMap<u32, Ipv4Addr>,
    next_token: u32,
    auth_failures: HashMap<Ipv4Addr, u32>,
    last_telemetry: SimTime,

    /// Set when an attacker-controlled actuation or backdoor command was
    /// accepted (ground truth for experiments).
    pub compromised: bool,
    /// Set when sensitive data (image/config/keys) left to a non-owner.
    pub privacy_leaked: bool,
    /// Count of DNS reflection responses emitted (DDoS participation).
    pub dns_reflections: u64,
    /// Whether the device is alive (failure injection).
    pub alive: bool,
}

impl IoTDevice {
    /// Create a device of `class` at `ip` with the given SKU and flaws.
    pub fn new(
        id: DeviceId,
        sku: Sku,
        class: DeviceClass,
        ip: Ipv4Addr,
        vulns: Vec<Vulnerability>,
    ) -> IoTDevice {
        IoTDevice {
            id,
            sku,
            class,
            ip,
            creds: AdminCreds::owner_default(),
            vulns,
            logic: DeviceLogic::new(class),
            hub: None,
            owner: None,
            telemetry_period: SimDuration::from_secs(5),
            sessions: HashMap::new(),
            next_token: 1,
            auth_failures: HashMap::new(),
            last_telemetry: SimTime::ZERO,
            compromised: false,
            privacy_leaked: false,
            dns_reflections: 0,
            alive: true,
        }
    }

    /// Reset all runtime state back to the freshly-constructed values
    /// while keeping the device's identity (id, SKU, class, IP, creds,
    /// vulns, hub/owner binding). A resident world (E26) reuses the
    /// device across rounds; after this call its behavior is
    /// byte-identical to a cold-built instance.
    pub fn reset_runtime(&mut self) {
        self.logic = DeviceLogic::new(self.class);
        self.telemetry_period = SimDuration::from_secs(5);
        self.sessions.clear();
        self.next_token = 1;
        self.auth_failures.clear();
        self.last_telemetry = SimTime::ZERO;
        self.compromised = false;
        self.privacy_leaked = false;
        self.dns_reflections = 0;
        self.alive = true;
    }

    /// Whether this instance carries a given vulnerability class.
    pub fn has_vuln(&self, id: &str) -> bool {
        self.vulns.iter().any(|v| v.id() == id)
    }

    fn default_cred_match(&self, user: &str, pass: &str) -> bool {
        self.vulns.iter().any(|v| match v {
            Vulnerability::DefaultCredentials { user: u, pass: p } => u == user && p == pass,
            _ => false,
        })
    }

    fn leaked_key(&self) -> Option<u64> {
        self.vulns.iter().find_map(|v| match v {
            Vulnerability::ExposedKeyPair { key } => Some(*key),
            _ => None,
        })
    }

    fn is_owner(&self, src: Ipv4Addr) -> bool {
        self.owner == Some(src)
    }

    /// Handle one inbound application message.
    pub fn handle_message(
        &mut self,
        now: SimTime,
        src: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        msg: AppMessage,
        env: &mut Environment,
    ) -> DeviceOutput {
        if !self.alive {
            return DeviceOutput::default();
        }
        match (dst_port, msg) {
            (ports::MGMT, AppMessage::MgmtLogin { user, pass }) => {
                self.handle_login(now, src, src_port, user, pass)
            }
            (ports::MGMT, AppMessage::MgmtCommand { token, command }) => {
                self.handle_mgmt_command(now, src, src_port, token, command)
            }
            (ports::CONTROL, AppMessage::Control { action, auth }) => {
                self.handle_control(now, src, src_port, action, auth, env)
            }
            (ports::DNS, AppMessage::DnsQuery { name, recursion }) => {
                self.handle_dns(now, src, src_port, name, recursion)
            }
            (ports::CLOUD, AppMessage::CloudCommand { action }) => {
                self.handle_cloud(now, src, action, env)
            }
            // Telemetry/events addressed *to* a plain device are ignored;
            // hubs and controllers (in the core crate) consume those.
            _ => DeviceOutput::default(),
        }
    }

    fn handle_login(
        &mut self,
        now: SimTime,
        src: Ipv4Addr,
        src_port: u16,
        user: String,
        pass: String,
    ) -> DeviceOutput {
        let open = self.has_vuln("open-mgmt-access");
        let owner_ok = user == self.creds.user && pass == self.creds.pass;
        let default_ok = self.default_cred_match(&user, &pass);
        if open || owner_ok || default_ok {
            let token = self.next_token;
            self.next_token += 1;
            self.sessions.insert(token, src);
            self.auth_failures.remove(&src);
            let mut out =
                DeviceOutput::reply(src, src_port, ports::MGMT, AppMessage::MgmtLoginOk { token });
            if (default_ok || open) && !self.is_owner(src) {
                out.events.push(
                    SecurityEvent::new(now, self.id, SecurityEventKind::DefaultCredentialLogin)
                        .from_remote(src),
                );
            }
            out
        } else {
            let fails = self.auth_failures.entry(src).or_insert(0);
            *fails += 1;
            let mut out = DeviceOutput::reply(src, src_port, ports::MGMT, AppMessage::MgmtDenied);
            if *fails == AUTH_BURST_THRESHOLD {
                out.events.push(
                    SecurityEvent::new(now, self.id, SecurityEventKind::AuthFailureBurst)
                        .from_remote(src),
                );
            }
            out
        }
    }

    fn session_valid(&self, token: u32, src: Ipv4Addr) -> bool {
        self.sessions.get(&token) == Some(&src)
    }

    fn handle_mgmt_command(
        &mut self,
        _now: SimTime,
        src: Ipv4Addr,
        src_port: u16,
        token: u32,
        command: MgmtCommand,
    ) -> DeviceOutput {
        let open = self.has_vuln("open-mgmt-access");
        if !open && !self.session_valid(token, src) {
            return DeviceOutput::reply(src, src_port, ports::MGMT, AppMessage::MgmtDenied);
        }
        let foreign = !self.is_owner(src);
        let (ok, data) = match command {
            MgmtCommand::GetConfig => {
                if foreign {
                    self.privacy_leaked = true;
                }
                (true, Bytes::from(format!("ssid=HomeNet;sku={}", self.sku)))
            }
            MgmtCommand::GetImage => match self.logic.image_data() {
                Some(img) => {
                    if foreign {
                        self.privacy_leaked = true;
                    }
                    (true, img)
                }
                None => (false, Bytes::new()),
            },
            MgmtCommand::SetPassword { new } => {
                // The owner can set a password — but a hardcoded default
                // account is burned into firmware and stays valid. This is
                // the "unfixable" in the paper's title.
                self.creds.pass = new;
                (true, Bytes::new())
            }
            MgmtCommand::ExtractKeys => match self.leaked_key() {
                Some(key) => {
                    if foreign {
                        self.privacy_leaked = true;
                    }
                    (true, Bytes::copy_from_slice(&key.to_be_bytes()))
                }
                None => (false, Bytes::new()),
            },
            MgmtCommand::FirmwareDump => {
                if foreign {
                    self.privacy_leaked = true;
                }
                (true, Bytes::from_static(b"FWIMG"))
            }
            MgmtCommand::Reboot => {
                self.sessions.clear();
                (true, Bytes::new())
            }
        };
        DeviceOutput::reply(src, src_port, ports::MGMT, AppMessage::MgmtResult { ok, data })
    }

    fn control_authorized(&self, src: Ipv4Addr, auth: &ControlAuth) -> (bool, bool) {
        // Returns (authorized, was_unauthenticated_path).
        match auth {
            ControlAuth::Password { user, pass } => {
                let ok = (*user == self.creds.user && *pass == self.creds.pass)
                    || self.default_cred_match(user, pass);
                let via_default = self.default_cred_match(user, pass)
                    && !(*user == self.creds.user && *pass == self.creds.pass);
                (ok, via_default)
            }
            ControlAuth::Token(t) => (self.session_valid(*t, src), false),
            ControlAuth::Key(k) => (self.leaked_key() == Some(*k), self.leaked_key() == Some(*k)),
            ControlAuth::None => {
                let open = self.has_vuln("no-auth-control");
                (open, open)
            }
        }
    }

    fn handle_control(
        &mut self,
        now: SimTime,
        src: Ipv4Addr,
        src_port: u16,
        action: ControlAction,
        auth: ControlAuth,
        env: &mut Environment,
    ) -> DeviceOutput {
        let (authorized, weak_path) = self.control_authorized(src, &auth);
        if !authorized {
            return DeviceOutput::reply(
                src,
                src_port,
                ports::CONTROL,
                AppMessage::ControlAck { ok: false },
            );
        }
        let applied = self.logic.apply_action(action, env);
        let mut out = DeviceOutput::reply(
            src,
            src_port,
            ports::CONTROL,
            AppMessage::ControlAck { ok: applied },
        );
        if applied && weak_path && !self.is_owner(src) {
            self.compromised = true;
            out.events.push(
                SecurityEvent::new(now, self.id, SecurityEventKind::UnauthenticatedActuation)
                    .from_remote(src),
            );
        }
        if applied {
            if let Some(ev) = position_event(self.class, action) {
                out.events.push(SecurityEvent::new(now, self.id, ev));
            }
        }
        out
    }

    fn handle_dns(
        &mut self,
        now: SimTime,
        src: Ipv4Addr,
        src_port: u16,
        name: String,
        recursion: bool,
    ) -> DeviceOutput {
        if !self.has_vuln("open-dns-resolver") || !recursion {
            return DeviceOutput::default();
        }
        self.dns_reflections += 1;
        let mut out = DeviceOutput::reply(
            src,
            src_port,
            ports::DNS,
            AppMessage::DnsResponse { name, addr: Ipv4Addr::new(93, 184, 216, 34), answers: 30 },
        );
        if !src.is_private() || !self.is_owner(src) {
            out.events.push(
                SecurityEvent::new(now, self.id, SecurityEventKind::OpenResolverQuery)
                    .from_remote(src),
            );
        }
        out
    }

    fn handle_cloud(
        &mut self,
        now: SimTime,
        src: Ipv4Addr,
        action: ControlAction,
        env: &mut Environment,
    ) -> DeviceOutput {
        if !self.has_vuln("cloud-bypass-backdoor") {
            return DeviceOutput::default();
        }
        // The backdoor channel acknowledges any command: mere access is a
        // compromise (the firmware obeys whoever reaches this plane), even
        // when the specific verb does not apply to this device class.
        let applied = self.logic.apply_action(action, env);
        self.compromised = true;
        let mut out = DeviceOutput::reply(
            src,
            ports::CLOUD,
            ports::CLOUD,
            AppMessage::ControlAck { ok: true },
        );
        out.events.push(
            SecurityEvent::new(now, self.id, SecurityEventKind::BackdoorAccessed).from_remote(src),
        );
        if applied {
            if let Some(ev) = position_event(self.class, action) {
                out.events.push(SecurityEvent::new(now, self.id, ev));
            }
        }
        out
    }

    /// Advance the device by one tick: sense/actuate the environment and
    /// emit periodic telemetry.
    pub fn tick(&mut self, now: SimTime, env: &mut Environment) -> DeviceOutput {
        if !self.alive {
            return DeviceOutput::default();
        }
        let mut out = DeviceOutput::default();
        let tick_outputs = self.logic.tick(env);
        let due = now.duration_since(self.last_telemetry) >= self.telemetry_period;
        if due {
            self.last_telemetry = now;
        }
        for t in tick_outputs {
            match t {
                TickOutput::Telemetry(kind, value) => {
                    if due {
                        if let Some(hub) = self.hub {
                            out.messages.push(OutMessage {
                                dst: hub,
                                dst_port: ports::TELEMETRY,
                                src_port: ports::TELEMETRY,
                                msg: AppMessage::Telemetry { kind, value },
                            });
                        }
                    }
                }
                TickOutput::Event(kind) => {
                    if let Some(hub) = self.hub {
                        out.messages.push(OutMessage {
                            dst: hub,
                            dst_port: ports::TELEMETRY,
                            src_port: ports::TELEMETRY,
                            msg: AppMessage::Event { kind },
                        });
                    }
                    if let Some(sec) = security_event_for(kind) {
                        out.events.push(SecurityEvent::new(now, self.id, sec));
                    }
                }
            }
        }
        out
    }
}

/// Map a device event to the controller-facing security event, if any.
fn security_event_for(kind: EventKind) -> Option<SecurityEventKind> {
    match kind {
        EventKind::SmokeAlarm => Some(SecurityEventKind::SmokeAlarm),
        EventKind::SmokeClear => Some(SecurityEventKind::SmokeCleared),
        EventKind::MotionStart => Some(SecurityEventKind::OccupancyChanged(true)),
        EventKind::MotionStop => Some(SecurityEventKind::OccupancyChanged(false)),
        EventKind::DoorOpened => None,
        EventKind::TamperSuspected => Some(SecurityEventKind::AuthFailureBurst),
    }
}

/// Actuation events the controller's environment view tracks.
fn position_event(class: DeviceClass, action: ControlAction) -> Option<SecurityEventKind> {
    match (class, action) {
        (DeviceClass::WindowActuator, ControlAction::Open) => {
            Some(SecurityEventKind::WindowChanged(true))
        }
        (DeviceClass::WindowActuator, ControlAction::Close) => {
            Some(SecurityEventKind::WindowChanged(false))
        }
        _ => None,
    }
}

/// Telemetry kind a class primarily reports (used by the anomaly profiles
/// and tests).
pub fn primary_telemetry(class: DeviceClass) -> TelemetryKind {
    match class {
        DeviceClass::Thermostat => TelemetryKind::Temperature,
        DeviceClass::SmartPlug | DeviceClass::Oven => TelemetryKind::Power,
        DeviceClass::LightSensor | DeviceClass::LightBulb => TelemetryKind::Light,
        DeviceClass::Camera | DeviceClass::MotionSensor => TelemetryKind::Motion,
        DeviceClass::FireAlarm => TelemetryKind::Smoke,
        _ => TelemetryKind::Status,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Sku;

    fn dev(class: DeviceClass, vulns: Vec<Vulnerability>) -> IoTDevice {
        IoTDevice::new(
            DeviceId(0),
            Sku::new("acme", "widget", "1.0"),
            class,
            Ipv4Addr::new(10, 0, 0, 5),
            vulns,
        )
    }

    fn attacker_ip() -> Ipv4Addr {
        Ipv4Addr::new(100, 64, 0, 99)
    }

    #[test]
    fn owner_login_works() {
        let mut d = dev(DeviceClass::Camera, vec![]);
        let mut env = Environment::new();
        let out = d.handle_message(
            SimTime::ZERO,
            Ipv4Addr::new(10, 0, 0, 2),
            5000,
            ports::MGMT,
            AppMessage::MgmtLogin { user: "owner".into(), pass: "S3cure!pass".into() },
            &mut env,
        );
        assert!(matches!(out.messages[0].msg, AppMessage::MgmtLoginOk { .. }));
        assert!(out.events.is_empty() || !out.events[0].kind.is_suspicious());
    }

    #[test]
    fn default_credentials_survive_password_change() {
        let mut d = dev(DeviceClass::Camera, vec![Vulnerability::default_admin_admin()]);
        let mut env = Environment::new();
        let owner = Ipv4Addr::new(10, 0, 0, 2);
        d.owner = Some(owner);
        // Owner logs in and changes the password.
        let out = d.handle_message(
            SimTime::ZERO,
            owner,
            5000,
            ports::MGMT,
            AppMessage::MgmtLogin { user: "owner".into(), pass: "S3cure!pass".into() },
            &mut env,
        );
        let token = match out.messages[0].msg {
            AppMessage::MgmtLoginOk { token } => token,
            _ => panic!(),
        };
        d.handle_message(
            SimTime::ZERO,
            owner,
            5000,
            ports::MGMT,
            AppMessage::MgmtCommand {
                token,
                command: MgmtCommand::SetPassword { new: "newpass".into() },
            },
            &mut env,
        );
        // Attacker still gets in with admin/admin — the unfixable flaw.
        let out = d.handle_message(
            SimTime::ZERO,
            attacker_ip(),
            6000,
            ports::MGMT,
            AppMessage::MgmtLogin { user: "admin".into(), pass: "admin".into() },
            &mut env,
        );
        assert!(matches!(out.messages[0].msg, AppMessage::MgmtLoginOk { .. }));
        assert_eq!(out.events[0].kind, SecurityEventKind::DefaultCredentialLogin);
    }

    #[test]
    fn brute_force_raises_auth_burst() {
        let mut d = dev(DeviceClass::Camera, vec![]);
        let mut env = Environment::new();
        let mut burst = 0;
        for i in 0..5 {
            let out = d.handle_message(
                SimTime::from_secs(i),
                attacker_ip(),
                6000,
                ports::MGMT,
                AppMessage::MgmtLogin { user: "admin".into(), pass: format!("guess{i}") },
                &mut env,
            );
            burst +=
                out.events.iter().filter(|e| e.kind == SecurityEventKind::AuthFailureBurst).count();
            assert!(matches!(out.messages[0].msg, AppMessage::MgmtDenied));
        }
        assert_eq!(burst, 1); // raised exactly once, at the threshold
    }

    #[test]
    fn image_extraction_marks_privacy_leak() {
        let mut d = dev(DeviceClass::Camera, vec![Vulnerability::default_admin_admin()]);
        let mut env = Environment::new();
        let out = d.handle_message(
            SimTime::ZERO,
            attacker_ip(),
            6000,
            ports::MGMT,
            AppMessage::MgmtLogin { user: "admin".into(), pass: "admin".into() },
            &mut env,
        );
        let token = match out.messages[0].msg {
            AppMessage::MgmtLoginOk { token } => token,
            _ => panic!(),
        };
        let out = d.handle_message(
            SimTime::ZERO,
            attacker_ip(),
            6000,
            ports::MGMT,
            AppMessage::MgmtCommand { token, command: MgmtCommand::GetImage },
            &mut env,
        );
        match &out.messages[0].msg {
            AppMessage::MgmtResult { ok, data } => {
                assert!(ok);
                assert!(!data.is_empty());
            }
            _ => panic!(),
        }
        assert!(d.privacy_leaked);
    }

    #[test]
    fn session_tokens_are_source_bound() {
        let mut d = dev(DeviceClass::Camera, vec![]);
        let mut env = Environment::new();
        let owner = Ipv4Addr::new(10, 0, 0, 2);
        let out = d.handle_message(
            SimTime::ZERO,
            owner,
            5000,
            ports::MGMT,
            AppMessage::MgmtLogin { user: "owner".into(), pass: "S3cure!pass".into() },
            &mut env,
        );
        let token = match out.messages[0].msg {
            AppMessage::MgmtLoginOk { token } => token,
            _ => panic!(),
        };
        // Attacker replays the token from a different address.
        let out = d.handle_message(
            SimTime::ZERO,
            attacker_ip(),
            6000,
            ports::MGMT,
            AppMessage::MgmtCommand { token, command: MgmtCommand::GetConfig },
            &mut env,
        );
        assert!(matches!(out.messages[0].msg, AppMessage::MgmtDenied));
        assert!(!d.privacy_leaked);
    }

    #[test]
    fn no_auth_control_accepts_anyone_and_flags_compromise() {
        let mut d = dev(DeviceClass::TrafficLight, vec![Vulnerability::NoAuthControl]);
        let mut env = Environment::new();
        let out = d.handle_message(
            SimTime::ZERO,
            attacker_ip(),
            6000,
            ports::CONTROL,
            AppMessage::Control { action: ControlAction::SetPhase(2), auth: ControlAuth::None },
            &mut env,
        );
        assert!(matches!(out.messages[0].msg, AppMessage::ControlAck { ok: true }));
        assert!(d.compromised);
        assert_eq!(out.events[0].kind, SecurityEventKind::UnauthenticatedActuation);
    }

    #[test]
    fn secure_device_rejects_unauthenticated_control() {
        let mut d = dev(DeviceClass::SmartPlug, vec![]);
        let mut env = Environment::new();
        let out = d.handle_message(
            SimTime::ZERO,
            attacker_ip(),
            6000,
            ports::CONTROL,
            AppMessage::Control { action: ControlAction::TurnOn, auth: ControlAuth::None },
            &mut env,
        );
        assert!(matches!(out.messages[0].msg, AppMessage::ControlAck { ok: false }));
        assert!(!d.compromised);
    }

    #[test]
    fn leaked_key_authorizes_control() {
        let mut d = dev(DeviceClass::Camera, vec![Vulnerability::ExposedKeyPair { key: 0xBEEF }]);
        let mut env = Environment::new();
        let out = d.handle_message(
            SimTime::ZERO,
            attacker_ip(),
            6000,
            ports::CONTROL,
            AppMessage::Control { action: ControlAction::TurnOff, auth: ControlAuth::Key(0xBEEF) },
            &mut env,
        );
        assert!(matches!(out.messages[0].msg, AppMessage::ControlAck { ok: true }));
        assert!(d.compromised);
        // Wrong key fails.
        let out = d.handle_message(
            SimTime::ZERO,
            attacker_ip(),
            6000,
            ports::CONTROL,
            AppMessage::Control { action: ControlAction::TurnOff, auth: ControlAuth::Key(0xDEAD) },
            &mut env,
        );
        assert!(matches!(out.messages[0].msg, AppMessage::ControlAck { ok: false }));
    }

    #[test]
    fn open_resolver_reflects_and_reports() {
        let mut d = dev(DeviceClass::SmartPlug, vec![Vulnerability::OpenDnsResolver]);
        let mut env = Environment::new();
        // Spoofed source: the victim's address.
        let victim = Ipv4Addr::new(203, 0, 113, 7);
        let out = d.handle_message(
            SimTime::ZERO,
            victim,
            53,
            ports::DNS,
            AppMessage::DnsQuery { name: "big.example".into(), recursion: true },
            &mut env,
        );
        assert_eq!(out.messages[0].dst, victim);
        assert!(matches!(out.messages[0].msg, AppMessage::DnsResponse { .. }));
        assert_eq!(d.dns_reflections, 1);
        assert_eq!(out.events[0].kind, SecurityEventKind::OpenResolverQuery);
        // A patched device ignores DNS entirely.
        let mut d2 = dev(DeviceClass::SmartPlug, vec![]);
        let out = d2.handle_message(
            SimTime::ZERO,
            victim,
            53,
            ports::DNS,
            AppMessage::DnsQuery { name: "big.example".into(), recursion: true },
            &mut env,
        );
        assert!(out.messages.is_empty());
    }

    #[test]
    fn cloud_backdoor_bypasses_auth() {
        let mut d = dev(DeviceClass::SmartPlug, vec![Vulnerability::CloudBypassBackdoor]);
        let mut env = Environment::new();
        let out = d.handle_message(
            SimTime::ZERO,
            attacker_ip(),
            6000,
            ports::CLOUD,
            AppMessage::CloudCommand { action: ControlAction::TurnOn },
            &mut env,
        );
        assert!(d.compromised);
        assert_eq!(out.events[0].kind, SecurityEventKind::BackdoorAccessed);
        // Without the vuln the channel is dead.
        let mut d2 = dev(DeviceClass::SmartPlug, vec![]);
        let out = d2.handle_message(
            SimTime::ZERO,
            attacker_ip(),
            6000,
            ports::CLOUD,
            AppMessage::CloudCommand { action: ControlAction::TurnOn },
            &mut env,
        );
        assert!(out.events.is_empty());
        assert!(!d2.compromised);
    }

    #[test]
    fn dead_device_is_silent() {
        let mut d = dev(DeviceClass::Camera, vec![Vulnerability::OpenMgmtAccess]);
        d.alive = false;
        let mut env = Environment::new();
        let out = d.handle_message(
            SimTime::ZERO,
            attacker_ip(),
            6000,
            ports::MGMT,
            AppMessage::MgmtLogin { user: "x".into(), pass: "y".into() },
            &mut env,
        );
        assert!(out.messages.is_empty());
        assert!(d.tick(SimTime::from_secs(10), &mut env).messages.is_empty());
    }

    #[test]
    fn telemetry_respects_period_and_hub() {
        let mut d = dev(DeviceClass::Thermostat, vec![]);
        let mut env = Environment::new();
        // No hub: nothing to send.
        let out = d.tick(SimTime::from_secs(10), &mut env);
        assert!(out.messages.is_empty());
        d.hub = Some(Ipv4Addr::new(10, 0, 0, 1));
        let out = d.tick(SimTime::from_secs(20), &mut env);
        assert!(out.messages.iter().any(|m| matches!(m.msg, AppMessage::Telemetry { .. })));
        // Immediately after, the period gates it.
        let out = d.tick(SimTime::from_secs(21), &mut env);
        assert!(!out.messages.iter().any(|m| matches!(m.msg, AppMessage::Telemetry { .. })));
    }
}
