//! The shared physical environment.
//!
//! IoT devices are coupled not only through explicit packets but through
//! the physical world: the paper's running example is an attacker who
//! turns off a smart plug powering the air-conditioner, which raises the
//! temperature, which triggers an IFTTT rule that opens the windows —
//! a physical break-in achieved without ever touching the window actuator.
//!
//! The environment holds a small set of continuous and boolean variables
//! with simple first-order dynamics, plus a **discretization** into the
//! `EnvVar = value` form the policy layer (§3.2 of the paper) operates on.

use serde::{Deserialize, Serialize};

/// Discrete environmental variables, as seen by the policy layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EnvVar {
    /// Room temperature, discretized Low / Normal / High.
    Temperature,
    /// Smoke present, Yes / No.
    Smoke,
    /// Ambient light, Dark / Bright.
    Light,
    /// Somebody at home, Present / Absent.
    Occupancy,
    /// Window actuator position, Open / Closed.
    Window,
    /// Front door lock, Locked / Unlocked.
    Door,
    /// Mains power draw, Normal / High (the Wemo Insight's own metric).
    PowerDraw,
}

impl EnvVar {
    /// All modelled variables.
    pub const ALL: [EnvVar; 7] = [
        EnvVar::Temperature,
        EnvVar::Smoke,
        EnvVar::Light,
        EnvVar::Occupancy,
        EnvVar::Window,
        EnvVar::Door,
        EnvVar::PowerDraw,
    ];

    /// The discrete values this variable ranges over.
    pub fn domain(self) -> &'static [&'static str] {
        match self {
            EnvVar::Temperature => &["low", "normal", "high"],
            EnvVar::Smoke => &["no", "yes"],
            EnvVar::Light => &["dark", "bright"],
            EnvVar::Occupancy => &["absent", "present"],
            EnvVar::Window => &["closed", "open"],
            EnvVar::Door => &["locked", "unlocked"],
            EnvVar::PowerDraw => &["normal", "high"],
        }
    }
}

/// The continuous physical state plus actuation inputs.
///
/// Devices write through typed setters (the actuation surface); dynamics
/// advance on [`Environment::step`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Environment {
    /// Room temperature in °C.
    pub temperature_c: f64,
    /// Outdoor/ambient temperature the room relaxes toward.
    pub ambient_c: f64,
    /// Smoke density (0 = clear; ≥ smoke threshold = alarm-worthy).
    pub smoke_density: f64,
    /// Ambient light level in arbitrary lux-like units.
    pub light_level: f64,
    /// Daylight contribution (scenario-driven).
    pub daylight: f64,
    /// Whether anyone is home (scenario-driven).
    pub occupied: bool,
    /// Window actuator position.
    pub window_open: bool,
    /// Door lock state.
    pub door_locked: bool,

    // ----- actuation inputs (written by devices each tick) -----
    /// Air-conditioner duty (0..1); cools toward `ac_setpoint_c`. Written
    /// by the thermostat.
    pub ac_duty: f64,
    /// AC setpoint in °C.
    pub ac_setpoint_c: f64,
    /// Whether the AC's power source (a smart plug, in the paper's
    /// attack scenario) is on. The AC only runs when powered.
    pub ac_breaker_on: bool,
    /// Oven heat output (0..1). Written by the oven.
    pub oven_duty: f64,
    /// Whether the oven's power source is on (the Wemo in Figure 5).
    pub oven_breaker_on: bool,
    /// Number of lit bulbs (each adds light).
    pub bulbs_on: u32,
    /// Total device power draw in watts (plugs report in).
    pub power_w: f64,

    // ----- hazard bookkeeping -----
    /// Seconds the oven has been on while nobody is home.
    pub unattended_oven_s: f64,
}

impl Default for Environment {
    fn default() -> Self {
        Environment {
            temperature_c: 21.0,
            ambient_c: 28.0,
            smoke_density: 0.0,
            light_level: 0.0,
            daylight: 50.0,
            occupied: true,
            window_open: false,
            door_locked: true,
            ac_duty: 0.0,
            ac_setpoint_c: 21.0,
            ac_breaker_on: true,
            oven_duty: 0.0,
            oven_breaker_on: true,
            bulbs_on: 0,
            power_w: 0.0,
            unattended_oven_s: 0.0,
        }
    }
}

/// Thresholds used by [`Environment::discretize`].
pub mod thresholds {
    /// Below this, Temperature = low.
    pub const TEMP_LOW_C: f64 = 17.0;
    /// Above this, Temperature = high.
    pub const TEMP_HIGH_C: f64 = 27.0;
    /// At or above this smoke density, Smoke = yes.
    pub const SMOKE_ALARM: f64 = 0.5;
    /// At or above this light level, Light = bright.
    pub const LIGHT_BRIGHT: f64 = 30.0;
    /// Above this wattage, PowerDraw = high.
    pub const POWER_HIGH_W: f64 = 1500.0;
}

impl Environment {
    /// A fresh environment with default initial conditions.
    pub fn new() -> Environment {
        Environment::default()
    }

    /// Reset the per-tick accumulator inputs (bulb count, power draw)
    /// before devices write their contributions for this tick.
    pub fn begin_tick(&mut self) {
        self.bulbs_on = 0;
        self.power_w = 0.0;
    }

    /// Advance the physical dynamics by `dt_s` seconds.
    ///
    /// * Temperature relaxes toward ambient; the AC pulls it toward its
    ///   setpoint; the oven and an open window add/exchange heat.
    /// * Smoke builds when the oven runs unattended past a grace period
    ///   (the fire-hazard coupling in the paper's Figure 5 scenario) and
    ///   decays otherwise, faster with a window open.
    /// * Light is daylight plus bulbs.
    pub fn step(&mut self, dt_s: f64) {
        let ac_effective = if self.ac_breaker_on { self.ac_duty } else { 0.0 };
        let oven_effective = if self.oven_breaker_on { self.oven_duty } else { 0.0 };

        // Temperature dynamics: first-order relaxation.
        let leak_rate = if self.window_open { 0.02 } else { 0.004 };
        let towards_ambient = (self.ambient_c - self.temperature_c) * leak_rate;
        let ac_pull = (self.ac_setpoint_c - self.temperature_c).min(0.0) * 0.05 * ac_effective;
        let oven_heat = 0.08 * oven_effective;
        self.temperature_c += (towards_ambient + ac_pull + oven_heat) * dt_s;

        // Unattended-oven fire hazard.
        if oven_effective > 0.0 && !self.occupied {
            self.unattended_oven_s += dt_s;
        } else {
            self.unattended_oven_s = 0.0;
        }
        if self.unattended_oven_s > 120.0 {
            self.smoke_density += 0.01 * dt_s * oven_effective;
        } else {
            let decay = if self.window_open { 0.02 } else { 0.005 };
            self.smoke_density = (self.smoke_density - decay * dt_s).max(0.0);
        }
        self.smoke_density = self.smoke_density.min(5.0);

        // Light.
        self.light_level = self.daylight + self.bulbs_on as f64 * 40.0;
    }

    /// Discretize into the policy layer's `EnvVar = value` snapshot.
    pub fn discretize(&self) -> DiscreteEnv {
        use thresholds::*;
        DiscreteEnv {
            temperature: if self.temperature_c < TEMP_LOW_C {
                "low"
            } else if self.temperature_c > TEMP_HIGH_C {
                "high"
            } else {
                "normal"
            },
            smoke: if self.smoke_density >= SMOKE_ALARM { "yes" } else { "no" },
            light: if self.light_level >= LIGHT_BRIGHT { "bright" } else { "dark" },
            occupancy: if self.occupied { "present" } else { "absent" },
            window: if self.window_open { "open" } else { "closed" },
            door: if self.door_locked { "locked" } else { "unlocked" },
            power_draw: if self.power_w > POWER_HIGH_W { "high" } else { "normal" },
        }
    }
}

/// The discretized environment: one value per [`EnvVar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct DiscreteEnv {
    /// Temperature band.
    pub temperature: &'static str,
    /// Smoke present?
    pub smoke: &'static str,
    /// Light band.
    pub light: &'static str,
    /// Occupancy.
    pub occupancy: &'static str,
    /// Window position.
    pub window: &'static str,
    /// Door lock.
    pub door: &'static str,
    /// Power-draw band.
    pub power_draw: &'static str,
}

impl DiscreteEnv {
    /// Value of one variable.
    pub fn get(&self, var: EnvVar) -> &'static str {
        match var {
            EnvVar::Temperature => self.temperature,
            EnvVar::Smoke => self.smoke,
            EnvVar::Light => self.light,
            EnvVar::Occupancy => self.occupancy,
            EnvVar::Window => self.window,
            EnvVar::Door => self.door,
            EnvVar::PowerDraw => self.power_draw,
        }
    }
}

/// A timestamped snapshot of the discrete environment, as shipped to the
/// controller's global view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct EnvSnapshot {
    /// Snapshot time (nanoseconds of sim time; kept raw to avoid a
    /// dependency cycle in serialized reports).
    pub at_ns: u64,
    /// The discrete values.
    pub values: DiscreteEnv,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_discretization_is_calm() {
        let env = Environment::new();
        let d = env.discretize();
        assert_eq!(d.temperature, "normal");
        assert_eq!(d.smoke, "no");
        assert_eq!(d.occupancy, "present");
        assert_eq!(d.window, "closed");
        assert_eq!(d.door, "locked");
        assert_eq!(d.get(EnvVar::Smoke), "no");
    }

    #[test]
    fn temperature_rises_without_ac() {
        let mut env = Environment::new();
        env.ambient_c = 35.0;
        for _ in 0..2000 {
            env.step(1.0);
        }
        assert!(env.temperature_c > 27.0, "temp {}", env.temperature_c);
        assert_eq!(env.discretize().temperature, "high");
    }

    #[test]
    fn ac_holds_temperature_down() {
        let mut env = Environment::new();
        env.ambient_c = 35.0;
        env.ac_duty = 1.0;
        env.ac_setpoint_c = 21.0;
        for _ in 0..2000 {
            env.step(1.0);
        }
        assert!(env.temperature_c < 27.0, "temp {}", env.temperature_c);
    }

    #[test]
    fn open_window_leaks_heat_faster() {
        let mut closed = Environment::new();
        closed.ambient_c = 35.0;
        let mut open = closed.clone();
        open.window_open = true;
        for _ in 0..300 {
            closed.step(1.0);
            open.step(1.0);
        }
        assert!(open.temperature_c > closed.temperature_c);
    }

    #[test]
    fn unattended_oven_eventually_smokes() {
        let mut env = Environment::new();
        env.occupied = false;
        env.oven_duty = 1.0;
        for _ in 0..400 {
            env.step(1.0);
        }
        assert!(env.smoke_density >= thresholds::SMOKE_ALARM);
        assert_eq!(env.discretize().smoke, "yes");
    }

    #[test]
    fn attended_oven_does_not_smoke() {
        let mut env = Environment::new();
        env.occupied = true;
        env.oven_duty = 1.0;
        for _ in 0..400 {
            env.step(1.0);
        }
        assert_eq!(env.smoke_density, 0.0);
    }

    #[test]
    fn smoke_decays_faster_with_window_open() {
        let mut a = Environment::new();
        a.smoke_density = 1.0;
        let mut b = a.clone();
        b.window_open = true;
        for _ in 0..30 {
            a.step(1.0);
            b.step(1.0);
        }
        assert!(b.smoke_density < a.smoke_density);
    }

    #[test]
    fn bulbs_light_the_room() {
        let mut env = Environment::new();
        env.daylight = 0.0;
        env.step(1.0);
        assert_eq!(env.discretize().light, "dark");
        env.bulbs_on = 1;
        env.step(1.0);
        assert_eq!(env.discretize().light, "bright");
    }

    #[test]
    fn env_var_domains_nonempty_and_distinct() {
        for v in EnvVar::ALL {
            let dom = v.domain();
            assert!(dom.len() >= 2);
            let mut uniq = dom.to_vec();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), dom.len());
        }
    }
}
