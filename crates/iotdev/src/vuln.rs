//! Executable vulnerability models — Table 1 of the paper, made concrete.
//!
//! Each vulnerability class changes how a device's authentication or
//! request-handling behaves. The paper's core premise is that these flaws
//! are **unfixable at the host** (no patches, no interface to change the
//! password, vendors gone) — so the device code in this crate deliberately
//! offers no way to remove them. Only the network (the `umbox` layer) can
//! mitigate.

use serde::{Deserialize, Serialize};

/// A vulnerability class attached to a device instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vulnerability {
    /// Table 1 rows 1–3: a hardcoded default account the user cannot
    /// change (`admin`/`admin` on Avtech cameras; the device's
    /// `SetPassword` silently fails to remove it).
    DefaultCredentials {
        /// Hardcoded username.
        user: String,
        /// Hardcoded password.
        pass: String,
    },
    /// Table 1 rows 2–3: the management interface requires no
    /// authentication at all (exposed set-top boxes, the smart fridge).
    OpenMgmtAccess,
    /// Table 1 row 4: the firmware image leaks the device's RSA key pair;
    /// anyone holding the key authenticates as the device owner.
    ExposedKeyPair {
        /// The (simulated) private-key fingerprint; identical across the
        /// whole SKU, which is what made the real flaw catastrophic.
        key: u64,
    },
    /// Table 1 row 5: the control channel accepts actuation commands with
    /// no credentials (the 219 traffic lights).
    NoAuthControl,
    /// Table 1 row 6: the device runs an open DNS resolver usable for
    /// reflection/amplification DDoS (Belkin Wemo).
    OpenDnsResolver,
    /// Table 1 row 7: a vendor-cloud channel accepts commands that bypass
    /// the app's authentication entirely (Belkin Wemo remote access).
    CloudBypassBackdoor,
}

impl Vulnerability {
    /// A short stable identifier used in signatures and reports.
    pub fn id(&self) -> &'static str {
        match self {
            Vulnerability::DefaultCredentials { .. } => "default-credentials",
            Vulnerability::OpenMgmtAccess => "open-mgmt-access",
            Vulnerability::ExposedKeyPair { .. } => "exposed-key-pair",
            Vulnerability::NoAuthControl => "no-auth-control",
            Vulnerability::OpenDnsResolver => "open-dns-resolver",
            Vulnerability::CloudBypassBackdoor => "cloud-bypass-backdoor",
        }
    }

    /// The Table 1 row(s) this class reproduces.
    pub fn table1_rows(&self) -> &'static [u8] {
        match self {
            Vulnerability::DefaultCredentials { .. } => &[1],
            Vulnerability::OpenMgmtAccess => &[2, 3],
            Vulnerability::ExposedKeyPair { .. } => &[4],
            Vulnerability::NoAuthControl => &[5],
            Vulnerability::OpenDnsResolver => &[6],
            Vulnerability::CloudBypassBackdoor => &[7],
        }
    }

    /// The canonical Avtech-style default account.
    pub fn default_admin_admin() -> Vulnerability {
        Vulnerability::DefaultCredentials { user: "admin".into(), pass: "admin".into() }
    }

    /// All six classes with representative parameters, for corpus
    /// generation.
    pub fn all_classes() -> Vec<Vulnerability> {
        vec![
            Vulnerability::default_admin_admin(),
            Vulnerability::OpenMgmtAccess,
            Vulnerability::ExposedKeyPair { key: 0x5eed_c0de_5eed_c0de },
            Vulnerability::NoAuthControl,
            Vulnerability::OpenDnsResolver,
            Vulnerability::CloudBypassBackdoor,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let classes = Vulnerability::all_classes();
        let mut ids: Vec<_> = classes.iter().map(|v| v.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), classes.len());
    }

    #[test]
    fn table1_rows_cover_all_seven() {
        let mut rows: Vec<u8> =
            Vulnerability::all_classes().iter().flat_map(|v| v.table1_rows().to_vec()).collect();
        rows.sort();
        assert_eq!(rows, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn default_creds_are_admin_admin() {
        match Vulnerability::default_admin_admin() {
            Vulnerability::DefaultCredentials { user, pass } => {
                assert_eq!(user, "admin");
                assert_eq!(pass, "admin");
            }
            _ => panic!(),
        }
    }
}
