//! Security-relevant events.
//!
//! Devices and µmboxes report context changes to the IoTSec controller —
//! the paper's "events from devices and µmboxes" arrow in Figure 2. These
//! events are what flips a device's security context from `normal` to
//! `suspicious`/`compromised` in the policy state machine (Figure 3).

use crate::device::DeviceId;
use iotnet::addr::Ipv4Addr;
use iotnet::time::SimTime;
use serde::{Deserialize, Serialize};

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SecurityEventKind {
    /// Repeated failed management logins from one source (brute-force).
    AuthFailureBurst,
    /// A management login succeeded using known-default credentials.
    DefaultCredentialLogin,
    /// A command arrived over the vendor-cloud backdoor channel.
    BackdoorAccessed,
    /// An unauthenticated actuation command was accepted.
    UnauthenticatedActuation,
    /// A µmbox blocked an actuation attempt before it reached the device
    /// (the device is under attack, but not compromised).
    BlockedActuation,
    /// A DNS query from a non-local source was answered (open resolver
    /// in use — likely reflection).
    OpenResolverQuery,
    /// The device raised its smoke alarm.
    SmokeAlarm,
    /// The smoke alarm cleared.
    SmokeCleared,
    /// The camera/motion sensor's occupancy verdict changed.
    OccupancyChanged(bool),
    /// The window actuator reported a position change.
    WindowChanged(bool),
    /// A signature µmbox matched attack traffic.
    SignatureMatch,
    /// An anomaly detector flagged the device's behaviour.
    AnomalyFlagged,
    /// The device stopped responding (crash/failure injection).
    Unresponsive,
}

impl SecurityEventKind {
    /// Whether this event should escalate the device's security context
    /// (as opposed to merely updating the environment view).
    pub fn is_suspicious(self) -> bool {
        matches!(
            self,
            SecurityEventKind::AuthFailureBurst
                | SecurityEventKind::DefaultCredentialLogin
                | SecurityEventKind::BackdoorAccessed
                | SecurityEventKind::UnauthenticatedActuation
                | SecurityEventKind::BlockedActuation
                | SecurityEventKind::OpenResolverQuery
                | SecurityEventKind::SignatureMatch
                | SecurityEventKind::AnomalyFlagged
        )
    }
}

/// A timestamped, attributed security event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SecurityEvent {
    /// When it happened.
    pub at: SimTime,
    /// The device it concerns.
    pub device: DeviceId,
    /// What happened.
    pub kind: SecurityEventKind,
    /// The remote address involved, if any.
    pub remote: Option<Ipv4Addr>,
}

impl SecurityEvent {
    /// Construct an event.
    pub fn new(at: SimTime, device: DeviceId, kind: SecurityEventKind) -> SecurityEvent {
        SecurityEvent { at, device, kind, remote: None }
    }

    /// Attach the remote peer address.
    pub fn from_remote(mut self, remote: Ipv4Addr) -> SecurityEvent {
        self.remote = Some(remote);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suspicion_classification() {
        assert!(SecurityEventKind::AuthFailureBurst.is_suspicious());
        assert!(SecurityEventKind::BackdoorAccessed.is_suspicious());
        assert!(SecurityEventKind::SignatureMatch.is_suspicious());
        assert!(!SecurityEventKind::SmokeAlarm.is_suspicious());
        assert!(!SecurityEventKind::OccupancyChanged(true).is_suspicious());
        assert!(!SecurityEventKind::WindowChanged(false).is_suspicious());
    }

    #[test]
    fn builder_attaches_remote() {
        let e = SecurityEvent::new(SimTime::ZERO, DeviceId(3), SecurityEventKind::SmokeAlarm)
            .from_remote(Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(e.remote, Some(Ipv4Addr::new(1, 2, 3, 4)));
        assert_eq!(e.device, DeviceId(3));
    }
}
