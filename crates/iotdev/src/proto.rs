//! The IoT application protocol and its wire codec.
//!
//! Real IoT devices speak a zoo of vendor protocols (HTTP management
//! consoles, UPnP control, CoAP telemetry, plain DNS). The substrate
//! collapses that zoo into one compact binary protocol with four planes —
//! management, control, telemetry and DNS — which preserves exactly the
//! distinctions the paper's enforcement layer cares about: *which plane a
//! packet belongs to, whether it carries credentials, and what it asks the
//! device to do.*
//!
//! Messages are length-delimited binary (tag byte + fields) carried in the
//! UDP/TCP payload of an [`iotnet::Packet`]. The codec is total in both
//! directions and property-tested for round-trip fidelity, since signature
//! µmboxes match on these wire bytes.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use core::fmt;
use iotnet::addr::Ipv4Addr;
use serde::{Deserialize, Serialize};

/// Well-known ports of the substrate protocol.
pub mod ports {
    /// TCP management console (the "admin/admin web UI" of Table 1).
    pub const MGMT: u16 = 8080;
    /// UDP control plane (UPnP-like actuation, e.g. Wemo's 49153).
    pub const CONTROL: u16 = 49153;
    /// UDP telemetry plane (CoAP-like periodic reports).
    pub const TELEMETRY: u16 = 5683;
    /// UDP DNS (the Wemo open-resolver vulnerability, Table 1 row 6).
    pub const DNS: u16 = 53;
    /// TCP vendor-cloud channel (the backdoor of Table 1 row 7).
    pub const CLOUD: u16 = 8443;
}

/// Decode errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Buffer ended before the message did.
    Truncated,
    /// Unknown message/command/action tag.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadString,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated message"),
            CodecError::BadTag(t) => write!(f, "unknown tag {t}"),
            CodecError::BadString => write!(f, "invalid utf-8 in string field"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Management-plane commands.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MgmtCommand {
    /// Read the device configuration (leaks Wi-Fi creds on real devices).
    GetConfig,
    /// Fetch the current camera image / sensor dump.
    GetImage,
    /// Change the admin password.
    SetPassword {
        /// The new password.
        new: String,
    },
    /// Extract embedded key material (the CCTV RSA-key flaw, Table 1 row 4).
    ExtractKeys,
    /// Dump the firmware image.
    FirmwareDump,
    /// Reboot the device.
    Reboot,
}

/// Control-plane actions (actuation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ControlAction {
    /// Power on (plug, oven, bulb).
    TurnOn,
    /// Power off.
    TurnOff,
    /// Open (window actuator).
    Open,
    /// Close.
    Close,
    /// Lock (smart lock).
    Lock,
    /// Unlock.
    Unlock,
    /// Set a numeric target (thermostat setpoint, tenths of °C).
    SetTarget(i16),
    /// Set bulb color index.
    SetColor(u8),
    /// Set traffic-light phase (0 = red, 1 = yellow, 2 = green).
    SetPhase(u8),
}

impl ControlAction {
    /// Whether this action changes the physical world in a way the paper's
    /// safety policies guard (actuation, as opposed to tuning).
    pub fn is_actuation(self) -> bool {
        !matches!(self, ControlAction::SetColor(_))
    }
}

/// Authentication attached to a control request.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControlAuth {
    /// No credentials.
    None,
    /// Username/password.
    Password {
        /// Username.
        user: String,
        /// Password.
        pass: String,
    },
    /// A session token from a prior management login.
    Token(u32),
    /// Possession of a device key pair (the leaked-RSA-key path).
    Key(u64),
}

/// Telemetry report kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TelemetryKind {
    /// Temperature in °C.
    Temperature,
    /// Power draw in watts.
    Power,
    /// Light level.
    Light,
    /// Motion detected (1.0) or not (0.0).
    Motion,
    /// Smoke density.
    Smoke,
    /// Generic status heartbeat.
    Status,
}

/// Asynchronous device events (pushed to subscribers / the hub).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// Smoke alarm raised.
    SmokeAlarm,
    /// Smoke alarm cleared.
    SmokeClear,
    /// Motion started.
    MotionStart,
    /// Motion stopped.
    MotionStop,
    /// Door was opened.
    DoorOpened,
    /// The device believes it is being tampered with (repeated bad logins).
    TamperSuspected,
}

/// One application-layer message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AppMessage {
    /// Login to the management console.
    MgmtLogin {
        /// Username.
        user: String,
        /// Password.
        pass: String,
    },
    /// Login accepted; carry `token` in subsequent commands.
    MgmtLoginOk {
        /// Session token.
        token: u32,
    },
    /// Login or command rejected.
    MgmtDenied,
    /// An authenticated management command.
    MgmtCommand {
        /// Session token (ignored by devices with open management).
        token: u32,
        /// The command.
        command: MgmtCommand,
    },
    /// Result of a management command.
    MgmtResult {
        /// Success flag.
        ok: bool,
        /// Returned data (image bytes, config, key material...).
        data: Bytes,
    },
    /// A control-plane actuation request.
    Control {
        /// The requested action.
        action: ControlAction,
        /// Credentials, if any.
        auth: ControlAuth,
    },
    /// Control acknowledgement.
    ControlAck {
        /// Whether the action was performed.
        ok: bool,
    },
    /// A periodic telemetry report.
    Telemetry {
        /// What is being reported.
        kind: TelemetryKind,
        /// The value.
        value: f64,
    },
    /// An asynchronous event notification.
    Event {
        /// The event.
        kind: EventKind,
    },
    /// A DNS query (devices with [`crate::vuln::Vulnerability::OpenDnsResolver`]
    /// answer anyone).
    DnsQuery {
        /// Queried name.
        name: String,
        /// Recursion desired.
        recursion: bool,
    },
    /// A DNS response; `answers` scales the wire size (amplification).
    DnsResponse {
        /// Echoed name.
        name: String,
        /// Resolved address.
        addr: Ipv4Addr,
        /// Number of answer records; each pads the wire by 32 bytes.
        answers: u16,
    },
    /// A vendor-cloud command (arrives on the cloud port; devices with the
    /// cloud-bypass backdoor obey it with no authentication).
    CloudCommand {
        /// The action.
        action: ControlAction,
    },
}

// ---- tag constants -------------------------------------------------------

/// Wire tags: the first byte of every encoded [`AppMessage`] names its
/// variant. Public so payload inspectors (the IDS signature pre-filters)
/// can reject non-candidate packets on one byte compare before paying for
/// a full decode; [`AppMessage::decode`] succeeding for a variant implies
/// the payload's first byte is that variant's tag.
pub mod tag {
    /// `AppMessage::MgmtLogin`.
    pub const MGMT_LOGIN: u8 = 1;
    /// `AppMessage::MgmtLoginOk`.
    pub const MGMT_LOGIN_OK: u8 = 2;
    /// `AppMessage::MgmtDenied`.
    pub const MGMT_DENIED: u8 = 3;
    /// `AppMessage::MgmtCommand`.
    pub const MGMT_COMMAND: u8 = 4;
    /// `AppMessage::MgmtResult`.
    pub const MGMT_RESULT: u8 = 5;
    /// `AppMessage::Control`.
    pub const CONTROL: u8 = 6;
    /// `AppMessage::ControlAck`.
    pub const CONTROL_ACK: u8 = 7;
    /// `AppMessage::Telemetry`.
    pub const TELEMETRY: u8 = 8;
    /// `AppMessage::Event`.
    pub const EVENT: u8 = 9;
    /// `AppMessage::DnsQuery`.
    pub const DNS_QUERY: u8 = 10;
    /// `AppMessage::DnsResponse`.
    pub const DNS_RESPONSE: u8 = 11;
    /// `AppMessage::CloudCommand`.
    pub const CLOUD_COMMAND: u8 = 12;
}

const T_MGMT_LOGIN: u8 = tag::MGMT_LOGIN;
const T_MGMT_LOGIN_OK: u8 = tag::MGMT_LOGIN_OK;
const T_MGMT_DENIED: u8 = tag::MGMT_DENIED;
const T_MGMT_COMMAND: u8 = tag::MGMT_COMMAND;
const T_MGMT_RESULT: u8 = tag::MGMT_RESULT;
const T_CONTROL: u8 = tag::CONTROL;
const T_CONTROL_ACK: u8 = tag::CONTROL_ACK;
const T_TELEMETRY: u8 = tag::TELEMETRY;
const T_EVENT: u8 = tag::EVENT;
const T_DNS_QUERY: u8 = tag::DNS_QUERY;
const T_DNS_RESPONSE: u8 = tag::DNS_RESPONSE;
const T_CLOUD_COMMAND: u8 = tag::CLOUD_COMMAND;

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut &[u8]) -> Result<String, CodecError> {
    if buf.remaining() < 2 {
        return Err(CodecError::Truncated);
    }
    let len = buf.get_u16() as usize;
    if buf.remaining() < len {
        return Err(CodecError::Truncated);
    }
    let s = std::str::from_utf8(&buf[..len]).map_err(|_| CodecError::BadString)?.to_owned();
    buf.advance(len);
    Ok(s)
}

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u32(b.len() as u32);
    buf.put_slice(b);
}

fn get_bytes(buf: &mut &[u8]) -> Result<Bytes, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(CodecError::Truncated);
    }
    let b = Bytes::copy_from_slice(&buf[..len]);
    buf.advance(len);
    Ok(b)
}

impl MgmtCommand {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            MgmtCommand::GetConfig => buf.put_u8(0),
            MgmtCommand::GetImage => buf.put_u8(1),
            MgmtCommand::SetPassword { new } => {
                buf.put_u8(2);
                put_string(buf, new);
            }
            MgmtCommand::ExtractKeys => buf.put_u8(3),
            MgmtCommand::FirmwareDump => buf.put_u8(4),
            MgmtCommand::Reboot => buf.put_u8(5),
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<MgmtCommand, CodecError> {
        if buf.remaining() < 1 {
            return Err(CodecError::Truncated);
        }
        match buf.get_u8() {
            0 => Ok(MgmtCommand::GetConfig),
            1 => Ok(MgmtCommand::GetImage),
            2 => Ok(MgmtCommand::SetPassword { new: get_string(buf)? }),
            3 => Ok(MgmtCommand::ExtractKeys),
            4 => Ok(MgmtCommand::FirmwareDump),
            5 => Ok(MgmtCommand::Reboot),
            t => Err(CodecError::BadTag(t)),
        }
    }
}

impl ControlAction {
    fn encode(&self, buf: &mut BytesMut) {
        match *self {
            ControlAction::TurnOn => buf.put_u8(0),
            ControlAction::TurnOff => buf.put_u8(1),
            ControlAction::Open => buf.put_u8(2),
            ControlAction::Close => buf.put_u8(3),
            ControlAction::Lock => buf.put_u8(4),
            ControlAction::Unlock => buf.put_u8(5),
            ControlAction::SetTarget(v) => {
                buf.put_u8(6);
                buf.put_i16(v);
            }
            ControlAction::SetColor(c) => {
                buf.put_u8(7);
                buf.put_u8(c);
            }
            ControlAction::SetPhase(p) => {
                buf.put_u8(8);
                buf.put_u8(p);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<ControlAction, CodecError> {
        if buf.remaining() < 1 {
            return Err(CodecError::Truncated);
        }
        match buf.get_u8() {
            0 => Ok(ControlAction::TurnOn),
            1 => Ok(ControlAction::TurnOff),
            2 => Ok(ControlAction::Open),
            3 => Ok(ControlAction::Close),
            4 => Ok(ControlAction::Lock),
            5 => Ok(ControlAction::Unlock),
            6 => {
                if buf.remaining() < 2 {
                    return Err(CodecError::Truncated);
                }
                Ok(ControlAction::SetTarget(buf.get_i16()))
            }
            7 => {
                if buf.remaining() < 1 {
                    return Err(CodecError::Truncated);
                }
                Ok(ControlAction::SetColor(buf.get_u8()))
            }
            8 => {
                if buf.remaining() < 1 {
                    return Err(CodecError::Truncated);
                }
                Ok(ControlAction::SetPhase(buf.get_u8()))
            }
            t => Err(CodecError::BadTag(t)),
        }
    }
}

impl ControlAuth {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ControlAuth::None => buf.put_u8(0),
            ControlAuth::Password { user, pass } => {
                buf.put_u8(1);
                put_string(buf, user);
                put_string(buf, pass);
            }
            ControlAuth::Token(t) => {
                buf.put_u8(2);
                buf.put_u32(*t);
            }
            ControlAuth::Key(k) => {
                buf.put_u8(3);
                buf.put_u64(*k);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<ControlAuth, CodecError> {
        if buf.remaining() < 1 {
            return Err(CodecError::Truncated);
        }
        match buf.get_u8() {
            0 => Ok(ControlAuth::None),
            1 => Ok(ControlAuth::Password { user: get_string(buf)?, pass: get_string(buf)? }),
            2 => {
                if buf.remaining() < 4 {
                    return Err(CodecError::Truncated);
                }
                Ok(ControlAuth::Token(buf.get_u32()))
            }
            3 => {
                if buf.remaining() < 8 {
                    return Err(CodecError::Truncated);
                }
                Ok(ControlAuth::Key(buf.get_u64()))
            }
            t => Err(CodecError::BadTag(t)),
        }
    }
}

fn kind_to_u8(k: TelemetryKind) -> u8 {
    match k {
        TelemetryKind::Temperature => 0,
        TelemetryKind::Power => 1,
        TelemetryKind::Light => 2,
        TelemetryKind::Motion => 3,
        TelemetryKind::Smoke => 4,
        TelemetryKind::Status => 5,
    }
}

fn kind_from_u8(v: u8) -> Result<TelemetryKind, CodecError> {
    Ok(match v {
        0 => TelemetryKind::Temperature,
        1 => TelemetryKind::Power,
        2 => TelemetryKind::Light,
        3 => TelemetryKind::Motion,
        4 => TelemetryKind::Smoke,
        5 => TelemetryKind::Status,
        t => return Err(CodecError::BadTag(t)),
    })
}

fn event_to_u8(k: EventKind) -> u8 {
    match k {
        EventKind::SmokeAlarm => 0,
        EventKind::SmokeClear => 1,
        EventKind::MotionStart => 2,
        EventKind::MotionStop => 3,
        EventKind::DoorOpened => 4,
        EventKind::TamperSuspected => 5,
    }
}

fn event_from_u8(v: u8) -> Result<EventKind, CodecError> {
    Ok(match v {
        0 => EventKind::SmokeAlarm,
        1 => EventKind::SmokeClear,
        2 => EventKind::MotionStart,
        3 => EventKind::MotionStop,
        4 => EventKind::DoorOpened,
        5 => EventKind::TamperSuspected,
        t => return Err(CodecError::BadTag(t)),
    })
}

impl AppMessage {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32);
        match self {
            AppMessage::MgmtLogin { user, pass } => {
                buf.put_u8(T_MGMT_LOGIN);
                put_string(&mut buf, user);
                put_string(&mut buf, pass);
            }
            AppMessage::MgmtLoginOk { token } => {
                buf.put_u8(T_MGMT_LOGIN_OK);
                buf.put_u32(*token);
            }
            AppMessage::MgmtDenied => buf.put_u8(T_MGMT_DENIED),
            AppMessage::MgmtCommand { token, command } => {
                buf.put_u8(T_MGMT_COMMAND);
                buf.put_u32(*token);
                command.encode(&mut buf);
            }
            AppMessage::MgmtResult { ok, data } => {
                buf.put_u8(T_MGMT_RESULT);
                buf.put_u8(*ok as u8);
                put_bytes(&mut buf, data);
            }
            AppMessage::Control { action, auth } => {
                buf.put_u8(T_CONTROL);
                action.encode(&mut buf);
                auth.encode(&mut buf);
            }
            AppMessage::ControlAck { ok } => {
                buf.put_u8(T_CONTROL_ACK);
                buf.put_u8(*ok as u8);
            }
            AppMessage::Telemetry { kind, value } => {
                buf.put_u8(T_TELEMETRY);
                buf.put_u8(kind_to_u8(*kind));
                buf.put_f64(*value);
            }
            AppMessage::Event { kind } => {
                buf.put_u8(T_EVENT);
                buf.put_u8(event_to_u8(*kind));
            }
            AppMessage::DnsQuery { name, recursion } => {
                buf.put_u8(T_DNS_QUERY);
                put_string(&mut buf, name);
                buf.put_u8(*recursion as u8);
            }
            AppMessage::DnsResponse { name, addr, answers } => {
                buf.put_u8(T_DNS_RESPONSE);
                put_string(&mut buf, name);
                buf.put_slice(&addr.0);
                buf.put_u16(*answers);
                // Amplification padding: 32 bytes per answer record.
                buf.put_bytes(0xAA, *answers as usize * 32);
            }
            AppMessage::CloudCommand { action } => {
                buf.put_u8(T_CLOUD_COMMAND);
                action.encode(&mut buf);
            }
        }
        buf.freeze()
    }

    /// Decode from wire bytes.
    pub fn decode(data: &[u8]) -> Result<AppMessage, CodecError> {
        let mut buf = data;
        if buf.remaining() < 1 {
            return Err(CodecError::Truncated);
        }
        let tag = buf.get_u8();
        let msg = match tag {
            T_MGMT_LOGIN => {
                AppMessage::MgmtLogin { user: get_string(&mut buf)?, pass: get_string(&mut buf)? }
            }
            T_MGMT_LOGIN_OK => {
                if buf.remaining() < 4 {
                    return Err(CodecError::Truncated);
                }
                AppMessage::MgmtLoginOk { token: buf.get_u32() }
            }
            T_MGMT_DENIED => AppMessage::MgmtDenied,
            T_MGMT_COMMAND => {
                if buf.remaining() < 4 {
                    return Err(CodecError::Truncated);
                }
                let token = buf.get_u32();
                AppMessage::MgmtCommand { token, command: MgmtCommand::decode(&mut buf)? }
            }
            T_MGMT_RESULT => {
                if buf.remaining() < 1 {
                    return Err(CodecError::Truncated);
                }
                let ok = buf.get_u8() != 0;
                AppMessage::MgmtResult { ok, data: get_bytes(&mut buf)? }
            }
            T_CONTROL => AppMessage::Control {
                action: ControlAction::decode(&mut buf)?,
                auth: ControlAuth::decode(&mut buf)?,
            },
            T_CONTROL_ACK => {
                if buf.remaining() < 1 {
                    return Err(CodecError::Truncated);
                }
                AppMessage::ControlAck { ok: buf.get_u8() != 0 }
            }
            T_TELEMETRY => {
                if buf.remaining() < 9 {
                    return Err(CodecError::Truncated);
                }
                let kind = kind_from_u8(buf.get_u8())?;
                AppMessage::Telemetry { kind, value: buf.get_f64() }
            }
            T_EVENT => {
                if buf.remaining() < 1 {
                    return Err(CodecError::Truncated);
                }
                AppMessage::Event { kind: event_from_u8(buf.get_u8())? }
            }
            T_DNS_QUERY => {
                let name = get_string(&mut buf)?;
                if buf.remaining() < 1 {
                    return Err(CodecError::Truncated);
                }
                AppMessage::DnsQuery { name, recursion: buf.get_u8() != 0 }
            }
            T_DNS_RESPONSE => {
                let name = get_string(&mut buf)?;
                if buf.remaining() < 6 {
                    return Err(CodecError::Truncated);
                }
                let mut a = [0u8; 4];
                a.copy_from_slice(&buf[..4]);
                buf.advance(4);
                let answers = buf.get_u16();
                if buf.remaining() < answers as usize * 32 {
                    return Err(CodecError::Truncated);
                }
                AppMessage::DnsResponse { name, addr: Ipv4Addr(a), answers }
            }
            T_CLOUD_COMMAND => {
                AppMessage::CloudCommand { action: ControlAction::decode(&mut buf)? }
            }
            t => return Err(CodecError::BadTag(t)),
        };
        Ok(msg)
    }

    /// Which protocol plane this message belongs to (decides the
    /// destination port).
    pub fn plane_port(&self) -> u16 {
        match self {
            AppMessage::MgmtLogin { .. }
            | AppMessage::MgmtLoginOk { .. }
            | AppMessage::MgmtDenied
            | AppMessage::MgmtCommand { .. }
            | AppMessage::MgmtResult { .. } => ports::MGMT,
            AppMessage::Control { .. } | AppMessage::ControlAck { .. } => ports::CONTROL,
            AppMessage::Telemetry { .. } | AppMessage::Event { .. } => ports::TELEMETRY,
            AppMessage::DnsQuery { .. } | AppMessage::DnsResponse { .. } => ports::DNS,
            AppMessage::CloudCommand { .. } => ports::CLOUD,
        }
    }

    /// Whether this plane runs over TCP (management and cloud) rather
    /// than UDP.
    pub fn is_tcp_plane(&self) -> bool {
        matches!(self.plane_port(), ports::MGMT | ports::CLOUD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(msg: AppMessage) {
        let wire = msg.encode();
        let back = AppMessage::decode(&wire).unwrap();
        assert_eq!(msg, back);
    }

    #[test]
    fn round_trip_all_variants() {
        round_trip(AppMessage::MgmtLogin { user: "admin".into(), pass: "admin".into() });
        round_trip(AppMessage::MgmtLoginOk { token: 0xdead });
        round_trip(AppMessage::MgmtDenied);
        round_trip(AppMessage::MgmtCommand { token: 1, command: MgmtCommand::GetImage });
        round_trip(AppMessage::MgmtCommand {
            token: 2,
            command: MgmtCommand::SetPassword { new: "hunter2".into() },
        });
        round_trip(AppMessage::MgmtResult { ok: true, data: Bytes::from_static(b"jpeg") });
        round_trip(AppMessage::Control {
            action: ControlAction::SetTarget(-125),
            auth: ControlAuth::Password { user: "u".into(), pass: "p".into() },
        });
        round_trip(AppMessage::Control { action: ControlAction::Open, auth: ControlAuth::Key(42) });
        round_trip(AppMessage::ControlAck { ok: false });
        round_trip(AppMessage::Telemetry { kind: TelemetryKind::Power, value: 1234.5 });
        round_trip(AppMessage::Event { kind: EventKind::SmokeAlarm });
        round_trip(AppMessage::DnsQuery { name: "evil.example".into(), recursion: true });
        round_trip(AppMessage::DnsResponse {
            name: "evil.example".into(),
            addr: Ipv4Addr::new(6, 6, 6, 6),
            answers: 10,
        });
        round_trip(AppMessage::CloudCommand { action: ControlAction::TurnOn });
    }

    #[test]
    fn dns_response_amplifies_on_the_wire() {
        let q = AppMessage::DnsQuery { name: "x.example".into(), recursion: true };
        let r = AppMessage::DnsResponse {
            name: "x.example".into(),
            addr: Ipv4Addr::new(1, 2, 3, 4),
            answers: 30,
        };
        let amp = r.encode().len() as f64 / q.encode().len() as f64;
        assert!(amp > 20.0, "amplification factor {amp}");
    }

    #[test]
    fn truncated_and_bad_tags_rejected() {
        let wire = AppMessage::MgmtLogin { user: "admin".into(), pass: "admin".into() }.encode();
        assert_eq!(AppMessage::decode(&wire[..3]), Err(CodecError::Truncated));
        assert_eq!(AppMessage::decode(&[]), Err(CodecError::Truncated));
        assert_eq!(AppMessage::decode(&[0xEE]), Err(CodecError::BadTag(0xEE)));
    }

    #[test]
    fn plane_ports() {
        assert_eq!(AppMessage::MgmtDenied.plane_port(), ports::MGMT);
        assert_eq!(
            AppMessage::Control { action: ControlAction::TurnOn, auth: ControlAuth::None }
                .plane_port(),
            ports::CONTROL
        );
        assert_eq!(
            AppMessage::Telemetry { kind: TelemetryKind::Status, value: 0.0 }.plane_port(),
            ports::TELEMETRY
        );
        assert_eq!(
            AppMessage::DnsQuery { name: "a".into(), recursion: false }.plane_port(),
            ports::DNS
        );
        assert!(AppMessage::MgmtDenied.is_tcp_plane());
        assert!(AppMessage::CloudCommand { action: ControlAction::TurnOff }.is_tcp_plane());
        assert!(!AppMessage::Event { kind: EventKind::MotionStart }.is_tcp_plane());
    }

    fn arb_action() -> impl Strategy<Value = ControlAction> {
        prop_oneof![
            Just(ControlAction::TurnOn),
            Just(ControlAction::TurnOff),
            Just(ControlAction::Open),
            Just(ControlAction::Close),
            Just(ControlAction::Lock),
            Just(ControlAction::Unlock),
            any::<i16>().prop_map(ControlAction::SetTarget),
            any::<u8>().prop_map(ControlAction::SetColor),
            (0u8..3).prop_map(ControlAction::SetPhase),
        ]
    }

    fn arb_auth() -> impl Strategy<Value = ControlAuth> {
        prop_oneof![
            Just(ControlAuth::None),
            ("[a-z]{0,8}", "[ -~]{0,12}")
                .prop_map(|(user, pass)| ControlAuth::Password { user, pass }),
            any::<u32>().prop_map(ControlAuth::Token),
            any::<u64>().prop_map(ControlAuth::Key),
        ]
    }

    proptest! {
        #[test]
        fn prop_control_round_trip(action in arb_action(), auth in arb_auth()) {
            round_trip(AppMessage::Control { action, auth });
        }

        #[test]
        fn prop_login_round_trip(user in "[ -~]{0,20}", pass in "[ -~]{0,20}") {
            round_trip(AppMessage::MgmtLogin { user, pass });
        }

        #[test]
        fn prop_telemetry_round_trip(k in 0u8..6, v in any::<f64>()) {
            let kind = kind_from_u8(k).unwrap();
            let wire = AppMessage::Telemetry { kind, value: v }.encode();
            let back = AppMessage::decode(&wire).unwrap();
            match back {
                AppMessage::Telemetry { kind: k2, value: v2 } => {
                    prop_assert_eq!(kind, k2);
                    prop_assert!(v2 == v || (v.is_nan() && v2.is_nan()));
                }
                _ => prop_assert!(false),
            }
        }

        #[test]
        fn prop_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = AppMessage::decode(&data);
        }

        #[test]
        fn prop_dns_round_trip(name in "[a-z.]{1,30}", answers in 0u16..100) {
            round_trip(AppMessage::DnsResponse {
                name, addr: Ipv4Addr::new(9, 9, 9, 9), answers,
            });
        }
    }
}
