//! Actuator classes: smart plug, light bulb, window actuator, smart lock,
//! oven, traffic light.
//!
//! Actuators are where the paper's cyber-physical risk lives: a network
//! message becomes a physical effect. Each actuator owns the environment
//! variables it drives and re-asserts them every tick.

use super::TickOutput;
use crate::env::Environment;
use crate::proto::{ControlAction, EventKind, TelemetryKind};
use serde::{Deserialize, Serialize};

/// What a smart plug powers — the implicit cross-device coupling of the
/// paper's motivating scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlugLoad {
    /// The air-conditioner (the break-in chain: plug off → temp rises →
    /// windows open).
    AirConditioner,
    /// The oven's power source (Figure 5: the Wemo feeding a fire hazard).
    Oven,
    /// A dumb lamp.
    Lamp,
    /// Some generic appliance.
    Generic,
}

/// Smart plug (Belkin Wemo Insight).
#[derive(Debug, Clone, PartialEq)]
pub struct SmartPlug {
    /// Relay state.
    pub on: bool,
    /// What the plug powers.
    pub load: PlugLoad,
}

impl Default for SmartPlug {
    fn default() -> Self {
        SmartPlug { on: true, load: PlugLoad::Generic }
    }
}

impl SmartPlug {
    pub(crate) fn apply(&mut self, action: ControlAction, env: &mut Environment) -> bool {
        match action {
            ControlAction::TurnOn => {
                self.on = true;
                self.assert_env(env);
                true
            }
            ControlAction::TurnOff => {
                self.on = false;
                self.assert_env(env);
                true
            }
            _ => false,
        }
    }

    fn assert_env(&self, env: &mut Environment) {
        match self.load {
            PlugLoad::AirConditioner => env.ac_breaker_on = self.on,
            PlugLoad::Oven => env.oven_breaker_on = self.on,
            PlugLoad::Lamp | PlugLoad::Generic => {}
        }
    }

    fn load_watts(&self) -> f64 {
        if !self.on {
            return 0.5; // standby
        }
        match self.load {
            PlugLoad::AirConditioner => 1200.0,
            PlugLoad::Oven => 2000.0,
            PlugLoad::Lamp => 60.0,
            PlugLoad::Generic => 100.0,
        }
    }

    pub(crate) fn tick(&mut self, env: &mut Environment) -> Vec<TickOutput> {
        self.assert_env(env);
        if self.on && self.load == PlugLoad::Lamp {
            env.bulbs_on += 1;
        }
        env.power_w += self.load_watts();
        vec![TickOutput::Telemetry(TelemetryKind::Power, self.load_watts())]
    }
}

/// Connected light bulb.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LightBulb {
    /// On/off.
    pub on: bool,
    /// Color index (the paper's IFTTT examples set lights to red).
    pub color: u8,
}

impl LightBulb {
    /// The conventional color index for "red" in the substrate.
    pub const RED: u8 = 1;

    pub(crate) fn apply(&mut self, action: ControlAction) -> bool {
        match action {
            ControlAction::TurnOn => {
                self.on = true;
                true
            }
            ControlAction::TurnOff => {
                self.on = false;
                true
            }
            ControlAction::SetColor(c) => {
                self.color = c;
                self.on = true;
                true
            }
            _ => false,
        }
    }

    pub(crate) fn tick(&mut self, env: &mut Environment) -> Vec<TickOutput> {
        if self.on {
            env.bulbs_on += 1;
            env.power_w += 9.0;
        }
        vec![TickOutput::Telemetry(TelemetryKind::Light, if self.on { 1.0 } else { 0.0 })]
    }
}

/// Motorized window actuator (Figure 3's physical-breach target).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WindowActuator {
    /// Position.
    pub open: bool,
}

impl WindowActuator {
    pub(crate) fn apply(&mut self, action: ControlAction, env: &mut Environment) -> bool {
        match action {
            ControlAction::Open => {
                self.open = true;
                env.window_open = true;
                true
            }
            ControlAction::Close => {
                self.open = false;
                env.window_open = false;
                true
            }
            _ => false,
        }
    }

    pub(crate) fn tick(&mut self, env: &mut Environment) -> Vec<TickOutput> {
        env.window_open = self.open;
        vec![TickOutput::Telemetry(TelemetryKind::Status, self.open as u8 as f64)]
    }
}

/// Smart door lock.
#[derive(Debug, Clone, PartialEq)]
pub struct SmartLock {
    /// Locked?
    pub locked: bool,
}

impl Default for SmartLock {
    fn default() -> Self {
        SmartLock { locked: true }
    }
}

impl SmartLock {
    pub(crate) fn apply(&mut self, action: ControlAction, env: &mut Environment) -> bool {
        match action {
            ControlAction::Lock => {
                self.locked = true;
                env.door_locked = true;
                true
            }
            ControlAction::Unlock => {
                self.locked = false;
                env.door_locked = false;
                true
            }
            _ => false,
        }
    }

    pub(crate) fn tick(&mut self, env: &mut Environment) -> Vec<TickOutput> {
        let mut out = Vec::new();
        if env.door_locked != self.locked {
            env.door_locked = self.locked;
        }
        if !self.locked {
            out.push(TickOutput::Event(EventKind::DoorOpened));
        }
        out.push(TickOutput::Telemetry(TelemetryKind::Status, self.locked as u8 as f64));
        out
    }
}

/// Connected oven.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Oven {
    /// Heating?
    pub on: bool,
}

impl Oven {
    pub(crate) fn apply(&mut self, action: ControlAction) -> bool {
        match action {
            ControlAction::TurnOn => {
                self.on = true;
                true
            }
            ControlAction::TurnOff => {
                self.on = false;
                true
            }
            _ => false,
        }
    }

    pub(crate) fn tick(&mut self, env: &mut Environment) -> Vec<TickOutput> {
        env.oven_duty = if self.on { 1.0 } else { 0.0 };
        if self.on {
            env.power_w += 2000.0;
        }
        vec![TickOutput::Telemetry(TelemetryKind::Power, if self.on { 2000.0 } else { 1.0 })]
    }
}

/// Networked traffic light (Table 1 row 5).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrafficLight {
    /// 0 = red, 1 = yellow, 2 = green.
    pub phase: u8,
}

impl TrafficLight {
    pub(crate) fn apply(&mut self, action: ControlAction) -> bool {
        match action {
            ControlAction::SetPhase(p) if p <= 2 => {
                self.phase = p;
                true
            }
            _ => false,
        }
    }

    pub(crate) fn tick(&mut self, _env: &mut Environment) -> Vec<TickOutput> {
        vec![TickOutput::Telemetry(TelemetryKind::Status, self.phase as f64)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ac_plug_cuts_the_breaker() {
        let mut plug = SmartPlug { on: true, load: PlugLoad::AirConditioner };
        let mut env = Environment::new();
        plug.tick(&mut env);
        assert!(env.ac_breaker_on);
        assert!(plug.apply(ControlAction::TurnOff, &mut env));
        assert!(!env.ac_breaker_on);
    }

    #[test]
    fn oven_plug_gates_the_oven() {
        let mut plug = SmartPlug { on: false, load: PlugLoad::Oven };
        let mut env = Environment::new();
        plug.tick(&mut env);
        assert!(!env.oven_breaker_on);
        plug.apply(ControlAction::TurnOn, &mut env);
        assert!(env.oven_breaker_on);
    }

    #[test]
    fn plug_power_telemetry_tracks_load() {
        let mut plug = SmartPlug { on: true, load: PlugLoad::Oven };
        let mut env = Environment::new();
        env.begin_tick();
        plug.tick(&mut env);
        assert!(env.power_w >= 2000.0);
        plug.apply(ControlAction::TurnOff, &mut env);
        env.begin_tick();
        plug.tick(&mut env);
        assert!(env.power_w < 1.0);
    }

    #[test]
    fn window_drives_environment() {
        let mut w = WindowActuator::default();
        let mut env = Environment::new();
        assert!(w.apply(ControlAction::Open, &mut env));
        assert!(env.window_open);
        assert!(w.apply(ControlAction::Close, &mut env));
        assert!(!env.window_open);
        assert!(!w.apply(ControlAction::TurnOn, &mut env)); // invalid verb
    }

    #[test]
    fn lock_unlock_cycle() {
        let mut l = SmartLock::default();
        let mut env = Environment::new();
        assert!(l.locked);
        l.apply(ControlAction::Unlock, &mut env);
        assert!(!env.door_locked);
        let out = l.tick(&mut env);
        assert!(out.contains(&TickOutput::Event(EventKind::DoorOpened)));
        l.apply(ControlAction::Lock, &mut env);
        assert!(env.door_locked);
    }

    #[test]
    fn oven_heats_when_on_and_powered() {
        let mut oven = Oven::default();
        let mut env = Environment::new();
        oven.apply(ControlAction::TurnOn);
        oven.tick(&mut env);
        assert_eq!(env.oven_duty, 1.0);
        oven.apply(ControlAction::TurnOff);
        oven.tick(&mut env);
        assert_eq!(env.oven_duty, 0.0);
    }

    #[test]
    fn traffic_light_validates_phase() {
        let mut t = TrafficLight::default();
        assert!(t.apply(ControlAction::SetPhase(2)));
        assert_eq!(t.phase, 2);
        assert!(!t.apply(ControlAction::SetPhase(9)));
        assert_eq!(t.phase, 2);
        assert!(!t.apply(ControlAction::Open));
    }

    #[test]
    fn bulb_set_color_turns_on() {
        let mut b = LightBulb::default();
        assert!(b.apply(ControlAction::SetColor(LightBulb::RED)));
        assert!(b.on);
        assert_eq!(b.color, LightBulb::RED);
        let mut env = Environment::new();
        env.begin_tick();
        b.tick(&mut env);
        assert_eq!(env.bulbs_on, 1);
    }

    #[test]
    fn lamp_plug_lights_the_room() {
        let mut plug = SmartPlug { on: true, load: PlugLoad::Lamp };
        let mut env = Environment::new();
        env.begin_tick();
        plug.tick(&mut env);
        assert_eq!(env.bulbs_on, 1);
    }
}
