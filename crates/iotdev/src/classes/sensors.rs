//! Sensor classes: camera, motion sensor, light sensor, fire alarm.
//!
//! Sensors read the environment and emit telemetry plus edge-triggered
//! events. The camera doubles as the occupancy oracle of the paper's
//! Figure 5 policy ("allow the oven's plug to turn on only if the camera
//! sees a person").

use super::TickOutput;
use crate::env::{thresholds, Environment};
use crate::proto::{ControlAction, EventKind, TelemetryKind};
use bytes::Bytes;

/// IP surveillance camera with motion analytics.
#[derive(Debug, Clone, PartialEq)]
pub struct Camera {
    /// Whether the camera is streaming (and hence analysing motion).
    pub streaming: bool,
    /// Last occupancy verdict.
    pub motion: bool,
    /// Frame counter (makes successive images distinct).
    pub frames: u64,
}

impl Default for Camera {
    fn default() -> Self {
        Camera { streaming: true, motion: false, frames: 0 }
    }
}

impl Camera {
    pub(crate) fn apply(&mut self, action: ControlAction) -> bool {
        match action {
            ControlAction::TurnOn => {
                self.streaming = true;
                true
            }
            ControlAction::TurnOff => {
                self.streaming = false;
                true
            }
            _ => false,
        }
    }

    pub(crate) fn tick(&mut self, env: &mut Environment) -> Vec<TickOutput> {
        let mut out = Vec::new();
        if !self.streaming {
            return out;
        }
        self.frames += 1;
        let now_motion = env.occupied;
        if now_motion != self.motion {
            self.motion = now_motion;
            out.push(TickOutput::Event(if now_motion {
                EventKind::MotionStart
            } else {
                EventKind::MotionStop
            }));
        }
        out.push(TickOutput::Telemetry(TelemetryKind::Motion, self.motion as u8 as f64));
        out
    }

    /// The current frame, as bytes an attacker would exfiltrate.
    pub fn image(&self) -> Bytes {
        Bytes::from(format!("JPEG:frame{}:motion{}", self.frames, self.motion))
    }
}

/// PIR motion sensor.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MotionSensor {
    /// Last verdict.
    pub motion: bool,
}

impl MotionSensor {
    pub(crate) fn tick(&mut self, env: &mut Environment) -> Vec<TickOutput> {
        let mut out = Vec::new();
        if env.occupied != self.motion {
            self.motion = env.occupied;
            out.push(TickOutput::Event(if self.motion {
                EventKind::MotionStart
            } else {
                EventKind::MotionStop
            }));
        }
        out.push(TickOutput::Telemetry(TelemetryKind::Motion, self.motion as u8 as f64));
        out
    }
}

/// Ambient light sensor.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LightSensor;

impl LightSensor {
    pub(crate) fn tick(&mut self, env: &mut Environment) -> Vec<TickOutput> {
        vec![TickOutput::Telemetry(TelemetryKind::Light, env.light_level)]
    }
}

/// Smoke/CO alarm (NEST Protect).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FireAlarm {
    /// Whether the alarm is currently sounding.
    pub alarming: bool,
}

impl FireAlarm {
    pub(crate) fn tick(&mut self, env: &mut Environment) -> Vec<TickOutput> {
        let mut out = Vec::new();
        let smoke = env.smoke_density >= thresholds::SMOKE_ALARM;
        if smoke && !self.alarming {
            self.alarming = true;
            out.push(TickOutput::Event(EventKind::SmokeAlarm));
        } else if !smoke && self.alarming {
            self.alarming = false;
            out.push(TickOutput::Event(EventKind::SmokeClear));
        }
        out.push(TickOutput::Telemetry(TelemetryKind::Smoke, env.smoke_density));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camera_tracks_occupancy_edges() {
        let mut cam = Camera::default();
        let mut env = Environment::new();
        env.occupied = false;
        cam.tick(&mut env); // settle
        env.occupied = true;
        let out = cam.tick(&mut env);
        assert!(out.contains(&TickOutput::Event(EventKind::MotionStart)));
        // No duplicate event while state is unchanged.
        let out = cam.tick(&mut env);
        assert!(!out.iter().any(|o| matches!(o, TickOutput::Event(_))));
        env.occupied = false;
        let out = cam.tick(&mut env);
        assert!(out.contains(&TickOutput::Event(EventKind::MotionStop)));
    }

    #[test]
    fn camera_off_is_blind() {
        let mut cam = Camera::default();
        cam.apply(ControlAction::TurnOff);
        let mut env = Environment::new();
        env.occupied = true;
        assert!(cam.tick(&mut env).is_empty());
    }

    #[test]
    fn camera_images_are_distinct_frames() {
        let mut cam = Camera::default();
        let mut env = Environment::new();
        cam.tick(&mut env);
        let a = cam.image();
        cam.tick(&mut env);
        let b = cam.image();
        assert_ne!(a, b);
    }

    #[test]
    fn fire_alarm_edges() {
        let mut alarm = FireAlarm::default();
        let mut env = Environment::new();
        env.smoke_density = 1.0;
        let out = alarm.tick(&mut env);
        assert!(out.contains(&TickOutput::Event(EventKind::SmokeAlarm)));
        assert!(alarm.alarming);
        // Still smoking: no repeat event.
        let out = alarm.tick(&mut env);
        assert!(!out.iter().any(|o| matches!(o, TickOutput::Event(_))));
        env.smoke_density = 0.0;
        let out = alarm.tick(&mut env);
        assert!(out.contains(&TickOutput::Event(EventKind::SmokeClear)));
    }

    #[test]
    fn light_sensor_reports_level() {
        let mut s = LightSensor;
        let mut env = Environment::new();
        env.light_level = 77.0;
        match s.tick(&mut env)[0] {
            TickOutput::Telemetry(TelemetryKind::Light, v) => assert_eq!(v, 77.0),
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn motion_sensor_edges() {
        let mut s = MotionSensor::default();
        let mut env = Environment::new();
        env.occupied = true;
        assert!(s.tick(&mut env).contains(&TickOutput::Event(EventKind::MotionStart)));
        env.occupied = false;
        assert!(s.tick(&mut env).contains(&TickOutput::Event(EventKind::MotionStop)));
    }
}
