//! Appliance classes: thermostat, set-top box, refrigerator.
//!
//! The thermostat is the closed-loop controller in the paper's implicit-
//! coupling example: it senses the room temperature and drives the AC,
//! which is exactly the loop an attacker breaks by cutting the AC's smart
//! plug. The set-top box and refrigerator are mostly management-plane
//! targets (Table 1 rows 2–3) with heartbeat telemetry.

use super::TickOutput;
use crate::env::Environment;
use crate::proto::{ControlAction, TelemetryKind};

/// Networked thermostat with a simple hysteresis controller.
#[derive(Debug, Clone, PartialEq)]
pub struct Thermostat {
    /// Cooling setpoint in °C.
    pub setpoint_c: f64,
    /// Whether the thermostat currently demands cooling.
    pub cooling: bool,
}

impl Default for Thermostat {
    fn default() -> Self {
        Thermostat { setpoint_c: 22.0, cooling: false }
    }
}

const HYSTERESIS_C: f64 = 0.5;

impl Thermostat {
    pub(crate) fn apply(&mut self, action: ControlAction) -> bool {
        match action {
            ControlAction::SetTarget(tenths) => {
                let c = tenths as f64 / 10.0;
                if (5.0..=35.0).contains(&c) {
                    self.setpoint_c = c;
                    true
                } else {
                    false
                }
            }
            ControlAction::TurnOff => {
                self.cooling = false;
                true
            }
            ControlAction::TurnOn => true,
            _ => false,
        }
    }

    pub(crate) fn tick(&mut self, env: &mut Environment) -> Vec<TickOutput> {
        if env.temperature_c > self.setpoint_c + HYSTERESIS_C {
            self.cooling = true;
        } else if env.temperature_c < self.setpoint_c - HYSTERESIS_C {
            self.cooling = false;
        }
        env.ac_duty = if self.cooling { 1.0 } else { 0.0 };
        env.ac_setpoint_c = self.setpoint_c;
        vec![TickOutput::Telemetry(TelemetryKind::Temperature, env.temperature_c)]
    }
}

/// TV set-top box (Table 1 row 2: exposed management access).
#[derive(Debug, Clone, PartialEq)]
pub struct SetTopBox {
    /// Powered on?
    pub on: bool,
}

impl Default for SetTopBox {
    fn default() -> Self {
        SetTopBox { on: true }
    }
}

impl SetTopBox {
    pub(crate) fn apply(&mut self, action: ControlAction) -> bool {
        match action {
            ControlAction::TurnOn => {
                self.on = true;
                true
            }
            ControlAction::TurnOff => {
                self.on = false;
                true
            }
            _ => false,
        }
    }

    pub(crate) fn tick(&mut self, env: &mut Environment) -> Vec<TickOutput> {
        if self.on {
            env.power_w += 15.0;
        }
        vec![TickOutput::Telemetry(TelemetryKind::Status, self.on as u8 as f64)]
    }
}

/// Smart refrigerator (Table 1 row 3; famously conscripted into spam
/// botnets). Always on; heartbeat only.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Refrigerator;

impl Refrigerator {
    pub(crate) fn tick(&mut self, env: &mut Environment) -> Vec<TickOutput> {
        env.power_w += 150.0;
        vec![TickOutput::Telemetry(TelemetryKind::Status, 1.0)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermostat_hysteresis_loop() {
        let mut t = Thermostat::default();
        let mut env = Environment::new();
        env.temperature_c = 25.0;
        t.tick(&mut env);
        assert!(t.cooling);
        assert_eq!(env.ac_duty, 1.0);
        env.temperature_c = 21.0;
        t.tick(&mut env);
        assert!(!t.cooling);
        assert_eq!(env.ac_duty, 0.0);
        // Inside the hysteresis band, state holds.
        env.temperature_c = 22.2;
        t.tick(&mut env);
        assert!(!t.cooling);
    }

    #[test]
    fn thermostat_setpoint_validation() {
        let mut t = Thermostat::default();
        assert!(t.apply(ControlAction::SetTarget(180))); // 18.0 C
        assert_eq!(t.setpoint_c, 18.0);
        assert!(!t.apply(ControlAction::SetTarget(500))); // 50 C: rejected
        assert_eq!(t.setpoint_c, 18.0);
        assert!(!t.apply(ControlAction::Open));
    }

    #[test]
    fn thermostat_cools_a_hot_room_end_to_end() {
        let mut t = Thermostat::default();
        let mut env = Environment::new();
        env.ambient_c = 35.0;
        env.temperature_c = 30.0;
        for _ in 0..3000 {
            t.tick(&mut env);
            env.step(1.0);
        }
        assert!(env.temperature_c < 24.0, "temp {}", env.temperature_c);
    }

    #[test]
    fn cutting_ac_power_defeats_the_thermostat() {
        // The paper's implicit-coupling attack: the thermostat demands
        // cooling but the breaker (smart plug) is off.
        let mut t = Thermostat::default();
        let mut env = Environment::new();
        env.ambient_c = 35.0;
        env.temperature_c = 30.0;
        env.ac_breaker_on = false;
        for _ in 0..3000 {
            t.tick(&mut env);
            env.step(1.0);
        }
        assert!(t.cooling, "thermostat should be demanding cooling");
        assert!(env.temperature_c > 27.0, "temp {}", env.temperature_c);
        assert_eq!(env.discretize().temperature, "high");
    }

    #[test]
    fn settop_and_fridge_heartbeat() {
        let mut env = Environment::new();
        env.begin_tick();
        let mut s = SetTopBox::default();
        let mut f = Refrigerator;
        assert!(!s.tick(&mut env).is_empty());
        assert!(!f.tick(&mut env).is_empty());
        assert!(env.power_w > 0.0);
        s.apply(ControlAction::TurnOff);
        env.begin_tick();
        s.tick(&mut env);
        f.tick(&mut env);
        assert_eq!(env.power_w, 150.0);
    }
}
