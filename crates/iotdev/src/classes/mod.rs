//! Per-class device finite state machines.
//!
//! Each class is an explicit FSM with three faces:
//!
//! * **actuation** — [`DeviceLogic::apply_action`] applies a validated
//!   control action and updates both internal state and the shared
//!   [`Environment`];
//! * **sensing** — [`DeviceLogic::tick`] reads the environment and emits
//!   telemetry and edge-triggered events;
//! * **introspection** — class-specific data such as the camera image.
//!
//! Classes are grouped as sensors (camera, motion, light, fire alarm),
//! actuators (plug, bulb, window, lock, oven, traffic light) and
//! appliances (thermostat, set-top box, refrigerator).

mod actuators;
mod appliances;
mod sensors;

pub use actuators::{
    LightBulb, Oven, PlugLoad, SmartLock, SmartPlug, TrafficLight, WindowActuator,
};
pub use appliances::{Refrigerator, SetTopBox, Thermostat};
pub use sensors::{Camera, FireAlarm, LightSensor, MotionSensor};

use crate::device::DeviceClass;
use crate::env::Environment;
use crate::proto::{ControlAction, EventKind, TelemetryKind};
use bytes::Bytes;

/// What a class FSM produces on a tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TickOutput {
    /// A periodic telemetry sample.
    Telemetry(TelemetryKind, f64),
    /// An edge-triggered event.
    Event(EventKind),
}

/// The per-class state machine, dispatched by enum (devices are created
/// in bulk by the workload generators; static dispatch keeps them cheap
/// and serde-friendly).
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceLogic {
    /// Surveillance camera.
    Camera(Camera),
    /// Smart plug.
    SmartPlug(SmartPlug),
    /// Thermostat.
    Thermostat(Thermostat),
    /// Smoke/CO alarm.
    FireAlarm(FireAlarm),
    /// Window actuator.
    WindowActuator(WindowActuator),
    /// Light bulb.
    LightBulb(LightBulb),
    /// Light sensor.
    LightSensor(LightSensor),
    /// Door lock.
    SmartLock(SmartLock),
    /// Oven.
    Oven(Oven),
    /// Motion sensor.
    MotionSensor(MotionSensor),
    /// Set-top box.
    SetTopBox(SetTopBox),
    /// Refrigerator.
    Refrigerator(Refrigerator),
    /// Traffic light.
    TrafficLight(TrafficLight),
}

impl DeviceLogic {
    /// Fresh state for a class.
    pub fn new(class: DeviceClass) -> DeviceLogic {
        match class {
            DeviceClass::Camera => DeviceLogic::Camera(Camera::default()),
            DeviceClass::SmartPlug => DeviceLogic::SmartPlug(SmartPlug::default()),
            DeviceClass::Thermostat => DeviceLogic::Thermostat(Thermostat::default()),
            DeviceClass::FireAlarm => DeviceLogic::FireAlarm(FireAlarm::default()),
            DeviceClass::WindowActuator => DeviceLogic::WindowActuator(WindowActuator::default()),
            DeviceClass::LightBulb => DeviceLogic::LightBulb(LightBulb::default()),
            DeviceClass::LightSensor => DeviceLogic::LightSensor(LightSensor),
            DeviceClass::SmartLock => DeviceLogic::SmartLock(SmartLock::default()),
            DeviceClass::Oven => DeviceLogic::Oven(Oven::default()),
            DeviceClass::MotionSensor => DeviceLogic::MotionSensor(MotionSensor::default()),
            DeviceClass::SetTopBox => DeviceLogic::SetTopBox(SetTopBox::default()),
            DeviceClass::Refrigerator => DeviceLogic::Refrigerator(Refrigerator),
            DeviceClass::TrafficLight => DeviceLogic::TrafficLight(TrafficLight::default()),
        }
    }

    /// Apply an actuation action; returns whether the action is valid for
    /// this class and was applied.
    pub fn apply_action(&mut self, action: ControlAction, env: &mut Environment) -> bool {
        match self {
            DeviceLogic::Camera(s) => s.apply(action),
            DeviceLogic::SmartPlug(s) => s.apply(action, env),
            DeviceLogic::Thermostat(s) => s.apply(action),
            DeviceLogic::FireAlarm(_) => false, // alarms have no actuation surface
            DeviceLogic::WindowActuator(s) => s.apply(action, env),
            DeviceLogic::LightBulb(s) => s.apply(action),
            DeviceLogic::LightSensor(_) => false,
            DeviceLogic::SmartLock(s) => s.apply(action, env),
            DeviceLogic::Oven(s) => s.apply(action),
            DeviceLogic::MotionSensor(_) => false,
            DeviceLogic::SetTopBox(s) => s.apply(action),
            DeviceLogic::Refrigerator(_) => false,
            DeviceLogic::TrafficLight(s) => s.apply(action),
        }
    }

    /// Sense and actuate the environment for one tick.
    pub fn tick(&mut self, env: &mut Environment) -> Vec<TickOutput> {
        match self {
            DeviceLogic::Camera(s) => s.tick(env),
            DeviceLogic::SmartPlug(s) => s.tick(env),
            DeviceLogic::Thermostat(s) => s.tick(env),
            DeviceLogic::FireAlarm(s) => s.tick(env),
            DeviceLogic::WindowActuator(s) => s.tick(env),
            DeviceLogic::LightBulb(s) => s.tick(env),
            DeviceLogic::LightSensor(s) => s.tick(env),
            DeviceLogic::SmartLock(s) => s.tick(env),
            DeviceLogic::Oven(s) => s.tick(env),
            DeviceLogic::MotionSensor(s) => s.tick(env),
            DeviceLogic::SetTopBox(s) => s.tick(env),
            DeviceLogic::Refrigerator(s) => s.tick(env),
            DeviceLogic::TrafficLight(s) => s.tick(env),
        }
    }

    /// The camera's current image, if this is a camera.
    pub fn image_data(&self) -> Option<Bytes> {
        match self {
            DeviceLogic::Camera(s) => Some(s.image()),
            _ => None,
        }
    }

    /// Whether the device's primary switch/relay is currently on
    /// (for classes where that is meaningful).
    pub fn is_on(&self) -> Option<bool> {
        match self {
            DeviceLogic::SmartPlug(s) => Some(s.on),
            DeviceLogic::LightBulb(s) => Some(s.on),
            DeviceLogic::Oven(s) => Some(s.on),
            DeviceLogic::Camera(s) => Some(s.streaming),
            DeviceLogic::SetTopBox(s) => Some(s.on),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_constructs() {
        for class in DeviceClass::ALL {
            let mut logic = DeviceLogic::new(class);
            let mut env = Environment::new();
            // Ticking a fresh device never panics and yields finite output.
            let out = logic.tick(&mut env);
            assert!(out.len() < 8);
        }
    }

    #[test]
    fn sensors_reject_actuation() {
        let mut env = Environment::new();
        for class in [
            DeviceClass::FireAlarm,
            DeviceClass::LightSensor,
            DeviceClass::MotionSensor,
            DeviceClass::Refrigerator,
        ] {
            let mut logic = DeviceLogic::new(class);
            assert!(!logic.apply_action(ControlAction::TurnOn, &mut env), "{class:?}");
        }
    }

    #[test]
    fn is_on_reflects_state() {
        let mut env = Environment::new();
        let mut plug = DeviceLogic::new(DeviceClass::SmartPlug);
        assert_eq!(plug.is_on(), Some(true)); // plugs ship powered on
        assert!(plug.apply_action(ControlAction::TurnOff, &mut env));
        assert_eq!(plug.is_on(), Some(false));
        assert_eq!(DeviceLogic::new(DeviceClass::SmartLock).is_on(), None);
    }
}
