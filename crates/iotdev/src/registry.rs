//! SKU registry — Table 1 of the paper as a device database.
//!
//! The paper's Table 1 lists seven reported vulnerability populations.
//! This registry reproduces each row as a concrete SKU (vendor / model /
//! firmware) with its device class, vulnerability classes and deployed
//! population, and can spawn device instances for the experiments.

use crate::device::{DeviceClass, DeviceId, IoTDevice};
use crate::vuln::Vulnerability;
use core::fmt;
use iotnet::addr::Ipv4Addr;
use serde::{Deserialize, Serialize};

/// A stock-keeping unit: the paper's point is that learning must work at
/// SKU granularity ("Google Nest version XYZ"), not class granularity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Sku {
    /// Vendor name.
    pub vendor: String,
    /// Model name.
    pub model: String,
    /// Firmware version.
    pub firmware: String,
}

impl Sku {
    /// Construct a SKU.
    pub fn new(vendor: &str, model: &str, firmware: &str) -> Sku {
        Sku { vendor: vendor.into(), model: model.into(), firmware: firmware.into() }
    }
}

impl fmt::Display for Sku {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.vendor, self.model, self.firmware)
    }
}

/// One registry entry: a SKU with its class, flaws and field population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkuEntry {
    /// The SKU.
    pub sku: Sku,
    /// Device class.
    pub class: DeviceClass,
    /// Vulnerability classes every instance ships with.
    pub vulns: Vec<Vulnerability>,
    /// Deployed population reported in the paper.
    pub population: u64,
    /// Table 1 row this entry reproduces, if any.
    pub table1_row: Option<u8>,
    /// The vulnerability description as the paper words it.
    pub description: &'static str,
}

/// The SKU database.
#[derive(Debug, Clone, Default)]
pub struct SkuRegistry {
    entries: Vec<SkuEntry>,
}

impl SkuRegistry {
    /// An empty registry.
    pub fn new() -> SkuRegistry {
        SkuRegistry::default()
    }

    /// The registry reproducing the paper's Table 1, row by row.
    pub fn table1() -> SkuRegistry {
        let mut r = SkuRegistry::new();
        r.add(SkuEntry {
            sku: Sku::new("avtech", "ip-cam", "1.3"),
            class: DeviceClass::Camera,
            vulns: vec![Vulnerability::default_admin_admin()],
            population: 130_000,
            table1_row: Some(1),
            description: "exposed account/password",
        });
        r.add(SkuEntry {
            sku: Sku::new("generic", "settop-box", "2.0"),
            class: DeviceClass::SetTopBox,
            vulns: vec![Vulnerability::OpenMgmtAccess],
            population: 61_000,
            table1_row: Some(2),
            description: "exposed access",
        });
        r.add(SkuEntry {
            sku: Sku::new("smartchill", "fridge", "0.9"),
            class: DeviceClass::Refrigerator,
            vulns: vec![Vulnerability::OpenMgmtAccess],
            population: 146,
            table1_row: Some(3),
            description: "exposed access",
        });
        r.add(SkuEntry {
            sku: Sku::new("cctvcorp", "dvr-cam", "4.1"),
            class: DeviceClass::Camera,
            vulns: vec![Vulnerability::ExposedKeyPair { key: 0x5eed_c0de_5eed_c0de }],
            population: 30_000,
            table1_row: Some(4),
            description: "unprotected RSA key pairs",
        });
        r.add(SkuEntry {
            sku: Sku::new("citysys", "traffic-light", "1.0"),
            class: DeviceClass::TrafficLight,
            vulns: vec![Vulnerability::NoAuthControl],
            population: 219,
            table1_row: Some(5),
            description: "no credentials",
        });
        r.add(SkuEntry {
            sku: Sku::new("belkin", "wemo", "1.0"),
            class: DeviceClass::SmartPlug,
            vulns: vec![Vulnerability::OpenDnsResolver],
            population: 500_000,
            table1_row: Some(6),
            description: "open DNS resolver, use for DDoS",
        });
        r.add(SkuEntry {
            sku: Sku::new("belkin", "wemo", "1.1"),
            class: DeviceClass::SmartPlug,
            vulns: vec![Vulnerability::CloudBypassBackdoor],
            population: 500_000,
            table1_row: Some(7),
            description: "exposed access, bypass app",
        });
        r
    }

    /// Add an entry.
    pub fn add(&mut self, entry: SkuEntry) {
        self.entries.push(entry);
    }

    /// All entries.
    pub fn entries(&self) -> &[SkuEntry] {
        &self.entries
    }

    /// The entry reproducing a given Table 1 row.
    pub fn by_row(&self, row: u8) -> Option<&SkuEntry> {
        self.entries.iter().find(|e| e.table1_row == Some(row))
    }

    /// Sum of field populations (the paper's ">1.2M vulnerable devices"
    /// headline from this table alone).
    pub fn total_population(&self) -> u64 {
        self.entries.iter().map(|e| e.population).sum()
    }

    /// Spawn a device instance of the entry at `idx`.
    pub fn spawn(&self, idx: usize, id: DeviceId, ip: Ipv4Addr) -> IoTDevice {
        let e = &self.entries[idx];
        IoTDevice::new(id, e.sku.clone(), e.class, ip, e.vulns.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_seven_rows() {
        let r = SkuRegistry::table1();
        assert_eq!(r.entries().len(), 7);
        for row in 1..=7 {
            assert!(r.by_row(row).is_some(), "row {row} missing");
        }
        assert!(r.by_row(8).is_none());
    }

    #[test]
    fn table1_populations_match_paper() {
        let r = SkuRegistry::table1();
        assert_eq!(r.by_row(1).unwrap().population, 130_000);
        assert_eq!(r.by_row(2).unwrap().population, 61_000);
        assert_eq!(r.by_row(3).unwrap().population, 146);
        assert_eq!(r.by_row(4).unwrap().population, 30_000);
        assert_eq!(r.by_row(5).unwrap().population, 219);
        assert_eq!(r.by_row(6).unwrap().population, 500_000);
        assert_eq!(r.by_row(7).unwrap().population, 500_000);
        assert!(r.total_population() > 1_200_000);
    }

    #[test]
    fn spawned_devices_carry_row_vulns() {
        let r = SkuRegistry::table1();
        let d = r.spawn(0, DeviceId(0), Ipv4Addr::new(10, 0, 0, 5));
        assert_eq!(d.class, DeviceClass::Camera);
        assert!(d.has_vuln("default-credentials"));
        let d = r.spawn(4, DeviceId(1), Ipv4Addr::new(10, 0, 0, 6));
        assert_eq!(d.class, DeviceClass::TrafficLight);
        assert!(d.has_vuln("no-auth-control"));
    }

    #[test]
    fn sku_display() {
        assert_eq!(Sku::new("belkin", "wemo", "1.0").to_string(), "belkin/wemo/1.0");
    }
}
