//! The (flat) IoTSec controller.
//!
//! The controller ingests security events and environment reports into
//! its [`GlobalView`], evaluates the [`FsmPolicy`] at the current system
//! state, diffs posture vectors and emits [`Directive`]s. Two costs are
//! modelled explicitly because the paper's scalability argument depends
//! on them:
//!
//! * **Service time** per event grows with the number of policy rules in
//!   the controller's scope (policy evaluation is the controller's inner
//!   loop). Events queue; queueing delay is the responsiveness metric of
//!   experiment E7.
//! * **View propagation delay** from the controller to the data-plane
//!   gates ([`ViewHandle`]) models the consistency spectrum of
//!   experiment E8 — `ZERO` is strong consistency, anything larger is
//!   eventual.

use crate::directive::{plan_transition, Directive};
use crate::view::GlobalView;
use iotdev::env::EnvVar;
use iotdev::events::SecurityEvent;
use iotnet::stats::DurationHist;
use iotnet::time::{SimDuration, SimTime};
use iotpolicy::policy::FsmPolicy;
use iotpolicy::posture::PostureVector;
use serde::Serialize;
use std::collections::VecDeque;
use umbox::element::ViewHandle;

/// Controller tuning.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ControllerConfig {
    /// Fixed per-event processing cost.
    pub service_base: SimDuration,
    /// Additional per-event cost per policy rule in scope.
    pub service_per_rule: SimDuration,
    /// Delay before view changes reach data-plane gates (`ZERO` =
    /// strong consistency).
    pub view_propagation: SimDuration,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            service_base: SimDuration::from_micros(200),
            service_per_rule: SimDuration::from_micros(10),
            view_propagation: SimDuration::from_millis(20),
        }
    }
}

/// Controller counters.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ControllerStats {
    /// Events processed.
    pub events_processed: u64,
    /// Directives emitted.
    pub directives: u64,
    /// Event queueing+service latency distribution.
    pub latency: DurationHist,
    /// Maximum queue depth observed.
    pub max_queue: usize,
}

/// The flat (single-instance) controller.
pub struct Controller {
    /// The compiled policy this controller enforces.
    pub policy: FsmPolicy,
    /// The assembled view.
    pub view: GlobalView,
    config: ControllerConfig,
    queue: VecDeque<(SimTime, SecurityEvent)>,
    busy_until: SimTime,
    /// Posture vector currently installed in the data plane.
    pub installed: PostureVector,
    gate_view: ViewHandle,
    pending_view: VecDeque<(SimTime, EnvVar, &'static str)>,
    /// The controller is down (crashed, rebooting, re-syncing) until this
    /// instant; events queue but nothing is processed meanwhile.
    outage_until: SimTime,
    /// Counters.
    pub stats: ControllerStats,
}

impl Controller {
    /// A controller enforcing `policy`, pushing gate state into
    /// `gate_view`.
    pub fn new(policy: FsmPolicy, config: ControllerConfig, gate_view: ViewHandle) -> Controller {
        Controller {
            policy,
            view: GlobalView::new(),
            config,
            queue: VecDeque::new(),
            busy_until: SimTime::ZERO,
            installed: PostureVector::new(),
            gate_view,
            pending_view: VecDeque::new(),
            outage_until: SimTime::ZERO,
            stats: ControllerStats::default(),
        }
    }

    /// Reset all runtime state back to the freshly-constructed values —
    /// empty view and queues, idle, nothing installed, zeroed stats —
    /// keeping the compiled policy and configuration, and rebinding the
    /// gate view to the resident world's fresh handle. After this call
    /// the controller behaves byte-identically to one built by
    /// [`Controller::new`] with the same policy and config (E26).
    pub fn reset_runtime(&mut self, gate_view: ViewHandle) {
        self.view = GlobalView::new();
        self.queue.clear();
        self.busy_until = SimTime::ZERO;
        self.installed = PostureVector::new();
        self.gate_view = gate_view;
        self.pending_view.clear();
        self.outage_until = SimTime::ZERO;
        self.stats = ControllerStats::default();
    }

    /// Take the controller down from `from` for `duration` (fault
    /// injection, or a failover re-sync window). Events keep queueing;
    /// they are served once the outage ends, paying the full backlog
    /// latency. Overlapping outages extend the existing one.
    pub fn inject_outage(&mut self, from: SimTime, duration: SimDuration) {
        self.outage_until = self.outage_until.max(from + duration);
    }

    /// Whether the controller is down at `now`.
    pub fn is_down(&self, now: SimTime) -> bool {
        now < self.outage_until
    }

    /// Add processing lag: the controller behaves as if busy for an
    /// extra `extra` from `now` (fault injection).
    pub fn inject_lag(&mut self, now: SimTime, extra: SimDuration) {
        self.busy_until = self.busy_until.max(now) + extra;
    }

    /// The per-event service time at the current policy size.
    pub fn service_time(&self) -> SimDuration {
        self.config.service_base + self.config.service_per_rule * self.policy.rules.len() as u64
    }

    /// Enqueue an event (arrival time = event time).
    pub fn ingest(&mut self, event: SecurityEvent) {
        self.queue.push_back((event.at, event));
        self.stats.max_queue = self.stats.max_queue.max(self.queue.len());
    }

    /// Ingest an environment report immediately (cheap, version-checked).
    pub fn ingest_env(&mut self, at: SimTime, values: &[(EnvVar, &'static str)]) {
        if self.view.apply_env_report(at, values) {
            for (var, value) in values {
                self.pending_view.push_back((at + self.config.view_propagation, *var, value));
            }
        }
    }

    /// Process queued work up to `now`; returns directives to execute.
    pub fn step(&mut self, now: SimTime) -> Vec<Directive> {
        if self.is_down(now) {
            // Down: nothing is served, nothing propagates.
            return Vec::new();
        }
        // Propagate due view updates to the data-plane gates.
        while let Some((due, var, value)) = self.pending_view.front().copied() {
            if due > now {
                break;
            }
            self.pending_view.pop_front();
            self.gate_view.set(var, value);
        }

        // Serve queued events. Work could not start before the end of any
        // outage, so backlog latencies include the down time.
        self.busy_until = self.busy_until.max(self.outage_until);
        let service = self.service_time();
        let mut changed = false;
        while let Some((arrival, _)) = self.queue.front().copied() {
            let start = self.busy_until.max(arrival);
            let done = start + service;
            if done > now {
                break;
            }
            let (_, event) = self.queue.pop_front().unwrap();
            self.busy_until = done;
            self.stats.events_processed += 1;
            self.stats.latency.record(done.duration_since(arrival));
            changed |= self.view.apply_event(&event);
        }
        if !changed {
            return Vec::new();
        }

        self.reconcile(now)
    }

    /// Recompute postures from the current view and emit the directive
    /// diff.
    pub fn reconcile(&mut self, _now: SimTime) -> Vec<Directive> {
        let state = self.state_from_view();
        let target = self.policy.evaluate(&state);
        let mut directives = Vec::new();
        for device in self.installed.diff(&target) {
            if let Some(d) =
                plan_transition(device, &self.installed.posture(device), &target.posture(device))
            {
                directives.push(d);
            }
        }
        self.installed = target;
        self.stats.directives += directives.len() as u64;
        directives
    }

    /// Build the policy-state from the view (unknown env vars keep their
    /// first domain value — the benign default).
    pub fn state_from_view(&self) -> iotpolicy::state_space::SystemState {
        let mut state = self.policy.schema.initial_state();
        for (id, ctx) in self.view.context_pairs() {
            state = state.with_context(&self.policy.schema, id, ctx);
        }
        for (var, value) in &self.view.env {
            state = state.with_env(&self.policy.schema, *var, value);
        }
        state
    }

    /// Pending event-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Semantic fingerprint of the posture vector this controller
    /// believes is installed in the data plane.
    ///
    /// The safety monitor's FSM-continuity invariant compares this
    /// across a failover: once the promoted replica has re-synced and
    /// reconciled, its fingerprint must return to the pre-failover
    /// value — a silently reset policy FSM shows up as a fingerprint
    /// that never recovers.
    pub fn installed_fingerprint(&self) -> u64 {
        self.installed.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotdev::device::{DeviceClass, DeviceId};
    use iotdev::events::SecurityEventKind;
    use iotdev::vuln::Vulnerability;
    use iotpolicy::compile::PolicyCompiler;
    use iotpolicy::posture::SecurityModule;

    fn fig3_controller() -> Controller {
        let mut c = PolicyCompiler::new();
        c.device(DeviceId(0), DeviceClass::FireAlarm, &[Vulnerability::CloudBypassBackdoor]);
        c.device(DeviceId(1), DeviceClass::WindowActuator, &[]);
        c.protect_on_suspicion(DeviceId(0), DeviceId(1));
        Controller::new(c.build(), ControllerConfig::default(), ViewHandle::new())
    }

    fn event(device: u32, kind: SecurityEventKind, at: SimTime) -> SecurityEvent {
        SecurityEvent::new(at, DeviceId(device), kind)
    }

    #[test]
    fn initial_reconcile_installs_standing_mitigations() {
        let mut ctl = fig3_controller();
        let directives = ctl.reconcile(SimTime::ZERO);
        // The fire alarm ships with a backdoor → standing Block(Cloud).
        assert!(directives
            .iter()
            .any(|d| matches!(d, Directive::Launch { device: DeviceId(0), .. })));
    }

    #[test]
    fn suspicion_drives_fig3_directives() {
        let mut ctl = fig3_controller();
        ctl.reconcile(SimTime::ZERO);
        ctl.ingest(event(0, SecurityEventKind::SignatureMatch, SimTime::from_millis(10)));
        let directives = ctl.step(SimTime::from_secs(1));
        // The *window* gets a new posture because the *alarm* is
        // suspicious — the cross-device reaction.
        let win = directives.iter().find(|d| d.device() == DeviceId(1)).unwrap();
        match win {
            Directive::Launch { posture, .. } | Directive::Reconfigure { posture, .. } => {
                assert!(posture
                    .contains(&SecurityModule::Block(iotpolicy::posture::BlockClass::OpenVerbs)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn events_queue_and_latency_is_recorded() {
        let mut ctl = fig3_controller();
        ctl.reconcile(SimTime::ZERO);
        // A burst: all 100 events arrive at the same instant, so the
        // tail of the queue pays ~99 service times of queueing delay.
        for _ in 0..100 {
            ctl.ingest(event(0, SecurityEventKind::AuthFailureBurst, SimTime::from_millis(1)));
        }
        assert_eq!(ctl.queue_depth(), 100);
        ctl.step(SimTime::from_secs(10));
        assert_eq!(ctl.queue_depth(), 0);
        assert_eq!(ctl.stats.events_processed, 100);
        // The 100th event waited behind 99 service times.
        assert!(ctl.stats.latency.max() > ctl.service_time() * 50);
    }

    #[test]
    fn step_respects_now_budget() {
        let mut ctl = fig3_controller();
        ctl.reconcile(SimTime::ZERO);
        for i in 0..100 {
            ctl.ingest(event(0, SecurityEventKind::AuthFailureBurst, SimTime::from_millis(i)));
        }
        // Only ~service-budget worth of events fit in 1 ms.
        ctl.step(SimTime::from_millis(1));
        assert!(ctl.queue_depth() > 0);
    }

    #[test]
    fn view_propagation_delays_gate_updates() {
        let gate_view = ViewHandle::new();
        let mut c = PolicyCompiler::new();
        c.device(DeviceId(0), DeviceClass::SmartPlug, &[]);
        c.gate_actuation(DeviceId(0), EnvVar::Occupancy, "present");
        let mut ctl = Controller::new(
            c.build(),
            ControllerConfig {
                view_propagation: SimDuration::from_millis(50),
                ..Default::default()
            },
            gate_view.clone(),
        );
        ctl.ingest_env(SimTime::from_secs(1), &[(EnvVar::Occupancy, "present")]);
        ctl.step(SimTime::from_secs(1));
        assert_eq!(gate_view.get(EnvVar::Occupancy), None); // not yet propagated
        ctl.step(SimTime::from_secs(1) + SimDuration::from_millis(50));
        assert_eq!(gate_view.get(EnvVar::Occupancy), Some("present"));
    }

    #[test]
    fn strong_consistency_is_the_zero_delay_limit() {
        let gate_view = ViewHandle::new();
        let mut c = PolicyCompiler::new();
        c.device(DeviceId(0), DeviceClass::SmartPlug, &[]);
        c.gate_actuation(DeviceId(0), EnvVar::Occupancy, "present");
        let mut ctl = Controller::new(
            c.build(),
            ControllerConfig { view_propagation: SimDuration::ZERO, ..Default::default() },
            gate_view.clone(),
        );
        ctl.ingest_env(SimTime::from_secs(1), &[(EnvVar::Occupancy, "absent")]);
        ctl.step(SimTime::from_secs(1));
        assert_eq!(gate_view.get(EnvVar::Occupancy), Some("absent"));
    }

    #[test]
    fn outage_stalls_processing_and_backlog_pays_for_it() {
        let mut ctl = fig3_controller();
        ctl.reconcile(SimTime::ZERO);
        ctl.inject_outage(SimTime::from_secs(1), SimDuration::from_secs(10));
        assert!(ctl.is_down(SimTime::from_secs(5)));
        assert!(!ctl.is_down(SimTime::from_secs(11)));

        ctl.ingest(event(0, SecurityEventKind::SignatureMatch, SimTime::from_secs(2)));
        // Mid-outage: nothing happens.
        assert!(ctl.step(SimTime::from_secs(5)).is_empty());
        assert_eq!(ctl.stats.events_processed, 0);
        // After the outage: the event is served, and its latency includes
        // the down time it waited out.
        let directives = ctl.step(SimTime::from_secs(12));
        assert!(!directives.is_empty());
        assert!(ctl.stats.latency.max() >= SimDuration::from_secs(9));
    }

    #[test]
    fn injected_lag_delays_service() {
        let mut ctl = fig3_controller();
        ctl.reconcile(SimTime::ZERO);
        ctl.inject_lag(SimTime::from_millis(1), SimDuration::from_secs(3));
        ctl.ingest(event(0, SecurityEventKind::SignatureMatch, SimTime::from_millis(2)));
        // The event can't finish service until the lag has drained.
        assert!(ctl.step(SimTime::from_secs(1)).is_empty());
        assert!(!ctl.step(SimTime::from_secs(4)).is_empty());
    }

    #[test]
    fn service_time_grows_with_policy() {
        let small = fig3_controller();
        let mut c = PolicyCompiler::new();
        for i in 0..50 {
            c.device(DeviceId(i), DeviceClass::Camera, &[Vulnerability::default_admin_admin()]);
        }
        let big = Controller::new(c.build(), ControllerConfig::default(), ViewHandle::new());
        assert!(big.service_time() > small.service_time());
    }
}
