//! A thread-safe global view for multicore controller deployments.
//!
//! The paper notes that classic SDN scaling tricks assume weakly
//! consistent state, while IoT context "does change often" and must be
//! handled consistently. This module provides the strongly consistent
//! shared view — a single [`parking_lot::RwLock`] around the
//! [`GlobalView`] — and a stress harness used by the control-plane bench
//! to measure what that consistency costs in real thread contention
//! (many event-ingest writers vs. many policy-evaluating readers).

use crate::view::GlobalView;
use iotdev::device::DeviceId;
use iotdev::events::{SecurityEvent, SecurityEventKind};
use iotnet::time::SimTime;
use iotpolicy::context::SecurityContext;
use parking_lot::RwLock;
use std::sync::Arc;

/// A shareable, strongly consistent view.
#[derive(Clone, Default)]
pub struct ConcurrentView {
    inner: Arc<RwLock<GlobalView>>,
}

impl ConcurrentView {
    /// A fresh view.
    pub fn new() -> ConcurrentView {
        ConcurrentView::default()
    }

    /// Apply an event (writer path).
    pub fn apply_event(&self, event: &SecurityEvent) -> bool {
        self.inner.write().apply_event(event)
    }

    /// Read a device's context (reader path).
    pub fn context(&self, id: DeviceId) -> SecurityContext {
        self.inner.read().context(id)
    }

    /// Current view version.
    pub fn version(&self) -> u64 {
        self.inner.read().version
    }

    /// Snapshot the context pairs (what a policy evaluation reads).
    pub fn snapshot_contexts(&self) -> Vec<(DeviceId, SecurityContext)> {
        self.inner.read().context_pairs()
    }
}

/// Shared progress/statistics ledger for multi-threaded simulation
/// sweeps. Worker threads running independent world instances bump the
/// atomic counters as they finish; the sweep driver (in `iotsec-bench`)
/// reads them for progress and perf reporting. Lives here alongside
/// [`ConcurrentView`] because it is the same pattern — the strongly
/// consistent, thread-safe slice of otherwise single-threaded state.
#[derive(Debug, Default)]
pub struct SweepLedger {
    /// World instances completed.
    pub jobs_done: std::sync::atomic::AtomicU64,
    /// Simulation events processed, summed over completed instances.
    pub events_processed: std::sync::atomic::AtomicU64,
    /// Flow-decision-cache lookups, summed over completed instances.
    pub cache_lookups: std::sync::atomic::AtomicU64,
    /// Flow-decision-cache hits, summed over completed instances.
    pub cache_hits: std::sync::atomic::AtomicU64,
}

impl SweepLedger {
    /// A zeroed ledger.
    pub fn new() -> SweepLedger {
        SweepLedger::default()
    }

    /// Record one finished world instance.
    pub fn record(&self, events_processed: u64, cache_lookups: u64, cache_hits: u64) {
        use std::sync::atomic::Ordering::Relaxed;
        self.jobs_done.fetch_add(1, Relaxed);
        self.events_processed.fetch_add(events_processed, Relaxed);
        self.cache_lookups.fetch_add(cache_lookups, Relaxed);
        self.cache_hits.fetch_add(cache_hits, Relaxed);
    }

    /// Completed-job count.
    pub fn done(&self) -> u64 {
        self.jobs_done.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Aggregate flow-cache hit rate over completed instances (0 when no
    /// lookups happened).
    pub fn cache_hit_rate(&self) -> f64 {
        use std::sync::atomic::Ordering::Relaxed;
        let lookups = self.cache_lookups.load(Relaxed);
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits.load(Relaxed) as f64 / lookups as f64
        }
    }

    /// Total simulation events over completed instances.
    pub fn events(&self) -> u64 {
        self.events_processed.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Stress result: events ingested and reads served per wall-clock run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StressOutcome {
    /// Total events written.
    pub writes: u64,
    /// Total snapshot reads.
    pub reads: u64,
    /// Final view version.
    pub final_version: u64,
}

/// Run `writers` writer threads × `events_each` events against `readers`
/// reader threads doing continuous snapshots; used by `bench_ctl` to put
/// a real number on strong-consistency contention.
pub fn stress(writers: usize, readers: usize, events_each: u64, devices: u32) -> StressOutcome {
    let view = ConcurrentView::new();
    let reads = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    crossbeam::scope(|s| {
        for r in 0..readers {
            let view = view.clone();
            let reads = reads.clone();
            let stop = stop.clone();
            s.spawn(move |_| {
                let _ = r;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let snap = view.snapshot_contexts();
                    std::hint::black_box(snap);
                    reads.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
        let mut handles = Vec::new();
        for w in 0..writers {
            let view = view.clone();
            handles.push(s.spawn(move |_| {
                for i in 0..events_each {
                    let device = DeviceId(((w as u64 * events_each + i) % devices as u64) as u32);
                    let kind = if i % 2 == 0 {
                        SecurityEventKind::AuthFailureBurst
                    } else {
                        SecurityEventKind::OccupancyChanged(i % 4 == 1)
                    };
                    view.apply_event(&SecurityEvent::new(SimTime::from_nanos(i), device, kind));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    })
    .unwrap();
    StressOutcome {
        writes: writers as u64 * events_each,
        reads: reads.load(std::sync::atomic::Ordering::Relaxed),
        final_version: view.version(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_view_applies_events() {
        let view = ConcurrentView::new();
        assert_eq!(view.context(DeviceId(0)), SecurityContext::Normal);
        view.apply_event(&SecurityEvent::new(
            SimTime::ZERO,
            DeviceId(0),
            SecurityEventKind::SignatureMatch,
        ));
        assert_eq!(view.context(DeviceId(0)), SecurityContext::Suspicious);
        assert_eq!(view.version(), 1);
    }

    #[test]
    fn stress_is_lossless_under_contention() {
        let out = stress(4, 2, 500, 16);
        assert_eq!(out.writes, 2000);
        // Every device escalated exactly once (idempotent after that),
        // plus occupancy flips bump the version; version > 0 suffices as
        // a liveness check, the exact count depends on interleaving.
        assert!(out.final_version > 0);
        assert!(out.reads > 0);
    }

    #[test]
    fn sweep_ledger_accumulates_across_threads() {
        let ledger = SweepLedger::new();
        crossbeam::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    for _ in 0..10 {
                        ledger.record(100, 50, 25);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(ledger.done(), 40);
        assert_eq!(ledger.events(), 4000);
        assert!((ledger.cache_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(SweepLedger::new().cache_hit_rate(), 0.0);
    }

    #[test]
    fn clones_share_state_across_threads() {
        let view = ConcurrentView::new();
        let v2 = view.clone();
        crossbeam::scope(|s| {
            s.spawn(move |_| {
                v2.apply_event(&SecurityEvent::new(
                    SimTime::ZERO,
                    DeviceId(5),
                    SecurityEventKind::BackdoorAccessed,
                ));
            });
        })
        .unwrap();
        assert_eq!(view.context(DeviceId(5)), SecurityContext::Compromised);
    }
}
