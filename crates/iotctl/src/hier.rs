//! The hierarchical controller (§5.1's scaling proposal).
//!
//! "One possible approach ... is to logically partition the set of IoT
//! devices depending on the frequency in the interaction dependencies.
//! Thus, we can have a hierarchical control architecture where
//! frequently interacting components are handled together by a low-level
//! controller and infrequent interactions are handled at the global
//! controller."
//!
//! Partitioning by the policy's *coupling structure* (via
//! [`iotpolicy::prune::factor`]) puts each independent component under
//! its own local controller — every rule then lives at exactly one
//! local, the global controller idles, and per-event service time stays
//! small. The `Random` partitioning (ablation A2) ignores coupling:
//! rules that span partitions must be escalated to the global
//! controller, which re-grows exactly the bottleneck the hierarchy was
//! meant to remove.

use crate::controller::{Controller, ControllerConfig};
use crate::directive::Directive;
use iotdev::device::DeviceId;
use iotdev::env::EnvVar;
use iotdev::events::SecurityEvent;
use iotnet::time::{SimDuration, SimTime};
use iotpolicy::policy::FsmPolicy;
use iotpolicy::prune::{factor, Slot};
use iotpolicy::state_space::StateSchema;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;
use umbox::element::ViewHandle;

/// How devices are split across local controllers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// One local controller per independent policy component (the
    /// paper's frequency/coupling-based proposal).
    ByCoupling,
    /// `parts` random partitions (ablation A2).
    Random {
        /// Number of partitions.
        parts: usize,
        /// RNG seed.
        seed: u64,
    },
}

/// Extract the sub-policy for a device subset: the schema restricted to
/// those devices (env vars kept in full — their domains are tiny) and
/// every rule entirely contained in the subset. Returns the sub-policy
/// and the indices of rules it absorbed.
fn subpolicy(policy: &FsmPolicy, devices: &[DeviceId]) -> (FsmPolicy, Vec<usize>) {
    let mut schema = StateSchema::new();
    for d in &policy.schema.devices {
        if devices.contains(&d.id) {
            schema.add_device_with(d.id, d.class, d.contexts.clone());
        }
    }
    for var in &policy.schema.env_vars {
        schema.add_env(*var);
    }
    let mut sub = FsmPolicy::new(schema);
    sub.baseline = policy.baseline.clone();
    let mut absorbed = Vec::new();
    for (i, rule) in policy.rules.iter().enumerate() {
        let contained =
            rule.pattern.contexts.keys().chain(rule.postures.keys()).all(|id| devices.contains(id));
        if contained {
            sub.add_rule(rule.clone());
            absorbed.push(i);
        }
    }
    (sub, absorbed)
}

/// The two-level controller.
pub struct HierarchicalController {
    /// Local controllers with their device scopes.
    locals: Vec<(Vec<DeviceId>, Controller)>,
    /// The global controller (handles partition-spanning rules).
    global: Controller,
    device_home: HashMap<DeviceId, usize>,
}

impl HierarchicalController {
    /// Partition `policy` and build the hierarchy.
    pub fn new(
        policy: FsmPolicy,
        partitioning: Partitioning,
        config: ControllerConfig,
        gate_view: ViewHandle,
    ) -> HierarchicalController {
        let groups: Vec<Vec<DeviceId>> = match partitioning {
            Partitioning::ByCoupling => {
                let factored = factor(&policy);
                factored
                    .components
                    .iter()
                    .map(|c| {
                        c.slots
                            .iter()
                            .filter_map(|s| match s {
                                Slot::Device(i) => Some(policy.schema.devices[*i].id),
                                Slot::Env(_) => None,
                            })
                            .collect::<Vec<_>>()
                    })
                    .filter(|g: &Vec<DeviceId>| !g.is_empty())
                    .collect()
            }
            Partitioning::Random { parts, seed } => {
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let mut ids: Vec<DeviceId> = policy.schema.devices.iter().map(|d| d.id).collect();
                ids.shuffle(&mut rng);
                let parts = parts.max(1);
                let mut groups = vec![Vec::new(); parts];
                for id in ids {
                    groups[rng.gen_range(0..parts)].push(id);
                }
                groups.into_iter().filter(|g| !g.is_empty()).collect()
            }
        };

        let mut absorbed_anywhere = vec![false; policy.rules.len()];
        let mut locals = Vec::with_capacity(groups.len());
        let mut device_home = HashMap::new();
        for (gi, group) in groups.iter().enumerate() {
            let (sub, absorbed) = subpolicy(&policy, group);
            for i in &absorbed {
                absorbed_anywhere[*i] = true;
            }
            for id in group {
                device_home.insert(*id, gi);
            }
            locals.push((group.clone(), Controller::new(sub, config, gate_view.clone())));
        }

        // Spanning rules escalate to the global controller.
        let mut global_policy = FsmPolicy::new(policy.schema.clone());
        global_policy.baseline = policy.baseline.clone();
        for (i, rule) in policy.rules.iter().enumerate() {
            if !absorbed_anywhere[i] {
                global_policy.add_rule(rule.clone());
            }
        }
        let global = Controller::new(global_policy, config, gate_view);

        HierarchicalController { locals, global, device_home }
    }

    /// Number of local controllers.
    pub fn local_count(&self) -> usize {
        self.locals.len()
    }

    /// Rules escalated to the global controller.
    pub fn global_rule_count(&self) -> usize {
        self.global.policy.rules.len()
    }

    /// Largest local policy (rules) — the hot spot.
    pub fn max_local_rules(&self) -> usize {
        self.locals.iter().map(|(_, c)| c.policy.rules.len()).max().unwrap_or(0)
    }

    /// Route one event: to its home local, and to the global controller
    /// only if the global has rules that could care (it watches
    /// everything otherwise uncovered).
    pub fn ingest(&mut self, event: SecurityEvent) {
        if let Some(&home) = self.device_home.get(&event.device) {
            self.locals[home].1.ingest(event);
        }
        if self.global_rule_count() > 0 {
            self.global.ingest(event);
        }
    }

    /// Broadcast an environment report.
    pub fn ingest_env(&mut self, at: SimTime, values: &[(EnvVar, &'static str)]) {
        for (_, local) in &mut self.locals {
            local.ingest_env(at, values);
        }
        self.global.ingest_env(at, values);
    }

    /// Step every controller; returns the merged directives.
    pub fn step(&mut self, now: SimTime) -> Vec<Directive> {
        let mut out = Vec::new();
        for (_, local) in &mut self.locals {
            out.extend(local.step(now));
        }
        out.extend(self.global.step(now));
        out
    }

    /// Initial reconciliation across all controllers.
    pub fn reconcile(&mut self, now: SimTime) -> Vec<Directive> {
        let mut out = Vec::new();
        for (_, local) in &mut self.locals {
            out.extend(local.reconcile(now));
        }
        out.extend(self.global.reconcile(now));
        out
    }

    /// Worst event latency observed across controllers.
    pub fn worst_latency(&self) -> SimDuration {
        let mut worst = self.global.stats.latency.max();
        for (_, local) in &self.locals {
            worst = worst.max(local.stats.latency.max());
        }
        worst
    }

    /// The largest per-controller median latency (the busiest
    /// controller's typical event).
    pub fn worst_median(&self) -> SimDuration {
        let mut worst = self.global.stats.latency.median();
        for (_, local) in &self.locals {
            worst = worst.max(local.stats.latency.median());
        }
        worst
    }

    /// Total events processed across controllers.
    pub fn total_processed(&self) -> u64 {
        self.global.stats.events_processed
            + self.locals.iter().map(|(_, c)| c.stats.events_processed).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotdev::device::DeviceClass;
    use iotdev::events::SecurityEventKind;
    use iotpolicy::compile::PolicyCompiler;

    fn many_device_policy(n: u32) -> FsmPolicy {
        let mut c = PolicyCompiler::new();
        for i in 0..n {
            c.device(DeviceId(i), DeviceClass::Camera, &[]);
        }
        // One cross-device rule coupling devices 0 and 1.
        c.protect_on_suspicion(DeviceId(0), DeviceId(1));
        c.build()
    }

    #[test]
    fn coupling_partition_isolates_components() {
        let policy = many_device_policy(10);
        let h = HierarchicalController::new(
            policy,
            Partitioning::ByCoupling,
            ControllerConfig::default(),
            ViewHandle::new(),
        );
        // Devices 0,1 coupled → 9 components (1 pair + 8 singletons).
        assert_eq!(h.local_count(), 9);
        // No rules span components: the global controller idles.
        assert_eq!(h.global_rule_count(), 0);
        // Each local policy is small (the 0/1 pair holds 2×2 escalation
        // rules plus the two protect rules).
        assert!(h.max_local_rules() <= 6);
    }

    #[test]
    fn random_partition_escalates_spanning_rules() {
        let policy = many_device_policy(10);
        let h = HierarchicalController::new(
            policy,
            Partitioning::Random { parts: 5, seed: 3 },
            ControllerConfig::default(),
            ViewHandle::new(),
        );
        // With high probability devices 0 and 1 land apart, pushing the
        // cross-device rule (and nothing else) to the global controller.
        // Even if they land together this seed keeps the test stable.
        assert!(h.local_count() <= 5);
        let spanning = h.global_rule_count();
        assert!(spanning <= 2); // the two protect rules at most
    }

    #[test]
    fn events_route_to_home_local() {
        let policy = many_device_policy(4);
        let mut h = HierarchicalController::new(
            policy,
            Partitioning::ByCoupling,
            ControllerConfig::default(),
            ViewHandle::new(),
        );
        h.reconcile(SimTime::ZERO);
        h.ingest(SecurityEvent::new(
            SimTime::from_millis(1),
            DeviceId(3),
            SecurityEventKind::AuthFailureBurst,
        ));
        let directives = h.step(SimTime::from_secs(1));
        assert!(directives.iter().any(|d| d.device() == DeviceId(3)));
        assert_eq!(h.total_processed(), 1);
    }

    #[test]
    fn cross_device_reaction_still_works_in_hierarchy() {
        let policy = many_device_policy(6);
        let mut h = HierarchicalController::new(
            policy,
            Partitioning::ByCoupling,
            ControllerConfig::default(),
            ViewHandle::new(),
        );
        h.reconcile(SimTime::ZERO);
        // Device 0 suspicious → device 1 must get the block posture,
        // handled entirely inside their shared local controller.
        h.ingest(SecurityEvent::new(
            SimTime::from_millis(1),
            DeviceId(0),
            SecurityEventKind::SignatureMatch,
        ));
        let directives = h.step(SimTime::from_secs(1));
        assert!(directives.iter().any(|d| d.device() == DeviceId(1)));
    }

    #[test]
    fn hierarchy_beats_flat_on_worst_latency() {
        let n = 40;
        let mk_events = || {
            (0..200u64).map(|i| {
                SecurityEvent::new(
                    SimTime::from_micros(i * 10),
                    DeviceId((i % n as u64) as u32),
                    SecurityEventKind::AuthFailureBurst,
                )
            })
        };
        // Flat.
        let mut flat =
            Controller::new(many_device_policy(n), ControllerConfig::default(), ViewHandle::new());
        flat.reconcile(SimTime::ZERO);
        for e in mk_events() {
            flat.ingest(e);
        }
        flat.step(SimTime::from_secs(60));
        // Hierarchical.
        let mut hier = HierarchicalController::new(
            many_device_policy(n),
            Partitioning::ByCoupling,
            ControllerConfig::default(),
            ViewHandle::new(),
        );
        hier.reconcile(SimTime::ZERO);
        for e in mk_events() {
            hier.ingest(e);
        }
        hier.step(SimTime::from_secs(60));
        assert!(
            hier.worst_latency() < flat.stats.latency.max(),
            "hier {} vs flat {}",
            hier.worst_latency(),
            flat.stats.latency.max()
        );
    }
}
