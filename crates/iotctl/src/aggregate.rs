//! The fleet controller hierarchy: home → neighborhood → region (E20).
//!
//! [`hier::HierarchicalController`](crate::hier) scales *within* one
//! home by partitioning devices; this module scales *across* homes. A
//! metro/ISP fleet is partitioned into fixed-size neighborhoods, each
//! served by an aggregator that collects crowdsourced discoveries from
//! its homes and flushes them upward in one batch per round; the
//! regional tier unions all batches into a canonical intel set and bumps
//! an epoch counter, and directive installs flow back down batched per
//! neighborhood. Everything here is generic over the intel item type
//! `T` (the fleet crate instantiates it with
//! `iotlearn::AttackSignature`) because the control plane does not
//! depend on the learning crate — the hierarchy moves opaque ordered
//! values.
//!
//! Determinism: discoveries are drained in home order, the region set is
//! a `BTreeSet` (canonical iteration order regardless of arrival
//! order), and batches flush in neighborhood order — so the install
//! schedule is a pure function of the per-round outcomes, independent
//! of worker-thread interleaving.

use std::collections::BTreeSet;

/// Maps homes to fixed-size neighborhoods and back.
///
/// Home `h` belongs to neighborhood `h / size`; neighborhoods are
/// contiguous id ranges so chunk-order iteration over homes is also
/// neighborhood-order iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Directory {
    homes: u32,
    size: u32,
}

impl Directory {
    /// A directory for `homes` homes in neighborhoods of `size`
    /// (the last neighborhood may be smaller). `size` is clamped to at
    /// least 1.
    pub fn new(homes: u32, size: u32) -> Directory {
        Directory { homes, size: size.max(1) }
    }

    /// Total number of homes.
    pub fn homes(&self) -> u32 {
        self.homes
    }

    /// Number of neighborhoods.
    pub fn neighborhoods(&self) -> u32 {
        self.homes.div_ceil(self.size)
    }

    /// The neighborhood a home belongs to.
    pub fn neighborhood_of(&self, home: u32) -> u32 {
        home / self.size
    }

    /// The homes of one neighborhood, as an id range.
    pub fn homes_of(&self, neighborhood: u32) -> std::ops::Range<u32> {
        let start = neighborhood * self.size;
        let end = (start + self.size).min(self.homes);
        start..end
    }
}

/// One neighborhood aggregator's upward buffer: discoveries collected
/// from its homes during a round, flushed as a single batch at the
/// round barrier.
///
/// Each entry remembers the home that reported it, so an aggregator
/// *crash* — which loses everything buffered but not yet flushed — can
/// name exactly the homes whose reports evaporated; the fleet recovery
/// path resets those homes' published flags and they re-publish from
/// their memoized outcomes (E25).
#[derive(Debug)]
pub struct NeighborhoodBuffer<T> {
    pending: Vec<(u32, T)>,
    batches: u64,
}

impl<T: Ord> NeighborhoodBuffer<T> {
    /// An empty buffer.
    pub fn new() -> NeighborhoodBuffer<T> {
        NeighborhoodBuffer { pending: Vec::new(), batches: 0 }
    }

    /// Collect one discovery with no source attribution (source home 0).
    pub fn collect(&mut self, item: T) {
        self.collect_from(0, item);
    }

    /// Collect one discovery from a member home, remembering the source
    /// so [`NeighborhoodBuffer::crash`] can report whose intel was lost.
    pub fn collect_from(&mut self, home: u32, item: T) {
        self.pending.push((home, item));
    }

    /// Number of discoveries waiting for the next flush.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Flush the buffered discoveries upward in canonical (sorted)
    /// order. Counts a batch only when there was something to flush.
    pub fn flush(&mut self) -> Vec<T> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        self.batches += 1;
        let mut out = std::mem::take(&mut self.pending);
        out.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        out.into_iter().map(|(_, item)| item).collect()
    }

    /// Crash the aggregator: every buffered (unflushed) report is lost.
    /// Returns the distinct source homes whose reports evaporated, in
    /// home order, so the recovery path can make them re-publish. Not a
    /// batch — nothing flows upward.
    pub fn crash(&mut self) -> Vec<u32> {
        let mut homes: Vec<u32> = self.pending.drain(..).map(|(home, _)| home).collect();
        homes.sort_unstable();
        homes.dedup();
        homes
    }

    /// Number of non-empty batches flushed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }
}

impl<T: Ord> Default for NeighborhoodBuffer<T> {
    fn default() -> NeighborhoodBuffer<T> {
        NeighborhoodBuffer::new()
    }
}

/// The regional intel tier: the canonical union of everything every
/// neighborhood has reported, versioned by an epoch counter.
///
/// # The epoch contract
///
/// The epoch is **dense** and **absorb-driven**: it starts at 0, bumps
/// by exactly 1 per absorbing call that added at least one novel item,
/// and never moves otherwise. In particular absorb is **idempotent
/// under at-least-once delivery**: re-absorbing a batch that was
/// already absorbed (a duplicated flush, a replayed wave, a rejoining
/// neighborhood re-reporting) is a no-op — same item set, same epoch.
/// Downstream the epoch is therefore a version number of the canonical
/// intel set: `epoch == n` names exactly one snapshot for the life of
/// the region, which is what lets the fleet memoize `(home, epoch)`
/// outcomes and retry install waves without de-duplication bookkeeping.
#[derive(Debug)]
pub struct RegionIntel<T> {
    items: BTreeSet<T>,
    epoch: u32,
}

impl<T: Clone + Ord> RegionIntel<T> {
    /// An empty region at epoch 0.
    pub fn new() -> RegionIntel<T> {
        RegionIntel { items: BTreeSet::new(), epoch: 0 }
    }

    /// Absorb one flushed batch. Returns `true` (and bumps the epoch)
    /// if the batch contained anything new; re-reports of known intel —
    /// including exact duplicates of previously absorbed batches —
    /// leave the epoch untouched so quiesced rounds stay quiesced and
    /// at-least-once delivery is safe (see the epoch contract above).
    pub fn absorb(&mut self, batch: Vec<T>) -> bool {
        !self.absorb_returning_novel(batch).is_empty()
    }

    /// [`RegionIntel::absorb`], but returns the novel items themselves
    /// (in `Ord` order) instead of a flag — empty means the batch was a
    /// duplicate and the epoch did not move. The caller checkpoints the
    /// novel set into a [`RegionLog`] and emits per-signature absorb
    /// events from it (E25).
    pub fn absorb_returning_novel(&mut self, batch: Vec<T>) -> Vec<T> {
        let mut novel = Vec::new();
        for item in batch {
            if self.items.insert(item.clone()) {
                novel.push(item);
            }
        }
        if !novel.is_empty() {
            // Batches from different neighborhoods are concatenated, so
            // novelty order is arrival order — re-sort for `Ord` order.
            // Within-batch duplicates were already absorbed once by the
            // insert guard.
            novel.sort();
            self.epoch += 1;
        }
        novel
    }

    /// Current intel epoch (bumped once per absorbing round, not per
    /// item).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Number of distinct intel items known to the region.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the region knows nothing yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The canonical snapshot: every known item in `Ord` order, ready
    /// for the intern table.
    pub fn snapshot(&self) -> Vec<T> {
        self.items.iter().cloned().collect()
    }
}

impl<T: Clone + Ord> Default for RegionIntel<T> {
    fn default() -> RegionIntel<T> {
        RegionIntel::new()
    }
}

/// One checkpointed entry of the region's durable log: the epoch an
/// absorbing round produced and the novel items it added.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionLogEntry<T> {
    /// Region epoch after this absorbing round's bump.
    pub epoch: u32,
    /// The items first absorbed in this round, in `Ord` order.
    pub items: Vec<T>,
}

/// The region's checkpointed, append-only absorb log (E25).
///
/// The region checkpoints every absorbing round here — epoch plus the
/// novel items that produced it — so a crashed neighborhood aggregator
/// can *respawn by replay*: reading the log tail past its last known
/// epoch reconstructs exactly the intel it missed while down, without
/// asking any home to re-report what the region already knows. The log
/// is strictly monotone (entry `i` holds epoch `i + 1`) because the
/// epoch contract on [`RegionIntel`] is dense.
#[derive(Debug, Default)]
pub struct RegionLog<T> {
    entries: Vec<RegionLogEntry<T>>,
}

impl<T: Clone + Ord> RegionLog<T> {
    /// An empty log (region at epoch 0, nothing absorbed yet).
    pub fn new() -> RegionLog<T> {
        RegionLog { entries: Vec::new() }
    }

    /// Checkpoint one absorbing round. `epoch` must be the next dense
    /// epoch and `items` its novel set (the return of
    /// [`RegionIntel::absorb_returning_novel`]); both are checked so a
    /// gap or out-of-order checkpoint fails loudly instead of corrupting
    /// every future replay.
    pub fn checkpoint(&mut self, epoch: u32, items: Vec<T>) {
        assert_eq!(
            epoch,
            self.entries.len() as u32 + 1,
            "region log checkpoints must be dense and in epoch order"
        );
        assert!(!items.is_empty(), "an absorbing round always adds at least one item");
        self.entries.push(RegionLogEntry { epoch, items });
    }

    /// The epoch of the latest checkpoint (0 when nothing was absorbed).
    pub fn epoch(&self) -> u32 {
        self.entries.len() as u32
    }

    /// Replay the log tail: every entry *after* `since_epoch`, in epoch
    /// order. A respawned aggregator that last saw `since_epoch` applies
    /// exactly these to catch up.
    pub fn replay_since(&self, since_epoch: u32) -> &[RegionLogEntry<T>] {
        &self.entries[(since_epoch as usize).min(self.entries.len())..]
    }

    /// The per-epoch delta: exactly the items first absorbed at `epoch`
    /// (`None` for epoch 0 or an epoch not yet checkpointed). This is
    /// the delta stream the resident-world fleet (E26) publishes
    /// alongside full snapshots — chaining `delta_of(1..=epoch())`
    /// reconstructs every snapshot, which the fleet tests pin.
    pub fn delta_of(&self, epoch: u32) -> Option<&[T]> {
        if epoch == 0 {
            return None;
        }
        self.entries.get(epoch as usize - 1).map(|e| e.items.as_slice())
    }

    /// Number of checkpointed absorbing rounds.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Per-home install bookkeeping: which intel epoch each home has
/// installed, plus fleet-wide install/batch counters for the E20
/// directives/sec report.
#[derive(Debug)]
pub struct InstallLedger {
    installed: Vec<u32>,
    installs: u64,
    batches: u64,
}

impl InstallLedger {
    /// A ledger for `homes` homes, all at epoch 0.
    pub fn new(homes: usize) -> InstallLedger {
        InstallLedger { installed: vec![0; homes], installs: 0, batches: 0 }
    }

    /// The epoch currently installed at a home.
    pub fn epoch_of(&self, home: u32) -> u32 {
        self.installed[home as usize]
    }

    /// Record a batched install bringing every home of `range` up to
    /// `epoch`. Returns the number of homes actually advanced (0 when
    /// the batch was a no-op; no batch is counted then).
    pub fn install_batch(&mut self, range: std::ops::Range<u32>, epoch: u32) -> u32 {
        let mut advanced = 0;
        for home in range {
            let slot = &mut self.installed[home as usize];
            if *slot < epoch {
                *slot = epoch;
                advanced += 1;
            }
        }
        if advanced > 0 {
            self.batches += 1;
            self.installs += u64::from(advanced);
        }
        advanced
    }

    /// Total per-home installs performed.
    pub fn installs(&self) -> u64 {
        self.installs
    }

    /// Total non-empty install batches delivered.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// `true` iff every home has installed at least `epoch`.
    pub fn all_at_least(&self, epoch: u32) -> bool {
        self.installed.iter().all(|&e| e >= epoch)
    }

    /// The lowest epoch installed at any home — the fleet-wide floor
    /// (0 for a zero-home fleet). Under chaos, homes diverge and the
    /// floor is what the next round's memo keys must respect per home;
    /// chaos-off it equals every home's epoch.
    pub fn min_epoch(&self) -> u32 {
        self.installed.iter().copied().min().unwrap_or(0)
    }

    /// Number of homes still strictly below `epoch` — the `waiting`
    /// count of a `fleet-degraded` declaration (E25).
    pub fn waiting_below(&self, epoch: u32) -> u32 {
        self.installed.iter().filter(|&&e| e < epoch).count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_partitions_contiguously() {
        let d = Directory::new(10, 4);
        assert_eq!(d.neighborhoods(), 3);
        assert_eq!(d.homes_of(0), 0..4);
        assert_eq!(d.homes_of(1), 4..8);
        assert_eq!(d.homes_of(2), 8..10);
        for h in 0..10 {
            assert!(d.homes_of(d.neighborhood_of(h)).contains(&h));
        }
    }

    #[test]
    fn directory_clamps_zero_size() {
        let d = Directory::new(3, 0);
        assert_eq!(d.neighborhoods(), 3);
        assert_eq!(d.homes_of(2), 2..3);
    }

    #[test]
    fn buffer_flushes_sorted_and_counts_batches() {
        let mut b: NeighborhoodBuffer<u32> = NeighborhoodBuffer::new();
        assert!(b.flush().is_empty());
        assert_eq!(b.batches(), 0);
        b.collect(9);
        b.collect(3);
        assert_eq!(b.pending(), 2);
        assert_eq!(b.flush(), vec![3, 9]);
        assert_eq!(b.pending(), 0);
        assert_eq!(b.batches(), 1);
    }

    #[test]
    fn region_epoch_bumps_only_on_new_intel() {
        let mut r: RegionIntel<u32> = RegionIntel::new();
        assert!(r.absorb(vec![5, 1]));
        assert_eq!(r.epoch(), 1);
        assert_eq!(r.snapshot(), vec![1, 5]);
        // Re-reporting known intel is a no-op round.
        assert!(!r.absorb(vec![1, 5]));
        assert_eq!(r.epoch(), 1);
        assert!(r.absorb(vec![5, 7]));
        assert_eq!(r.epoch(), 2);
        assert_eq!(r.snapshot(), vec![1, 5, 7]);
    }

    #[test]
    fn ledger_counts_installs_and_skips_noop_batches() {
        let mut l = InstallLedger::new(6);
        assert_eq!(l.install_batch(0..3, 1), 3);
        assert_eq!(l.install_batch(0..3, 1), 0);
        assert_eq!(l.install_batch(3..6, 1), 3);
        assert_eq!((l.installs(), l.batches()), (6, 2));
        assert!(l.all_at_least(1));
        assert!(!l.all_at_least(2));
        assert_eq!(l.epoch_of(4), 1);
    }

    #[test]
    fn directory_edge_shapes() {
        // Homes not divisible by the neighborhood size: the tail
        // neighborhood is short but non-empty.
        let ragged = Directory::new(7, 3);
        assert_eq!(ragged.neighborhoods(), 3);
        assert_eq!(ragged.homes_of(2), 6..7);
        assert_eq!(ragged.neighborhood_of(6), 2);
        // Single-home neighborhoods: the identity partition.
        let singles = Directory::new(4, 1);
        assert_eq!(singles.neighborhoods(), 4);
        for h in 0..4 {
            assert_eq!(singles.neighborhood_of(h), h);
            assert_eq!(singles.homes_of(h), h..h + 1);
        }
        // Zero-home fleet: no neighborhoods, nothing to iterate.
        let empty = Directory::new(0, 5);
        assert_eq!(empty.homes(), 0);
        assert_eq!(empty.neighborhoods(), 0);
        // Neighborhood larger than the fleet: one short neighborhood.
        let wide = Directory::new(3, 100);
        assert_eq!(wide.neighborhoods(), 1);
        assert_eq!(wide.homes_of(0), 0..3);
    }

    #[test]
    fn ledger_boundary_epochs() {
        // Zero-home ledger: vacuously converged at any epoch, floor 0.
        let empty = InstallLedger::new(0);
        assert!(empty.all_at_least(0));
        assert!(empty.all_at_least(u32::MAX));
        assert_eq!(empty.min_epoch(), 0);
        assert_eq!(empty.waiting_below(u32::MAX), 0);

        let mut l = InstallLedger::new(3);
        // Epoch 0 is where every home starts: installing it is a no-op
        // and counts no batch.
        assert_eq!(l.install_batch(0..3, 0), 0);
        assert_eq!((l.installs(), l.batches()), (0, 0));
        assert!(l.all_at_least(0));
        // An empty range is a no-op at any epoch.
        assert_eq!(l.install_batch(1..1, 9), 0);
        assert_eq!(l.batches(), 0);
        // Skipping epochs is allowed (a rejoin fast-forward): the slot
        // jumps straight to the target.
        assert_eq!(l.install_batch(0..1, 5), 1);
        assert_eq!(l.epoch_of(0), 5);
        assert_eq!(l.min_epoch(), 0);
        assert_eq!(l.waiting_below(5), 2);
        // A stale wave (lower epoch) never regresses an installed slot.
        assert_eq!(l.install_batch(0..1, 2), 0);
        assert_eq!(l.epoch_of(0), 5);
        // The u32::MAX epoch installs like any other.
        assert_eq!(l.install_batch(0..3, u32::MAX), 3);
        assert!(l.all_at_least(u32::MAX));
        assert_eq!(l.min_epoch(), u32::MAX);
    }

    #[test]
    fn absorb_is_idempotent_under_duplicated_batches() {
        let mut r: RegionIntel<u32> = RegionIntel::new();
        assert_eq!(r.absorb_returning_novel(vec![5, 1, 5]), vec![1, 5]);
        assert_eq!(r.epoch(), 1);
        // The exact same batch again — at-least-once delivery — is a
        // no-op: no novel items, same epoch, same snapshot.
        assert!(r.absorb_returning_novel(vec![5, 1, 5]).is_empty());
        assert!(!r.absorb(vec![1, 5]));
        assert_eq!(r.epoch(), 1);
        assert_eq!(r.snapshot(), vec![1, 5]);
        // A partially-novel duplicate bumps once and reports only the
        // novelty, in Ord order even across concatenated batches.
        assert_eq!(r.absorb_returning_novel(vec![9, 1, 7, 5]), vec![7, 9]);
        assert_eq!(r.epoch(), 2);
    }

    #[test]
    fn buffer_crash_names_lost_sources_and_flush_survives() {
        let mut b: NeighborhoodBuffer<u32> = NeighborhoodBuffer::new();
        b.collect_from(4, 40);
        b.collect_from(2, 20);
        b.collect_from(4, 41);
        assert_eq!(b.pending(), 3);
        // Crash: buffered reports are lost; the distinct sources come
        // back in home order and no batch is counted.
        assert_eq!(b.crash(), vec![2, 4]);
        assert_eq!(b.pending(), 0);
        assert_eq!(b.batches(), 0);
        // Crashing an empty buffer loses nothing.
        assert!(b.crash().is_empty());
        // The respawned buffer flushes normally, item-sorted.
        b.collect_from(2, 20);
        b.collect_from(4, 7);
        assert_eq!(b.flush(), vec![7, 20]);
        assert_eq!(b.batches(), 1);
    }

    #[test]
    fn region_log_replays_the_tail() {
        let mut r: RegionIntel<u32> = RegionIntel::new();
        let mut log: RegionLog<u32> = RegionLog::new();
        assert!(log.is_empty());
        assert_eq!(log.epoch(), 0);
        for batch in [vec![3, 1], vec![1, 3], vec![9]] {
            let novel = r.absorb_returning_novel(batch);
            if !novel.is_empty() {
                log.checkpoint(r.epoch(), novel);
            }
        }
        // The duplicate middle batch produced no checkpoint.
        assert_eq!(log.len(), 2);
        assert_eq!(log.epoch(), 2);
        // An aggregator that last saw epoch 1 replays exactly epoch 2.
        let tail = log.replay_since(1);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0], RegionLogEntry { epoch: 2, items: vec![9] });
        // Fully caught up → empty replay; epoch beyond the log → empty.
        assert!(log.replay_since(2).is_empty());
        assert!(log.replay_since(7).is_empty());
        // A fresh respawn (epoch 0) replays everything in order.
        let all = log.replay_since(0);
        assert_eq!(all[0].items, vec![1, 3]);
        assert_eq!(all[1].items, vec![9]);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn region_log_rejects_epoch_gaps() {
        let mut log: RegionLog<u32> = RegionLog::new();
        log.checkpoint(2, vec![1]);
    }
}
