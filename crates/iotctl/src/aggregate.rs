//! The fleet controller hierarchy: home → neighborhood → region (E20).
//!
//! [`hier::HierarchicalController`](crate::hier) scales *within* one
//! home by partitioning devices; this module scales *across* homes. A
//! metro/ISP fleet is partitioned into fixed-size neighborhoods, each
//! served by an aggregator that collects crowdsourced discoveries from
//! its homes and flushes them upward in one batch per round; the
//! regional tier unions all batches into a canonical intel set and bumps
//! an epoch counter, and directive installs flow back down batched per
//! neighborhood. Everything here is generic over the intel item type
//! `T` (the fleet crate instantiates it with
//! `iotlearn::AttackSignature`) because the control plane does not
//! depend on the learning crate — the hierarchy moves opaque ordered
//! values.
//!
//! Determinism: discoveries are drained in home order, the region set is
//! a `BTreeSet` (canonical iteration order regardless of arrival
//! order), and batches flush in neighborhood order — so the install
//! schedule is a pure function of the per-round outcomes, independent
//! of worker-thread interleaving.

use std::collections::BTreeSet;

/// Maps homes to fixed-size neighborhoods and back.
///
/// Home `h` belongs to neighborhood `h / size`; neighborhoods are
/// contiguous id ranges so chunk-order iteration over homes is also
/// neighborhood-order iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Directory {
    homes: u32,
    size: u32,
}

impl Directory {
    /// A directory for `homes` homes in neighborhoods of `size`
    /// (the last neighborhood may be smaller). `size` is clamped to at
    /// least 1.
    pub fn new(homes: u32, size: u32) -> Directory {
        Directory { homes, size: size.max(1) }
    }

    /// Total number of homes.
    pub fn homes(&self) -> u32 {
        self.homes
    }

    /// Number of neighborhoods.
    pub fn neighborhoods(&self) -> u32 {
        self.homes.div_ceil(self.size)
    }

    /// The neighborhood a home belongs to.
    pub fn neighborhood_of(&self, home: u32) -> u32 {
        home / self.size
    }

    /// The homes of one neighborhood, as an id range.
    pub fn homes_of(&self, neighborhood: u32) -> std::ops::Range<u32> {
        let start = neighborhood * self.size;
        let end = (start + self.size).min(self.homes);
        start..end
    }
}

/// One neighborhood aggregator's upward buffer: discoveries collected
/// from its homes during a round, flushed as a single batch at the
/// round barrier.
#[derive(Debug)]
pub struct NeighborhoodBuffer<T> {
    pending: Vec<T>,
    batches: u64,
}

impl<T: Ord> NeighborhoodBuffer<T> {
    /// An empty buffer.
    pub fn new() -> NeighborhoodBuffer<T> {
        NeighborhoodBuffer { pending: Vec::new(), batches: 0 }
    }

    /// Collect one discovery from a member home.
    pub fn collect(&mut self, item: T) {
        self.pending.push(item);
    }

    /// Number of discoveries waiting for the next flush.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Flush the buffered discoveries upward in canonical (sorted)
    /// order. Counts a batch only when there was something to flush.
    pub fn flush(&mut self) -> Vec<T> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        self.batches += 1;
        let mut out = std::mem::take(&mut self.pending);
        out.sort();
        out
    }

    /// Number of non-empty batches flushed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }
}

impl<T: Ord> Default for NeighborhoodBuffer<T> {
    fn default() -> NeighborhoodBuffer<T> {
        NeighborhoodBuffer::new()
    }
}

/// The regional intel tier: the canonical union of everything every
/// neighborhood has reported, versioned by an epoch counter.
#[derive(Debug)]
pub struct RegionIntel<T> {
    items: BTreeSet<T>,
    epoch: u32,
}

impl<T: Clone + Ord> RegionIntel<T> {
    /// An empty region at epoch 0.
    pub fn new() -> RegionIntel<T> {
        RegionIntel { items: BTreeSet::new(), epoch: 0 }
    }

    /// Absorb one flushed batch. Returns `true` (and bumps the epoch)
    /// if the batch contained anything new; re-reports of known intel
    /// leave the epoch untouched so quiesced rounds stay quiesced.
    pub fn absorb(&mut self, batch: Vec<T>) -> bool {
        let mut changed = false;
        for item in batch {
            changed |= self.items.insert(item);
        }
        if changed {
            self.epoch += 1;
        }
        changed
    }

    /// Current intel epoch (bumped once per absorbing round, not per
    /// item).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Number of distinct intel items known to the region.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the region knows nothing yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The canonical snapshot: every known item in `Ord` order, ready
    /// for the intern table.
    pub fn snapshot(&self) -> Vec<T> {
        self.items.iter().cloned().collect()
    }
}

impl<T: Clone + Ord> Default for RegionIntel<T> {
    fn default() -> RegionIntel<T> {
        RegionIntel::new()
    }
}

/// Per-home install bookkeeping: which intel epoch each home has
/// installed, plus fleet-wide install/batch counters for the E20
/// directives/sec report.
#[derive(Debug)]
pub struct InstallLedger {
    installed: Vec<u32>,
    installs: u64,
    batches: u64,
}

impl InstallLedger {
    /// A ledger for `homes` homes, all at epoch 0.
    pub fn new(homes: usize) -> InstallLedger {
        InstallLedger { installed: vec![0; homes], installs: 0, batches: 0 }
    }

    /// The epoch currently installed at a home.
    pub fn epoch_of(&self, home: u32) -> u32 {
        self.installed[home as usize]
    }

    /// Record a batched install bringing every home of `range` up to
    /// `epoch`. Returns the number of homes actually advanced (0 when
    /// the batch was a no-op; no batch is counted then).
    pub fn install_batch(&mut self, range: std::ops::Range<u32>, epoch: u32) -> u32 {
        let mut advanced = 0;
        for home in range {
            let slot = &mut self.installed[home as usize];
            if *slot < epoch {
                *slot = epoch;
                advanced += 1;
            }
        }
        if advanced > 0 {
            self.batches += 1;
            self.installs += u64::from(advanced);
        }
        advanced
    }

    /// Total per-home installs performed.
    pub fn installs(&self) -> u64 {
        self.installs
    }

    /// Total non-empty install batches delivered.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// `true` iff every home has installed at least `epoch`.
    pub fn all_at_least(&self, epoch: u32) -> bool {
        self.installed.iter().all(|&e| e >= epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_partitions_contiguously() {
        let d = Directory::new(10, 4);
        assert_eq!(d.neighborhoods(), 3);
        assert_eq!(d.homes_of(0), 0..4);
        assert_eq!(d.homes_of(1), 4..8);
        assert_eq!(d.homes_of(2), 8..10);
        for h in 0..10 {
            assert!(d.homes_of(d.neighborhood_of(h)).contains(&h));
        }
    }

    #[test]
    fn directory_clamps_zero_size() {
        let d = Directory::new(3, 0);
        assert_eq!(d.neighborhoods(), 3);
        assert_eq!(d.homes_of(2), 2..3);
    }

    #[test]
    fn buffer_flushes_sorted_and_counts_batches() {
        let mut b: NeighborhoodBuffer<u32> = NeighborhoodBuffer::new();
        assert!(b.flush().is_empty());
        assert_eq!(b.batches(), 0);
        b.collect(9);
        b.collect(3);
        assert_eq!(b.pending(), 2);
        assert_eq!(b.flush(), vec![3, 9]);
        assert_eq!(b.pending(), 0);
        assert_eq!(b.batches(), 1);
    }

    #[test]
    fn region_epoch_bumps_only_on_new_intel() {
        let mut r: RegionIntel<u32> = RegionIntel::new();
        assert!(r.absorb(vec![5, 1]));
        assert_eq!(r.epoch(), 1);
        assert_eq!(r.snapshot(), vec![1, 5]);
        // Re-reporting known intel is a no-op round.
        assert!(!r.absorb(vec![1, 5]));
        assert_eq!(r.epoch(), 1);
        assert!(r.absorb(vec![5, 7]));
        assert_eq!(r.epoch(), 2);
        assert_eq!(r.snapshot(), vec![1, 5, 7]);
    }

    #[test]
    fn ledger_counts_installs_and_skips_noop_batches() {
        let mut l = InstallLedger::new(6);
        assert_eq!(l.install_batch(0..3, 1), 3);
        assert_eq!(l.install_batch(0..3, 1), 0);
        assert_eq!(l.install_batch(3..6, 1), 3);
        assert_eq!((l.installs(), l.batches()), (6, 2));
        assert!(l.all_at_least(1));
        assert!(!l.all_at_least(2));
        assert_eq!(l.epoch_of(4), 1);
    }
}
