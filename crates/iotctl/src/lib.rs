//! `iotctl` — the IoTSec control plane (paper §5.1).
//!
//! "A logically centralized IoTSec controller monitors the contexts of
//! different devices and the operating environment and generates a
//! global view for cross-device policy enforcement. Based on this view,
//! it instantiates and configures individual µmboxes and the necessary
//! forwarding mechanisms."
//!
//! The paper's two control-plane challenges are both modelled:
//!
//! * **Scale and responsiveness.** Controllers have an explicit
//!   per-event service time that grows with the policy scope they
//!   manage, and an event queue — so the flat controller saturates as
//!   deployments grow (experiment E7), while the
//!   [`hier::HierarchicalController`] partitions devices by interaction
//!   frequency (the paper's own suggestion) and keeps local decisions
//!   local.
//! * **Consistency.** The controller's environment view propagates to
//!   data-plane gates with a configurable delay; strong consistency is
//!   the zero-delay limit. Experiment E8 measures the stale-enforcement
//!   window and the wrong-gate decisions it causes.
//!
//! [`concurrent`] provides a thread-safe shared-view variant used by the
//! control-plane scalability bench to measure real contention on a
//! multicore host.
//!
//! The chaos layer hardens the enforcement path against control-plane
//! failure: [`failover`] pairs the flat controller with a warm standby
//! (view checkpointing, failure detection, promotion with re-sync), and
//! [`delivery`] carries directives over a channel with idempotent IDs,
//! a bounded queue that sheds to the last-known-safe posture, and retry
//! with exponential backoff while the controller is unreachable.
//! [`safety`] closes the loop: a runtime monitor subscribed to the
//! deterministic trace stream checks fail-closed coverage, posture
//! monotonicity, bounded staleness and FSM continuity every tick, and
//! escalates repeat offenders into a per-class quarantine posture.
//! [`aggregate`] stacks one more tier on top for the E20 fleet: home →
//! neighborhood aggregator → region, with batched directive installs
//! and an epoch-versioned canonical intel union, all deterministic in
//! home/neighborhood order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod concurrent;
pub mod controller;
pub mod delivery;
pub mod directive;
pub mod failover;
pub mod hier;
pub mod safety;
pub mod view;

pub use aggregate::{Directory, InstallLedger, NeighborhoodBuffer, RegionIntel};
pub use controller::{Controller, ControllerConfig, ControllerStats};
pub use delivery::{DeliveryChannel, DeliveryConfig, DeliveryStats};
pub use directive::{Criticality, Directive};
pub use failover::{FailoverConfig, ReplicatedController};
pub use hier::{HierarchicalController, Partitioning};
pub use safety::{DeviceFacts, SafetyConfig, SafetyMonitor, SafetyStats};
pub use view::GlobalView;
