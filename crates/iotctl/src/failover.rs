//! Primary/standby controller replication with view re-sync on failover.
//!
//! The paper's controller is *logically* centralized; a real deployment
//! cannot afford a single point of failure in the enforcement path. This
//! module pairs the flat [`Controller`] with a warm standby:
//!
//! * Events and environment reports are delivered to the primary and
//!   appended to a replay log; every `checkpoint_interval` the log is
//!   drained into the standby, keeping its view warm (but it emits no
//!   directives while passive).
//! * When the primary has been down for `detect_after` (missed
//!   heartbeats), the standby is promoted. Promotion replays the
//!   un-checkpointed log tail into the standby and pays a `resync`
//!   outage window before the new primary serves.
//! * The promoted controller's installed-posture vector starts empty, so
//!   its first reconcile re-emits the full posture for its view — the
//!   delivery layer's idempotent directive IDs (see
//!   [`crate::delivery`]) suppress re-execution of postures the data
//!   plane already has.

use crate::controller::{Controller, ControllerConfig};
use crate::directive::Directive;
use iotdev::env::EnvVar;
use iotdev::events::SecurityEvent;
use iotnet::time::{SimDuration, SimTime};
use iotpolicy::policy::FsmPolicy;
use serde::Serialize;
use umbox::element::ViewHandle;

/// Failover tuning.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FailoverConfig {
    /// How long the primary must be unresponsive before the standby is
    /// promoted (missed-heartbeat threshold).
    pub detect_after: SimDuration,
    /// Outage window the promoted standby pays to re-sync its view
    /// before serving.
    pub resync: SimDuration,
    /// How often the standby's view is checkpointed from the replay log.
    pub checkpoint_interval: SimDuration,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            detect_after: SimDuration::from_secs(5),
            resync: SimDuration::from_secs(2),
            checkpoint_interval: SimDuration::from_secs(1),
        }
    }
}

/// A primary controller with one warm standby.
pub struct ReplicatedController {
    active: Controller,
    standby: Option<Controller>,
    cfg: FailoverConfig,
    /// Events since the standby's last checkpoint (the replay log).
    log: Vec<SecurityEvent>,
    env_log: Vec<(SimTime, Vec<(EnvVar, &'static str)>)>,
    last_checkpoint: SimTime,
    down_since: Option<SimTime>,
    /// Promotions performed (0 or 1 — there is a single standby).
    pub failovers: u64,
    /// Events processed by controllers that have since been replaced.
    retired_events: u64,
}

impl ReplicatedController {
    /// A replicated pair enforcing `policy`. Both replicas push gate
    /// state into the same `gate_view`; only the active one steps.
    pub fn new(
        policy: FsmPolicy,
        config: ControllerConfig,
        gate_view: ViewHandle,
        cfg: FailoverConfig,
    ) -> ReplicatedController {
        ReplicatedController {
            active: Controller::new(policy.clone(), config, gate_view.clone()),
            standby: Some(Controller::new(policy, config, gate_view)),
            cfg,
            log: Vec::new(),
            env_log: Vec::new(),
            last_checkpoint: SimTime::ZERO,
            down_since: None,
            failovers: 0,
            retired_events: 0,
        }
    }

    /// Enqueue an event: delivered to the active replica and appended to
    /// the replay log.
    pub fn ingest(&mut self, event: SecurityEvent) {
        self.active.ingest(event);
        self.log.push(event);
    }

    /// Ingest an environment report (active replica + replay log).
    pub fn ingest_env(&mut self, at: SimTime, values: &[(EnvVar, &'static str)]) {
        self.active.ingest_env(at, values);
        self.env_log.push((at, values.to_vec()));
    }

    /// Take the active replica down (fault injection).
    pub fn inject_outage(&mut self, from: SimTime, duration: SimDuration) {
        self.active.inject_outage(from, duration);
    }

    /// Whether the pair can currently process work: false while the
    /// active replica is down (including a promotion re-sync window).
    pub fn is_down(&self, now: SimTime) -> bool {
        self.active.is_down(now)
    }

    /// Drain the replay log into the standby, warming its view. The
    /// standby only ingests — it never emits directives while passive.
    fn checkpoint(&mut self, now: SimTime) {
        if let Some(sb) = &mut self.standby {
            for (at, values) in self.env_log.drain(..) {
                sb.ingest_env(at, &values);
            }
            for e in self.log.drain(..) {
                sb.ingest(e);
            }
        } else {
            self.env_log.clear();
            self.log.clear();
        }
        self.last_checkpoint = now;
    }

    /// Process queued work up to `now`; returns directives to execute.
    ///
    /// Handles heartbeat checkpointing, failure detection and promotion.
    pub fn step(&mut self, now: SimTime) -> Vec<Directive> {
        if !self.active.is_down(now) {
            self.down_since = None;
            if now.duration_since(self.last_checkpoint) >= self.cfg.checkpoint_interval {
                self.checkpoint(now);
            }
            return self.active.step(now);
        }

        // The active replica is down. Wait out the detection threshold,
        // then promote the standby (if one remains).
        let since = *self.down_since.get_or_insert(now);
        if now.duration_since(since) >= self.cfg.detect_after {
            if let Some(mut sb) = self.standby.take() {
                // Re-sync: replay the un-checkpointed log tail, then pay
                // the resync window before the new primary serves.
                for (at, values) in self.env_log.drain(..) {
                    sb.ingest_env(at, &values);
                }
                for e in self.log.drain(..) {
                    sb.ingest(e);
                }
                sb.inject_outage(now, self.cfg.resync);
                self.retired_events += self.active.stats.events_processed;
                self.active = sb;
                self.down_since = None;
                self.failovers += 1;
                return self.active.step(now); // empty: still re-syncing
            }
        }
        Vec::new()
    }

    /// Recompute postures on the active replica and emit the diff.
    pub fn reconcile(&mut self, now: SimTime) -> Vec<Directive> {
        self.active.reconcile(now)
    }

    /// Events processed across all replicas that have held the active
    /// role.
    pub fn events_processed(&self) -> u64 {
        self.retired_events + self.active.stats.events_processed
    }

    /// The currently active replica.
    pub fn active(&self) -> &Controller {
        &self.active
    }

    /// Installed-posture fingerprint of the active replica (see
    /// [`Controller::installed_fingerprint`]). Right after a promotion
    /// this reflects the standby's empty installed vector; the
    /// FSM-continuity invariant requires it to converge back to the
    /// pre-failover value once re-sync and reconcile complete.
    pub fn installed_fingerprint(&self) -> u64 {
        self.active.installed_fingerprint()
    }

    /// Whether a warm standby is still available.
    pub fn has_standby(&self) -> bool {
        self.standby.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotdev::device::{DeviceClass, DeviceId};
    use iotdev::events::SecurityEventKind;
    use iotdev::vuln::Vulnerability;
    use iotpolicy::compile::PolicyCompiler;

    fn replicated(cfg: FailoverConfig) -> ReplicatedController {
        let mut c = PolicyCompiler::new();
        c.device(DeviceId(0), DeviceClass::FireAlarm, &[Vulnerability::CloudBypassBackdoor]);
        c.device(DeviceId(1), DeviceClass::WindowActuator, &[]);
        c.protect_on_suspicion(DeviceId(0), DeviceId(1));
        ReplicatedController::new(c.build(), ControllerConfig::default(), ViewHandle::new(), cfg)
    }

    fn sig_match(at: SimTime) -> SecurityEvent {
        SecurityEvent::new(at, DeviceId(0), SecurityEventKind::SignatureMatch)
    }

    #[test]
    fn healthy_pair_behaves_like_a_flat_controller() {
        let mut rc = replicated(FailoverConfig::default());
        rc.reconcile(SimTime::ZERO);
        rc.ingest(sig_match(SimTime::from_millis(10)));
        let directives = rc.step(SimTime::from_secs(1));
        assert!(directives.iter().any(|d| d.device() == DeviceId(1)));
        assert_eq!(rc.failovers, 0);
        assert!(rc.has_standby());
    }

    #[test]
    fn failover_promotes_standby_and_reemits_posture() {
        let cfg = FailoverConfig {
            detect_after: SimDuration::from_secs(2),
            resync: SimDuration::from_secs(1),
            checkpoint_interval: SimDuration::from_secs(1),
        };
        let mut rc = replicated(cfg);
        rc.reconcile(SimTime::ZERO);

        // The primary dies at t=10s for a long time.
        rc.inject_outage(SimTime::from_secs(10), SimDuration::from_secs(120));
        // An attack event arrives during the outage.
        rc.ingest(sig_match(SimTime::from_secs(11)));
        assert!(rc.step(SimTime::from_secs(11)).is_empty());

        // Detection threshold passes: the standby is promoted but pays
        // its re-sync window first.
        assert!(rc.step(SimTime::from_secs(13)).is_empty());
        assert_eq!(rc.failovers, 1);
        assert!(!rc.has_standby());
        assert!(rc.is_down(SimTime::from_secs(13))); // re-syncing

        // After the re-sync the new primary serves the replayed event and
        // re-emits posture — including the standing mitigation its empty
        // installed-vector diff regenerates, plus the cross-device
        // reaction to the replayed signature match.
        let directives = rc.step(SimTime::from_secs(20));
        assert!(!rc.is_down(SimTime::from_secs(20)));
        assert!(directives.iter().any(|d| d.device() == DeviceId(0)));
        assert!(directives.iter().any(|d| d.device() == DeviceId(1)));
    }

    #[test]
    fn recovery_is_much_faster_than_riding_out_the_outage() {
        // With failover the pair is back in ~detect+resync; without it,
        // the outage runs its full course.
        let cfg = FailoverConfig {
            detect_after: SimDuration::from_secs(2),
            resync: SimDuration::from_secs(1),
            checkpoint_interval: SimDuration::from_secs(1),
        };
        let mut rc = replicated(cfg);
        rc.reconcile(SimTime::ZERO);
        rc.inject_outage(SimTime::from_secs(10), SimDuration::from_secs(120));
        rc.step(SimTime::from_secs(10)); // failure first observed
        rc.step(SimTime::from_secs(12)); // promotion
                                         // Back at 13s — two minutes before the injected outage would end.
        assert!(!rc.is_down(SimTime::from_secs(13)));

        let mut single =
            replicated(FailoverConfig { detect_after: SimDuration::from_secs(1_000_000), ..cfg });
        single.reconcile(SimTime::ZERO);
        single.inject_outage(SimTime::from_secs(10), SimDuration::from_secs(120));
        single.step(SimTime::from_secs(12));
        assert!(single.is_down(SimTime::from_secs(13)));
        assert!(single.is_down(SimTime::from_secs(129)));
    }
}
