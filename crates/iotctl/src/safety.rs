//! Runtime safety monitor for the enforcement path.
//!
//! The chaos layer (PR 1) injects faults; the trace layer (PR 3) records
//! what happened. This module closes the loop: a [`SafetyMonitor`] that
//! *subscribes to the deterministic trace stream* (reusing the
//! Control-class events from `trace` — no parallel instrumentation
//! channel) plus a small set of per-device data-plane facts, and checks
//! four invariants every simulation tick:
//!
//! * **Fail-closed coverage** — no packet traverses a port whose
//!   required µmbox chain is down. A down fail-open chain that passes
//!   packets is a coverage hole; every tick it leaks is a violation.
//! * **Posture monotonicity** — the *effective* posture of a device
//!   never becomes more permissive during a controller outage than it
//!   was when the outage began.
//! * **Bounded staleness** — the controller's view cannot go stale
//!   beyond a per-device-class budget; actuators get a tighter budget
//!   than sensors because a stale actuation gate does physical harm.
//! * **FSM policy continuity** — active policy FSMs never silently
//!   reset across a failover: after a promotion, the installed-posture
//!   fingerprint must not remain *empty* past a recovery window when it
//!   was non-empty before.
//!
//! Violations are recorded as [`TraceEvent::SafetyViolation`] events —
//! they land in the same deterministic stream the golden-trace harness
//! diffs. When escalation is enabled, repeated violations (or a circuit
//! breaker trip, observed from the stream) push the device into a
//! **quarantine posture**: an IDIoT-style per-class minimal allow-list
//! installed into the edge switch (see `iotnet::flow::quarantine_rules`
//! and `iotpolicy::posture::quarantine_allowlist`).
//!
//! The monitor is pure with respect to sim-time: identical tick inputs
//! produce identical violations, escalations and trace output, so the
//! golden-trace harness pins its behavior like any other subsystem.

use crate::directive::Criticality;
use iotdev::device::{DeviceClass, DeviceId};
use iotnet::time::{SimDuration, SimTime};
use iotpolicy::posture::PostureVector;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use trace::event::TraceEvent;
use trace::tracer::Tracer;
use umbox::breaker::BreakerConfig;

/// Safety-monitor tuning. `None` in the deployment means the whole
/// subsystem is inert (no monitor, no breakers, no admission control).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SafetyConfig {
    /// Staleness budget for non-actuating device classes.
    pub staleness_budget: SimDuration,
    /// Tighter staleness budget for actuating classes (locks, plugs,
    /// ovens, traffic lights...): a stale gate can do physical harm.
    pub actuator_staleness_budget: SimDuration,
    /// How long after a failover the installed-posture fingerprint may
    /// remain empty before the monitor calls it a silent FSM reset.
    pub continuity_window: SimDuration,
    /// Violations a device may accrue before escalation to quarantine.
    pub quarantine_after: u32,
    /// Whether the monitor escalates at all. `false` = detect-only
    /// (used as the measurement baseline in experiment E18).
    pub escalate: bool,
    /// Directive backlog above which the admission controller sheds
    /// whole-class recomputes below [`Criticality::Revoke`].
    pub admission_backlog: usize,
    /// Per-µmbox circuit-breaker tuning (see `umbox::breaker`).
    pub breaker: BreakerConfig,
}

impl Default for SafetyConfig {
    fn default() -> Self {
        SafetyConfig {
            staleness_budget: SimDuration::from_secs(10),
            actuator_staleness_budget: SimDuration::from_secs(5),
            continuity_window: SimDuration::from_secs(10),
            quarantine_after: 3,
            escalate: true,
            admission_backlog: 32,
            breaker: BreakerConfig::default(),
        }
    }
}

impl SafetyConfig {
    /// A detect-only configuration: same invariants, same budgets, but
    /// no escalation and no breakers. E18 runs this as the baseline so
    /// both arms *measure* violations identically and differ only in
    /// whether anything acts on them.
    pub fn detect_only() -> Self {
        SafetyConfig {
            escalate: false,
            breaker: BreakerConfig { enabled: false, ..BreakerConfig::default() },
            ..SafetyConfig::default()
        }
    }

    /// The staleness budget for a device class.
    pub fn staleness_budget_for(&self, class: DeviceClass) -> SimDuration {
        if is_actuator(class) {
            self.actuator_staleness_budget
        } else {
            self.staleness_budget
        }
    }
}

/// Whether a class actuates the physical world (tighter staleness
/// budget). Mirrors the control-plane set in
/// `iotpolicy::posture::class_allowlist`.
fn is_actuator(class: DeviceClass) -> bool {
    matches!(
        class,
        DeviceClass::SmartPlug
            | DeviceClass::WindowActuator
            | DeviceClass::LightBulb
            | DeviceClass::SmartLock
            | DeviceClass::Oven
            | DeviceClass::Thermostat
            | DeviceClass::TrafficLight
    )
}

/// Admission decision for a directive about to enter the delivery
/// channel: under backlog pressure only [`Criticality::Revoke`] and
/// above are admitted — whole-class posture recomputes (patch proxies,
/// telemetry retires) wait for the backlog to drain.
pub fn admit(cfg: &SafetyConfig, backlog: usize, criticality: Criticality) -> bool {
    backlog <= cfg.admission_backlog || criticality >= Criticality::Revoke
}

/// Counters the monitor accumulates; exported with the run metrics.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SafetyStats {
    /// Total invariant violations recorded.
    pub violations: u64,
    /// Fail-closed coverage holes (ticks that leaked packets).
    pub coverage_violations: u64,
    /// Staleness-budget overruns (one per device per outage episode).
    pub staleness_violations: u64,
    /// Posture-monotonicity regressions during outages.
    pub monotonicity_violations: u64,
    /// Silent FSM resets across failover.
    pub continuity_violations: u64,
    /// Devices escalated into the quarantine posture.
    pub quarantines: u64,
    /// Sim-time device-ticks spent quarantined (ns, summed per device).
    pub quarantine_time_ns: u64,
    /// Summed sim-time from fault onset to first detection (ns).
    pub detection_latency_ns_total: u64,
    /// Detection episodes with a measured latency.
    pub detections: u64,
}

/// Per-device data-plane facts the world hands the monitor each tick.
///
/// These are *observations*, not a side channel: everything here is
/// already true in the world state, and the monitor only combines them
/// with the trace stream — it never mutates the world directly.
#[derive(Debug, Clone, Copy)]
pub struct DeviceFacts {
    /// The device.
    pub device: DeviceId,
    /// Its class (selects the staleness budget and quarantine list).
    pub class: DeviceClass,
    /// Whether a required µmbox chain is steered for this device.
    pub protected: bool,
    /// Whether that chain is currently down (crash or breaker-open).
    pub chain_down: bool,
    /// Whether the chain fails open (passes unfiltered while down).
    pub fail_open: bool,
    /// Cumulative packets the chain passed unfiltered while down.
    pub fail_open_passed: u64,
}

impl DeviceFacts {
    /// Whether the device's traffic is effectively mediated right now.
    fn mediated(&self) -> bool {
        self.protected && !(self.chain_down && self.fail_open)
    }
}

/// The runtime safety monitor. Create one per world when
/// [`SafetyConfig`] is set; call [`SafetyMonitor::tick`] once per
/// simulation tick after the control step.
pub struct SafetyMonitor {
    cfg: SafetyConfig,
    /// The deterministic trace stream: read via a cursor (Control-class
    /// events only matter) and written for violation/quarantine events.
    tracer: Tracer,
    cursor: usize,
    stats: SafetyStats,
    /// Fingerprint of an empty installed vector (the reset signature).
    empty_fingerprint: u64,
    /// Controller outage episode currently in progress.
    outage_since: Option<SimTime>,
    /// Devices mediated when the current outage began.
    mediated_at_outage: BTreeSet<DeviceId>,
    /// Devices already flagged for staleness this episode.
    staleness_flagged: BTreeSet<DeviceId>,
    /// Devices already flagged for monotonicity this episode.
    monotonicity_flagged: BTreeSet<DeviceId>,
    /// Cumulative fail-open counter at the last tick, per device.
    last_fail_open: BTreeMap<DeviceId, u64>,
    /// When each device's chain was first seen down (current episode).
    chain_down_since: BTreeMap<DeviceId, SimTime>,
    /// Devices whose current down-episode already has a measured
    /// detection latency.
    latency_measured: BTreeSet<DeviceId>,
    /// Last fingerprint observed while the controller was healthy and
    /// no recovery was pending.
    healthy_fingerprint: Option<u64>,
    /// Armed by a `Failover` trace event: (pre-failover fingerprint,
    /// recovery deadline).
    expected_recovery: Option<(u64, SimTime)>,
    /// Per-device violation tallies (drive escalation).
    violation_count: BTreeMap<DeviceId, u32>,
    /// Devices in the quarantine posture. Sticky for the run: releasing
    /// quarantine would itself violate posture monotonicity mid-chaos.
    quarantined: BTreeSet<DeviceId>,
    last_tick: Option<SimTime>,
}

impl SafetyMonitor {
    /// A monitor reading from (and emitting into) `tracer`.
    pub fn new(cfg: SafetyConfig, tracer: Tracer) -> SafetyMonitor {
        SafetyMonitor {
            cfg,
            tracer,
            cursor: 0,
            stats: SafetyStats::default(),
            empty_fingerprint: PostureVector::new().fingerprint(),
            outage_since: None,
            mediated_at_outage: BTreeSet::new(),
            staleness_flagged: BTreeSet::new(),
            monotonicity_flagged: BTreeSet::new(),
            last_fail_open: BTreeMap::new(),
            chain_down_since: BTreeMap::new(),
            latency_measured: BTreeSet::new(),
            healthy_fingerprint: None,
            expected_recovery: None,
            violation_count: BTreeMap::new(),
            quarantined: BTreeSet::new(),
            last_tick: None,
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &SafetyConfig {
        &self.cfg
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &SafetyStats {
        &self.stats
    }

    /// Whether `device` has been escalated into quarantine.
    pub fn is_quarantined(&self, device: DeviceId) -> bool {
        self.quarantined.contains(&device)
    }

    /// Devices currently quarantined, in id order.
    pub fn quarantined(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.quarantined.iter().copied()
    }

    fn record(&mut self, now: SimTime, device: DeviceId, invariant: &'static str) {
        self.stats.violations += 1;
        match invariant {
            "fail-closed-coverage" => self.stats.coverage_violations += 1,
            "bounded-staleness" => self.stats.staleness_violations += 1,
            "posture-monotonicity" => self.stats.monotonicity_violations += 1,
            _ => self.stats.continuity_violations += 1,
        }
        *self.violation_count.entry(device).or_insert(0) += 1;
        self.tracer
            .emit(now.as_nanos(), TraceEvent::SafetyViolation { device: device.0, invariant });
    }

    /// Evaluate every invariant for this tick.
    ///
    /// * `ctl_down` — whether the control plane can currently serve.
    /// * `installed_fingerprint` — the active controller's
    ///   installed-posture fingerprint (continuity invariant).
    /// * `facts` — per-device observations, in device-id order.
    ///
    /// Returns the devices that must *newly* enter quarantine, in id
    /// order; the world realizes each by installing the per-class
    /// minimal allow-list at the device's edge switch.
    pub fn tick(
        &mut self,
        now: SimTime,
        ctl_down: bool,
        installed_fingerprint: u64,
        facts: &[DeviceFacts],
    ) -> Vec<DeviceId> {
        // Accrue time-in-quarantine before processing this tick.
        if let Some(last) = self.last_tick {
            let dt = now.duration_since(last).as_nanos();
            self.stats.quarantine_time_ns += dt * self.quarantined.len() as u64;
        }
        self.last_tick = Some(now);

        // 1. Drain the trace stream: failovers arm the continuity
        //    check; breaker trips escalate straight to quarantine.
        let mut tripped: Vec<DeviceId> = Vec::new();
        for (_, event) in self.tracer.events_since(self.cursor) {
            self.cursor += 1;
            match event {
                TraceEvent::Failover { .. } => {
                    let pre = self.healthy_fingerprint.unwrap_or(self.empty_fingerprint);
                    self.expected_recovery = Some((pre, now + self.cfg.continuity_window));
                }
                TraceEvent::BreakerTrip { device } => tripped.push(DeviceId(device)),
                _ => {}
            }
        }

        // 2. Controller outage bookkeeping (staleness + monotonicity
        //    both key off the episode).
        if ctl_down {
            if self.outage_since.is_none() {
                self.outage_since = Some(now);
                self.mediated_at_outage =
                    facts.iter().filter(|f| f.mediated()).map(|f| f.device).collect();
            }
        } else {
            self.outage_since = None;
            self.mediated_at_outage.clear();
            self.staleness_flagged.clear();
            self.monotonicity_flagged.clear();
        }

        // 3. Per-device invariants.
        for f in facts {
            // Fail-closed coverage: a down chain that leaked packets
            // this tick is a coverage hole.
            let last = self.last_fail_open.insert(f.device, f.fail_open_passed).unwrap_or(0);
            let leaked = f.fail_open_passed.saturating_sub(last);
            if f.chain_down {
                let since = *self.chain_down_since.entry(f.device).or_insert(now);
                if leaked > 0 {
                    self.record(now, f.device, "fail-closed-coverage");
                    if self.latency_measured.insert(f.device) {
                        self.stats.detection_latency_ns_total +=
                            now.duration_since(since).as_nanos();
                        self.stats.detections += 1;
                    }
                }
            } else {
                self.chain_down_since.remove(&f.device);
                self.latency_measured.remove(&f.device);
            }

            if let Some(since) = self.outage_since {
                // Bounded staleness: the data plane is enforcing a view
                // whose age exceeds the class budget.
                if now.duration_since(since) > self.cfg.staleness_budget_for(f.class)
                    && self.staleness_flagged.insert(f.device)
                {
                    self.record(now, f.device, "bounded-staleness");
                }
                // Posture monotonicity: mediated at outage start, now
                // effectively permissive — the outage *relaxed* it.
                if self.mediated_at_outage.contains(&f.device)
                    && !f.mediated()
                    && self.monotonicity_flagged.insert(f.device)
                {
                    self.record(now, f.device, "posture-monotonicity");
                }
            }
        }

        // 4. FSM continuity across failover: once the controller is
        //    healthy again, an installed vector still *empty* past the
        //    recovery window means the promoted replica silently lost
        //    its FSMs (the log replay or reconcile never happened).
        if !ctl_down {
            if let Some((pre, deadline)) = self.expected_recovery {
                if installed_fingerprint == pre
                    || (installed_fingerprint != self.empty_fingerprint && now >= deadline)
                {
                    // Recovered (or legitimately evolved past the
                    // pre-failover posture while replaying the log).
                    self.expected_recovery = None;
                } else if now >= deadline {
                    self.record(now, DeviceId(0), "fsm-continuity");
                    self.expected_recovery = None;
                }
            } else {
                self.healthy_fingerprint = Some(installed_fingerprint);
            }
        }

        // 5. Escalation: breaker trips quarantine immediately; repeat
        //    offenders quarantine after `quarantine_after` violations.
        let mut newly = Vec::new();
        if self.cfg.escalate {
            for device in tripped {
                if self.quarantined.insert(device) {
                    newly.push(device);
                }
            }
            for f in facts {
                let count = self.violation_count.get(&f.device).copied().unwrap_or(0);
                if count >= self.cfg.quarantine_after && self.quarantined.insert(f.device) {
                    newly.push(f.device);
                }
            }
            newly.sort_unstable();
            self.stats.quarantines += newly.len() as u64;
            for device in &newly {
                self.tracer
                    .emit(now.as_nanos(), TraceEvent::QuarantineInstalled { device: device.0 });
            }
        }
        newly
    }
}

/// One invariant violation found in a trace, either recorded live by
/// the [`SafetyMonitor`] or derived structurally by [`check_trace`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Sim-time of the violating event (ns).
    pub at_ns: u64,
    /// The device concerned (0 for world-level invariants).
    pub device: u32,
    /// Which invariant failed (stable label, see module docs).
    pub invariant: &'static str,
}

/// Pure trace-level invariant check: everything the safety layer
/// promises that is decidable from the deterministic event stream
/// alone, callable outside the world loop (the E23 vet oracle runs it
/// over finished traces; tests feed it synthetic streams).
///
/// Invariants checked, with their `invariant` labels:
///
/// * **monitor pass-through** — every [`TraceEvent::SafetyViolation`]
///   the live monitor recorded is surfaced verbatim under its original
///   label (`fail-closed-coverage`, `bounded-staleness`,
///   `posture-monotonicity`, `fsm-continuity`).
/// * **`trace-order`** — Control-class timestamps never decrease: the
///   control plane's history is a valid sim-time order. (Packet-class
///   events are stamped with network arrival times that legitimately
///   lag the world clock, so they are exempt.)
/// * **`quarantine-reinstall`** — quarantine is sticky for a run; a
///   second [`TraceEvent::QuarantineInstalled`] for the same device
///   means posture monotonicity broke inside the escalation path
///   itself.
/// * **`post-quarantine-leak`** — no compromised flow crosses the edge
///   post-quarantine: once a device is quarantined, any
///   [`TraceEvent::UmboxExit`] with a `fail-open` verdict for it is
///   traffic that crossed the edge *unfiltered* past the allow-list.
/// * **`breaker-fsm`** — breaker events respect the trip → half-open →
///   (close | re-trip) state machine per device.
/// * **`mixed-failure-mode`** — a chain's failure mode is fixed at
///   deployment; one device emitting both `fail-open` and
///   `fail-closed` verdicts in a single run is a config split-brain.
/// * **`delivery-unquiesced`** — directive delivery eventually
///   quiesces: by the end of the trace every issued directive has
///   resolved (delivered, deduped, shed, or admission-shed).
pub fn check_trace(events: &[(u64, TraceEvent)]) -> Vec<Violation> {
    #[derive(Clone, Copy, PartialEq)]
    enum Breaker {
        Closed,
        Open,
        Half,
    }
    let mut out = Vec::new();
    let mut last_at = 0u64;
    let mut quarantined: BTreeSet<u32> = BTreeSet::new();
    let mut breaker: BTreeMap<u32, Breaker> = BTreeMap::new();
    // Per-device (issued, resolved) directive tallies.
    let mut issued: BTreeMap<u32, u64> = BTreeMap::new();
    let mut resolved: BTreeMap<u32, u64> = BTreeMap::new();
    let mut verdict_mode: BTreeMap<u32, &'static str> = BTreeMap::new();
    for &(at, ref event) in events {
        // Packet-class events carry network arrival times that can lag
        // the world clock; only the control plane promises order.
        if event.class() == trace::EventClass::Control {
            if at < last_at {
                out.push(Violation { at_ns: at, device: 0, invariant: "trace-order" });
            }
            last_at = last_at.max(at);
        }
        match *event {
            TraceEvent::SafetyViolation { device, invariant } => {
                out.push(Violation { at_ns: at, device, invariant });
            }
            TraceEvent::QuarantineInstalled { device } if !quarantined.insert(device) => {
                out.push(Violation { at_ns: at, device, invariant: "quarantine-reinstall" });
            }
            TraceEvent::QuarantineInstalled { .. } => {}
            TraceEvent::UmboxExit { device, verdict } => {
                if verdict == "fail-open" && quarantined.contains(&device) {
                    out.push(Violation { at_ns: at, device, invariant: "post-quarantine-leak" });
                }
                if verdict == "fail-open" || verdict == "fail-closed" {
                    let mode = verdict_mode.entry(device).or_insert(verdict);
                    if *mode != verdict {
                        out.push(Violation { at_ns: at, device, invariant: "mixed-failure-mode" });
                    }
                }
            }
            TraceEvent::BreakerTrip { device } => {
                let state = breaker.entry(device).or_insert(Breaker::Closed);
                if *state == Breaker::Open {
                    out.push(Violation { at_ns: at, device, invariant: "breaker-fsm" });
                }
                *state = Breaker::Open;
            }
            TraceEvent::BreakerHalfOpen { device } => {
                let state = breaker.entry(device).or_insert(Breaker::Closed);
                if *state != Breaker::Open {
                    out.push(Violation { at_ns: at, device, invariant: "breaker-fsm" });
                }
                *state = Breaker::Half;
            }
            TraceEvent::BreakerClose { device } => {
                let state = breaker.entry(device).or_insert(Breaker::Closed);
                if *state != Breaker::Half {
                    out.push(Violation { at_ns: at, device, invariant: "breaker-fsm" });
                }
                *state = Breaker::Closed;
            }
            TraceEvent::DirectiveIssued { device, .. } => {
                *issued.entry(device).or_insert(0) += 1;
            }
            TraceEvent::DirectiveDelivered { device, .. }
            | TraceEvent::DirectiveDeduped { device }
            | TraceEvent::DirectiveShed { device, .. }
            | TraceEvent::AdmissionShed { device } => {
                *resolved.entry(device).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    for (&device, &n) in &issued {
        if n > resolved.get(&device).copied().unwrap_or(0) {
            out.push(Violation { at_ns: last_at, device, invariant: "delivery-unquiesced" });
        }
    }
    out.sort();
    out
}

/// [`check_trace`] plus the fail-closed-deployment obligation: breaker
/// trips (or anything else) must never fail a FailClosed chain *open* —
/// a single `fail-open` µmbox verdict in the whole run is flagged as
/// **`fail-open-in-fail-closed`**. Use on traces of deployments whose
/// chaos config is fail-closed (the vet oracle's default arm).
pub fn check_trace_fail_closed(events: &[(u64, TraceEvent)]) -> Vec<Violation> {
    let mut out = check_trace(events);
    for &(at, ref event) in events {
        if let TraceEvent::UmboxExit { device, verdict: "fail-open" } = *event {
            out.push(Violation { at_ns: at, device, invariant: "fail-open-in-fail-closed" });
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::tracer::{TraceConfig, Tracer};

    fn facts(device: u32, protected: bool, down: bool, passed: u64) -> DeviceFacts {
        DeviceFacts {
            device: DeviceId(device),
            class: DeviceClass::Camera,
            protected,
            chain_down: down,
            fail_open: true,
            fail_open_passed: passed,
        }
    }

    fn monitor(cfg: SafetyConfig) -> (SafetyMonitor, Tracer) {
        let tracer = Tracer::new(TraceConfig::control_only());
        (SafetyMonitor::new(cfg, tracer.clone()), tracer)
    }

    #[test]
    fn healthy_world_records_no_violations() {
        let (mut m, _t) = monitor(SafetyConfig::default());
        for s in 0..20u64 {
            let now = SimTime::from_millis(100 * s);
            let out = m.tick(now, false, 42, &[facts(1, true, false, 0)]);
            assert!(out.is_empty());
        }
        assert_eq!(m.stats().violations, 0);
    }

    #[test]
    fn leaking_down_chain_is_a_coverage_violation_per_tick() {
        let (mut m, _t) = monitor(SafetyConfig { escalate: false, ..SafetyConfig::default() });
        m.tick(SimTime::ZERO, false, 1, &[facts(1, true, false, 0)]);
        // Chain goes down at t=1s; packets leak at t=2s and t=3s.
        m.tick(SimTime::from_secs(1), false, 1, &[facts(1, true, true, 0)]);
        m.tick(SimTime::from_secs(2), false, 1, &[facts(1, true, true, 3)]);
        m.tick(SimTime::from_secs(3), false, 1, &[facts(1, true, true, 5)]);
        // A down chain that leaks nothing this tick is not a new hole.
        m.tick(SimTime::from_secs(4), false, 1, &[facts(1, true, true, 5)]);
        assert_eq!(m.stats().coverage_violations, 2);
        // Latency measured once, from down-onset (1s) to first leak (2s).
        assert_eq!(m.stats().detections, 1);
        assert_eq!(m.stats().detection_latency_ns_total, SimDuration::from_secs(1).as_nanos());
    }

    #[test]
    fn staleness_uses_the_class_budget_once_per_episode() {
        let cfg = SafetyConfig { escalate: false, ..SafetyConfig::default() };
        let (mut m, _t) = monitor(cfg);
        let sensor = facts(1, true, false, 0);
        let actuator = DeviceFacts { class: DeviceClass::SmartLock, ..facts(2, true, false, 0) };
        // Outage starts at t=0 and runs 12s.
        for s in 0..=12u64 {
            m.tick(SimTime::from_secs(s), true, 1, &[sensor, actuator]);
        }
        // Actuator flagged past 5s, sensor past 10s; each exactly once.
        assert_eq!(m.stats().staleness_violations, 2);
        // A second outage episode flags again.
        m.tick(SimTime::from_secs(13), false, 1, &[sensor, actuator]);
        for s in 14..=26u64 {
            m.tick(SimTime::from_secs(s), true, 1, &[sensor, actuator]);
        }
        assert_eq!(m.stats().staleness_violations, 4);
    }

    #[test]
    fn outage_relaxation_is_a_monotonicity_violation() {
        let cfg = SafetyConfig { escalate: false, ..SafetyConfig::default() };
        let (mut m, _t) = monitor(cfg);
        // Mediated when the outage begins...
        m.tick(SimTime::ZERO, true, 1, &[facts(1, true, false, 0)]);
        // ...then the chain goes down fail-open mid-outage.
        m.tick(SimTime::from_secs(1), true, 1, &[facts(1, true, true, 0)]);
        assert_eq!(m.stats().monotonicity_violations, 1);
        // Already unmediated when a *later* outage begins: no regression.
        m.tick(SimTime::from_secs(2), false, 1, &[facts(1, true, true, 0)]);
        m.tick(SimTime::from_secs(3), true, 1, &[facts(1, true, true, 0)]);
        assert_eq!(m.stats().monotonicity_violations, 1);
    }

    #[test]
    fn silent_fsm_reset_across_failover_is_flagged() {
        let cfg = SafetyConfig { escalate: false, ..SafetyConfig::default() };
        let empty = PostureVector::new().fingerprint();
        let (mut m, t) = monitor(cfg);
        // Healthy with a non-empty installed vector.
        m.tick(SimTime::ZERO, false, 99, &[]);
        t.emit(SimTime::from_secs(1).as_nanos(), TraceEvent::Failover { count: 1 });
        m.tick(SimTime::from_secs(1), true, 99, &[]);
        // Promoted replica serves but its installed vector stays empty
        // past the continuity window: silent reset.
        for s in 2..=12u64 {
            m.tick(SimTime::from_secs(s), false, empty, &[]);
        }
        assert_eq!(m.stats().continuity_violations, 1);
    }

    #[test]
    fn recovered_fingerprint_satisfies_continuity() {
        let cfg = SafetyConfig { escalate: false, ..SafetyConfig::default() };
        let (mut m, t) = monitor(cfg);
        m.tick(SimTime::ZERO, false, 99, &[]);
        t.emit(SimTime::from_secs(1).as_nanos(), TraceEvent::Failover { count: 1 });
        m.tick(SimTime::from_secs(1), true, 99, &[]);
        // The promoted replica reconciles back to the same posture.
        for s in 2..=12u64 {
            m.tick(SimTime::from_secs(s), false, 99, &[]);
        }
        assert_eq!(m.stats().continuity_violations, 0);
    }

    #[test]
    fn repeat_offenders_escalate_to_quarantine_and_stay_there() {
        let cfg = SafetyConfig { quarantine_after: 2, ..SafetyConfig::default() };
        let (mut m, _t) = monitor(cfg);
        m.tick(SimTime::ZERO, false, 1, &[facts(1, true, false, 0)]);
        m.tick(SimTime::from_secs(1), false, 1, &[facts(1, true, true, 2)]);
        assert!(!m.is_quarantined(DeviceId(1)));
        let newly = m.tick(SimTime::from_secs(2), false, 1, &[facts(1, true, true, 4)]);
        assert_eq!(newly, vec![DeviceId(1)]);
        assert!(m.is_quarantined(DeviceId(1)));
        assert_eq!(m.stats().quarantines, 1);
        // Sticky: no re-quarantine, but time accrues.
        let again = m.tick(SimTime::from_secs(3), false, 1, &[facts(1, true, true, 6)]);
        assert!(again.is_empty());
        assert_eq!(m.stats().quarantine_time_ns, SimDuration::from_secs(1).as_nanos());
    }

    #[test]
    fn breaker_trip_in_the_stream_quarantines_immediately() {
        let (mut m, t) = monitor(SafetyConfig::default());
        m.tick(SimTime::ZERO, false, 1, &[facts(7, true, false, 0)]);
        t.emit(SimTime::from_secs(1).as_nanos(), TraceEvent::BreakerTrip { device: 7 });
        let newly = m.tick(SimTime::from_secs(1), false, 1, &[facts(7, true, true, 0)]);
        assert_eq!(newly, vec![DeviceId(7)]);
    }

    #[test]
    fn detect_only_never_escalates() {
        let (mut m, t) = monitor(SafetyConfig::detect_only());
        t.emit(SimTime::from_secs(1).as_nanos(), TraceEvent::BreakerTrip { device: 7 });
        for s in 1..10u64 {
            let newly = m.tick(SimTime::from_secs(s), false, 1, &[facts(7, true, true, s * 5)]);
            assert!(newly.is_empty());
        }
        assert!(m.stats().coverage_violations > 0, "still detects");
        assert_eq!(m.stats().quarantines, 0);
    }

    fn invariants(events: &[(u64, TraceEvent)]) -> Vec<&'static str> {
        check_trace(events).into_iter().map(|v| v.invariant).collect()
    }

    #[test]
    fn check_trace_passes_a_clean_stream() {
        let events = vec![
            (0, TraceEvent::DirectiveIssued { device: 1, kind: "launch" }),
            (0, TraceEvent::DirectiveDelivered { device: 1, kind: "launch" }),
            (5, TraceEvent::BreakerTrip { device: 1 }),
            (9, TraceEvent::BreakerHalfOpen { device: 1 }),
            (12, TraceEvent::BreakerClose { device: 1 }),
            (15, TraceEvent::UmboxExit { device: 1, verdict: "pass" }),
        ];
        assert!(check_trace(&events).is_empty());
    }

    #[test]
    fn check_trace_surfaces_monitor_violations_verbatim() {
        let events =
            vec![(3, TraceEvent::SafetyViolation { device: 4, invariant: "bounded-staleness" })];
        let out = check_trace(&events);
        assert_eq!(out, vec![Violation { at_ns: 3, device: 4, invariant: "bounded-staleness" }]);
    }

    #[test]
    fn check_trace_rejects_time_travel() {
        let events = vec![
            (10, TraceEvent::UmboxRespawn { device: 1 }),
            (5, TraceEvent::UmboxRespawn { device: 1 }),
        ];
        assert_eq!(invariants(&events), vec!["trace-order"]);
    }

    #[test]
    fn check_trace_flags_quarantine_reinstall() {
        let events = vec![
            (1, TraceEvent::QuarantineInstalled { device: 2 }),
            (2, TraceEvent::QuarantineInstalled { device: 2 }),
        ];
        assert_eq!(invariants(&events), vec!["quarantine-reinstall"]);
    }

    #[test]
    fn check_trace_flags_post_quarantine_fail_open_flows() {
        // Unfiltered traffic before quarantine is a coverage problem the
        // monitor handles; *after* quarantine it is an edge-crossing
        // leak the allow-list should have killed at the switch.
        let events = vec![
            (1, TraceEvent::UmboxExit { device: 3, verdict: "fail-open" }),
            (2, TraceEvent::QuarantineInstalled { device: 3 }),
            (3, TraceEvent::UmboxExit { device: 3, verdict: "fail-open" }),
        ];
        assert_eq!(
            check_trace(&events),
            vec![Violation { at_ns: 3, device: 3, invariant: "post-quarantine-leak" }]
        );
    }

    #[test]
    fn check_trace_enforces_the_breaker_state_machine() {
        // Half-open without a preceding trip.
        assert_eq!(
            invariants(&[(1, TraceEvent::BreakerHalfOpen { device: 1 })]),
            vec!["breaker-fsm"]
        );
        // Close without a half-open trial.
        assert_eq!(
            invariants(&[
                (1, TraceEvent::BreakerTrip { device: 1 }),
                (2, TraceEvent::BreakerClose { device: 1 }),
            ]),
            vec!["breaker-fsm"]
        );
        // Re-trip from half-open is legal.
        assert!(check_trace(&[
            (1, TraceEvent::BreakerTrip { device: 1 }),
            (2, TraceEvent::BreakerHalfOpen { device: 1 }),
            (3, TraceEvent::BreakerTrip { device: 1 }),
        ])
        .is_empty());
    }

    #[test]
    fn check_trace_flags_mixed_failure_modes() {
        let events = vec![
            (1, TraceEvent::UmboxExit { device: 5, verdict: "fail-closed" }),
            (2, TraceEvent::UmboxExit { device: 5, verdict: "fail-open" }),
        ];
        assert_eq!(invariants(&events), vec!["mixed-failure-mode"]);
    }

    #[test]
    fn check_trace_requires_delivery_to_quiesce() {
        let pending = vec![
            (1, TraceEvent::DirectiveIssued { device: 1, kind: "launch" }),
            (1, TraceEvent::DirectiveIssued { device: 2, kind: "launch" }),
            (2, TraceEvent::DirectiveDelivered { device: 1, kind: "launch" }),
        ];
        assert_eq!(
            check_trace(&pending),
            vec![Violation { at_ns: 2, device: 2, invariant: "delivery-unquiesced" }]
        );
        // Shed, deduped and admission-shed all count as resolution.
        let resolved = vec![
            (1, TraceEvent::DirectiveIssued { device: 1, kind: "launch" }),
            (1, TraceEvent::DirectiveIssued { device: 2, kind: "launch" }),
            (1, TraceEvent::DirectiveIssued { device: 3, kind: "launch" }),
            (2, TraceEvent::DirectiveShed { device: 1, criticality: "telemetry" }),
            (2, TraceEvent::DirectiveDeduped { device: 2 }),
            (2, TraceEvent::AdmissionShed { device: 3 }),
        ];
        assert!(check_trace(&resolved).is_empty());
    }

    #[test]
    fn fail_closed_variant_rejects_any_fail_open_verdict() {
        let events = vec![(4, TraceEvent::UmboxExit { device: 1, verdict: "fail-open" })];
        assert!(check_trace(&events).is_empty());
        assert_eq!(
            check_trace_fail_closed(&events),
            vec![Violation { at_ns: 4, device: 1, invariant: "fail-open-in-fail-closed" }]
        );
    }

    #[test]
    fn admission_keeps_the_upper_tiers_under_backlog() {
        let cfg = SafetyConfig { admission_backlog: 4, ..SafetyConfig::default() };
        // Under budget: everything admitted.
        assert!(admit(&cfg, 3, Criticality::Telemetry));
        // Over budget: only revoke and quarantine pass.
        assert!(!admit(&cfg, 5, Criticality::Telemetry));
        assert!(!admit(&cfg, 5, Criticality::PatchProxy));
        assert!(admit(&cfg, 5, Criticality::Revoke));
        assert!(admit(&cfg, 5, Criticality::Quarantine));
    }
}
