//! The controller's global view: device contexts + environment.
//!
//! The view is assembled from security events (reported by devices and
//! µmboxes) and periodic environment reports (from sensors via the hub).
//! It is versioned so consistency experiments can measure staleness
//! precisely.

use iotdev::device::DeviceId;
use iotdev::env::EnvVar;
use iotdev::events::{SecurityEvent, SecurityEventKind};
use iotnet::time::SimTime;
use iotpolicy::context::SecurityContext;
use serde::Serialize;
use std::collections::BTreeMap;

/// The controller's view of the world.
#[derive(Debug, Clone, Default, Serialize)]
pub struct GlobalView {
    /// Device security contexts (devices default to `Normal`).
    pub contexts: BTreeMap<DeviceId, SecurityContext>,
    /// Environment values as last reported.
    pub env: BTreeMap<EnvVar, &'static str>,
    /// Monotone version, bumped on every change.
    pub version: u64,
    /// Time of the last change.
    pub updated_at: SimTime,
}

impl GlobalView {
    /// A fresh, empty view.
    pub fn new() -> GlobalView {
        GlobalView::default()
    }

    /// The context of a device (defaults to `Normal`).
    pub fn context(&self, id: DeviceId) -> SecurityContext {
        self.contexts.get(&id).copied().unwrap_or(SecurityContext::Normal)
    }

    /// An environment value, if known.
    pub fn env_value(&self, var: EnvVar) -> Option<&'static str> {
        self.env.get(&var).copied()
    }

    fn bump(&mut self, at: SimTime) {
        self.version += 1;
        self.updated_at = at;
    }

    /// Fold one security event into the view; returns whether the view
    /// changed.
    ///
    /// Escalation mapping: device-confirmed takeovers
    /// (`BackdoorAccessed`, `UnauthenticatedActuation`) mark the device
    /// `Compromised`; everything else suspicious marks it `Suspicious`;
    /// physical events update the environment.
    pub fn apply_event(&mut self, event: &SecurityEvent) -> bool {
        let mut changed = false;
        match event.kind {
            SecurityEventKind::BackdoorAccessed | SecurityEventKind::UnauthenticatedActuation => {
                changed = self.escalate(event.device, SecurityContext::Compromised);
            }
            k if k.is_suspicious() => {
                changed = self.escalate(event.device, SecurityContext::Suspicious);
            }
            SecurityEventKind::SmokeAlarm => changed = self.set_env(EnvVar::Smoke, "yes"),
            SecurityEventKind::SmokeCleared => changed = self.set_env(EnvVar::Smoke, "no"),
            SecurityEventKind::OccupancyChanged(present) => {
                changed =
                    self.set_env(EnvVar::Occupancy, if present { "present" } else { "absent" });
            }
            SecurityEventKind::WindowChanged(open) => {
                changed = self.set_env(EnvVar::Window, if open { "open" } else { "closed" });
            }
            SecurityEventKind::Unresponsive => {
                changed = self.escalate(event.device, SecurityContext::Suspicious);
            }
            _ => {}
        }
        if changed {
            self.bump(event.at);
        }
        changed
    }

    /// Apply an environment report (from sensors/hub); returns whether
    /// anything changed.
    pub fn apply_env_report(&mut self, at: SimTime, values: &[(EnvVar, &'static str)]) -> bool {
        let mut changed = false;
        for (var, value) in values {
            changed |= self.set_env_raw(*var, value);
        }
        if changed {
            self.bump(at);
        }
        changed
    }

    fn set_env(&mut self, var: EnvVar, value: &'static str) -> bool {
        self.set_env_raw(var, value)
    }

    fn set_env_raw(&mut self, var: EnvVar, value: &'static str) -> bool {
        if self.env.get(&var) == Some(&value) {
            false
        } else {
            self.env.insert(var, value);
            true
        }
    }

    fn escalate(&mut self, device: DeviceId, to: SecurityContext) -> bool {
        let cur = self.context(device);
        let next = cur.escalate(to);
        if next != cur {
            self.contexts.insert(device, next);
            true
        } else {
            false
        }
    }

    /// Operator action: clear a device back to `Normal` after
    /// remediation.
    pub fn clear_context(&mut self, device: DeviceId, at: SimTime) {
        if self.contexts.remove(&device).is_some() {
            self.bump(at);
        }
    }

    /// Contexts as a slice of pairs, for building policy states.
    pub fn context_pairs(&self) -> Vec<(DeviceId, SecurityContext)> {
        self.contexts.iter().map(|(k, v)| (*k, *v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotnet::addr::Ipv4Addr;

    fn ev(kind: SecurityEventKind) -> SecurityEvent {
        SecurityEvent::new(SimTime::from_secs(1), DeviceId(0), kind)
            .from_remote(Ipv4Addr::new(100, 64, 0, 9))
    }

    #[test]
    fn suspicious_events_escalate_once() {
        let mut v = GlobalView::new();
        assert!(v.apply_event(&ev(SecurityEventKind::AuthFailureBurst)));
        assert_eq!(v.context(DeviceId(0)), SecurityContext::Suspicious);
        let version = v.version;
        // Re-applying the same level does not churn the version.
        assert!(!v.apply_event(&ev(SecurityEventKind::AuthFailureBurst)));
        assert_eq!(v.version, version);
    }

    #[test]
    fn takeover_events_mark_compromised_and_never_deescalate() {
        let mut v = GlobalView::new();
        v.apply_event(&ev(SecurityEventKind::BackdoorAccessed));
        assert_eq!(v.context(DeviceId(0)), SecurityContext::Compromised);
        // A later merely-suspicious event cannot downgrade.
        v.apply_event(&ev(SecurityEventKind::AuthFailureBurst));
        assert_eq!(v.context(DeviceId(0)), SecurityContext::Compromised);
    }

    #[test]
    fn blocked_actuation_is_only_suspicious() {
        let mut v = GlobalView::new();
        v.apply_event(&ev(SecurityEventKind::BlockedActuation));
        assert_eq!(v.context(DeviceId(0)), SecurityContext::Suspicious);
    }

    #[test]
    fn physical_events_update_env() {
        let mut v = GlobalView::new();
        v.apply_event(&ev(SecurityEventKind::SmokeAlarm));
        assert_eq!(v.env_value(EnvVar::Smoke), Some("yes"));
        v.apply_event(&ev(SecurityEventKind::OccupancyChanged(false)));
        assert_eq!(v.env_value(EnvVar::Occupancy), Some("absent"));
        v.apply_event(&ev(SecurityEventKind::WindowChanged(true)));
        assert_eq!(v.env_value(EnvVar::Window), Some("open"));
        v.apply_event(&ev(SecurityEventKind::SmokeCleared));
        assert_eq!(v.env_value(EnvVar::Smoke), Some("no"));
    }

    #[test]
    fn env_reports_and_versioning() {
        let mut v = GlobalView::new();
        let v0 = v.version;
        assert!(v.apply_env_report(SimTime::from_secs(2), &[(EnvVar::Temperature, "high")]));
        assert!(v.version > v0);
        // Unchanged report: no version bump.
        let v1 = v.version;
        assert!(!v.apply_env_report(SimTime::from_secs(3), &[(EnvVar::Temperature, "high")]));
        assert_eq!(v.version, v1);
    }

    #[test]
    fn clear_context_resets() {
        let mut v = GlobalView::new();
        v.apply_event(&ev(SecurityEventKind::SignatureMatch));
        assert_eq!(v.context(DeviceId(0)), SecurityContext::Suspicious);
        v.clear_context(DeviceId(0), SimTime::from_secs(9));
        assert_eq!(v.context(DeviceId(0)), SecurityContext::Normal);
    }
}
