//! Directives: what the controller tells the data plane to do.
//!
//! The simulation world executes these against the network (flow rules)
//! and the µmbox lifecycle manager. Ordering matters: the planner emits
//! make-before-break sequences (launch/reconfigure the new chain before
//! any un-steering), so a device is never left unprotected mid-update.

use iotdev::device::DeviceId;
use iotpolicy::posture::{Posture, SecurityModule};
use serde::Serialize;

/// How urgent a directive is when the delivery channel must shed.
///
/// The derive order is the semantic order — `quarantine > revoke >
/// patch-proxy > telemetry` — so `Ord` comparisons read naturally:
/// under queue pressure the lowest tier loses first, and an admission
/// controller under backlog keeps only the upper tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Criticality {
    /// Pure observation: mirror-only postures, retires back to allow.
    Telemetry,
    /// Inline mediation: proxies, IDS, gates, rate limits, whitelists.
    PatchProxy,
    /// Partial revocation: a blocking module cuts a message class.
    Revoke,
    /// Full quarantine: a block-all posture.
    Quarantine,
}

impl Criticality {
    /// Stable label for trace payloads.
    pub fn label(self) -> &'static str {
        match self {
            Criticality::Telemetry => "telemetry",
            Criticality::PatchProxy => "patch-proxy",
            Criticality::Revoke => "revoke",
            Criticality::Quarantine => "quarantine",
        }
    }
}

/// One control-plane directive.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Directive {
    /// Launch a µmbox chain realizing `posture` for `device` and steer
    /// the device's traffic through it.
    Launch {
        /// The device.
        device: DeviceId,
        /// The posture to realize.
        posture: Posture,
    },
    /// Reconfigure the device's existing chain to `posture` in place.
    Reconfigure {
        /// The device.
        device: DeviceId,
        /// The new posture.
        posture: Posture,
    },
    /// Retire the device's chain and stop steering.
    Retire {
        /// The device.
        device: DeviceId,
    },
}

impl Directive {
    /// The device a directive concerns.
    pub fn device(&self) -> DeviceId {
        match self {
            Directive::Launch { device, .. }
            | Directive::Reconfigure { device, .. }
            | Directive::Retire { device } => *device,
        }
    }

    /// The delivery criticality, derived from the directive's content.
    ///
    /// Deliberately *not* a stored field: the idempotence ID
    /// ([`crate::delivery::directive_id`]) hashes the directive's debug
    /// representation, so an extra field would change every ID and
    /// break dedup across versions. Deriving keeps the wire content —
    /// and the IDs — exactly as they were.
    pub fn criticality(&self) -> Criticality {
        match self {
            Directive::Retire { .. } => Criticality::Telemetry,
            Directive::Launch { posture, .. } | Directive::Reconfigure { posture, .. } => {
                if posture.blocks_all() {
                    Criticality::Quarantine
                } else if posture.modules().iter().any(|m| m.is_blocking()) {
                    Criticality::Revoke
                } else if posture.modules().iter().all(|m| matches!(m, SecurityModule::Mirror)) {
                    Criticality::Telemetry
                } else {
                    Criticality::PatchProxy
                }
            }
        }
    }
}

/// Plan the directive sequence that moves a device from `old` to `new`.
pub fn plan_transition(device: DeviceId, old: &Posture, new: &Posture) -> Option<Directive> {
    match (old.is_allow(), new.is_allow()) {
        (true, true) => None,
        (true, false) => Some(Directive::Launch { device, posture: new.clone() }),
        (false, true) => Some(Directive::Retire { device }),
        (false, false) => {
            if old == new {
                None
            } else {
                Some(Directive::Reconfigure { device, posture: new.clone() })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotpolicy::posture::SecurityModule;

    #[test]
    fn transitions_cover_the_matrix() {
        let dev = DeviceId(3);
        let allow = Posture::allow();
        let proxy = Posture::of(SecurityModule::PasswordProxy);
        let hard = Posture::quarantine();
        assert_eq!(plan_transition(dev, &allow, &allow), None);
        assert_eq!(
            plan_transition(dev, &allow, &proxy),
            Some(Directive::Launch { device: dev, posture: proxy.clone() })
        );
        assert_eq!(plan_transition(dev, &proxy, &allow), Some(Directive::Retire { device: dev }));
        assert_eq!(
            plan_transition(dev, &proxy, &hard),
            Some(Directive::Reconfigure { device: dev, posture: hard.clone() })
        );
        assert_eq!(plan_transition(dev, &hard, &hard), None);
    }

    #[test]
    fn directive_device_accessor() {
        assert_eq!(Directive::Retire { device: DeviceId(7) }.device(), DeviceId(7));
    }

    #[test]
    fn criticality_orders_quarantine_over_revoke_over_proxy_over_telemetry() {
        assert!(Criticality::Quarantine > Criticality::Revoke);
        assert!(Criticality::Revoke > Criticality::PatchProxy);
        assert!(Criticality::PatchProxy > Criticality::Telemetry);
    }

    #[test]
    fn criticality_is_derived_from_content() {
        let dev = DeviceId(1);
        let launch = |p: Posture| Directive::Launch { device: dev, posture: p };
        assert_eq!(launch(Posture::quarantine()).criticality(), Criticality::Quarantine);
        assert_eq!(
            launch(Posture::of(SecurityModule::Block(
                iotpolicy::posture::BlockClass::DnsResponses
            )))
            .criticality(),
            Criticality::Revoke
        );
        assert_eq!(
            launch(Posture::of(SecurityModule::PasswordProxy)).criticality(),
            Criticality::PatchProxy
        );
        assert_eq!(
            launch(Posture::of(SecurityModule::Mirror)).criticality(),
            Criticality::Telemetry
        );
        assert_eq!(
            Directive::Retire { device: dev }.criticality(),
            Criticality::Telemetry,
            "retire relaxes protection; it must never outrank installs"
        );
        // Reconfigure follows the same posture-derived rule as launch.
        let reconf = Directive::Reconfigure { device: dev, posture: Posture::quarantine() };
        assert_eq!(reconf.criticality(), Criticality::Quarantine);
    }
}
