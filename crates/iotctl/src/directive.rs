//! Directives: what the controller tells the data plane to do.
//!
//! The simulation world executes these against the network (flow rules)
//! and the µmbox lifecycle manager. Ordering matters: the planner emits
//! make-before-break sequences (launch/reconfigure the new chain before
//! any un-steering), so a device is never left unprotected mid-update.

use iotdev::device::DeviceId;
use iotpolicy::posture::Posture;
use serde::Serialize;

/// One control-plane directive.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Directive {
    /// Launch a µmbox chain realizing `posture` for `device` and steer
    /// the device's traffic through it.
    Launch {
        /// The device.
        device: DeviceId,
        /// The posture to realize.
        posture: Posture,
    },
    /// Reconfigure the device's existing chain to `posture` in place.
    Reconfigure {
        /// The device.
        device: DeviceId,
        /// The new posture.
        posture: Posture,
    },
    /// Retire the device's chain and stop steering.
    Retire {
        /// The device.
        device: DeviceId,
    },
}

impl Directive {
    /// The device a directive concerns.
    pub fn device(&self) -> DeviceId {
        match self {
            Directive::Launch { device, .. }
            | Directive::Reconfigure { device, .. }
            | Directive::Retire { device } => *device,
        }
    }
}

/// Plan the directive sequence that moves a device from `old` to `new`.
pub fn plan_transition(device: DeviceId, old: &Posture, new: &Posture) -> Option<Directive> {
    match (old.is_allow(), new.is_allow()) {
        (true, true) => None,
        (true, false) => Some(Directive::Launch { device, posture: new.clone() }),
        (false, true) => Some(Directive::Retire { device }),
        (false, false) => {
            if old == new {
                None
            } else {
                Some(Directive::Reconfigure { device, posture: new.clone() })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotpolicy::posture::SecurityModule;

    #[test]
    fn transitions_cover_the_matrix() {
        let dev = DeviceId(3);
        let allow = Posture::allow();
        let proxy = Posture::of(SecurityModule::PasswordProxy);
        let hard = Posture::quarantine();
        assert_eq!(plan_transition(dev, &allow, &allow), None);
        assert_eq!(
            plan_transition(dev, &allow, &proxy),
            Some(Directive::Launch { device: dev, posture: proxy.clone() })
        );
        assert_eq!(plan_transition(dev, &proxy, &allow), Some(Directive::Retire { device: dev }));
        assert_eq!(
            plan_transition(dev, &proxy, &hard),
            Some(Directive::Reconfigure { device: dev, posture: hard.clone() })
        );
        assert_eq!(plan_transition(dev, &hard, &hard), None);
    }

    #[test]
    fn directive_device_accessor() {
        assert_eq!(Directive::Retire { device: DeviceId(7) }.device(), DeviceId(7));
    }
}
