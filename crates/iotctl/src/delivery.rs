//! Hardened directive delivery: idempotent IDs, bounded queueing and
//! retry with exponential backoff.
//!
//! Directives travel from the controller to the data plane over a
//! channel that can be unreachable (controller outage, failover
//! re-sync). The channel provides three guarantees the chaos layer
//! exercises:
//!
//! * **Idempotence.** Every directive carries a content-derived ID; a
//!   re-delivery of the directive a device already has (e.g. the full
//!   posture a freshly promoted standby re-emits) is suppressed instead
//!   of re-executed, so failover never bounces healthy chains.
//! * **Bounded queue with prioritized shedding.** At most `capacity`
//!   envelopes wait. When the queue is full the *lowest-criticality,
//!   newest* directive is shed ([`Criticality`]: quarantine > revoke >
//!   patch-proxy > telemetry; within the losing tier the newest entry
//!   loses, so an older directive that is closer to delivery survives
//!   its peers). A quarantine directive is therefore only ever shed if
//!   the entire queue is already quarantine-criticality — the
//!   no-critical-shed guarantee E18 pins.
//! * **Retry with backoff.** While the channel is unreachable, due
//!   envelopes re-arm with exponentially growing delays (capped), and
//!   every attempt is counted.

use crate::directive::{Criticality, Directive};
use iotdev::device::DeviceId;
use iotnet::time::{SimDuration, SimTime};
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};
use trace::{TraceEvent, Tracer};

/// Delivery-channel tuning.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DeliveryConfig {
    /// Maximum envelopes queued before shedding.
    pub capacity: usize,
    /// First retry delay while unreachable.
    pub base_backoff: SimDuration,
    /// Retry delay ceiling.
    pub max_backoff: SimDuration,
}

impl Default for DeliveryConfig {
    fn default() -> Self {
        DeliveryConfig {
            capacity: 64,
            base_backoff: SimDuration::from_millis(100),
            max_backoff: SimDuration::from_secs(5),
        }
    }
}

/// Delivery counters.
#[derive(Debug, Clone, Default, Serialize)]
pub struct DeliveryStats {
    /// Directives submitted by the controller.
    pub submitted: u64,
    /// Directives handed to the data plane.
    pub delivered: u64,
    /// Re-deliveries suppressed by the idempotence check.
    pub deduped: u64,
    /// Retry attempts made while the channel was unreachable.
    pub retries: u64,
    /// Directives shed because the queue was full.
    pub shed: u64,
    /// Quarantine-criticality directives shed. Structurally this can
    /// only happen when the whole queue is quarantine-tier; the E18
    /// safety gate requires it to stay zero in every cell.
    pub shed_critical: u64,
}

/// A directive in flight.
#[derive(Debug, Clone)]
pub struct DirectiveEnvelope {
    /// Content-derived idempotence ID.
    pub id: u64,
    /// The directive itself.
    pub directive: Directive,
    /// Shedding tier, computed from the directive at submit time (not
    /// stored in the directive — see [`Directive::criticality`]).
    pub criticality: Criticality,
    /// Delivery attempts so far.
    pub attempts: u32,
    /// Earliest next attempt.
    pub next_attempt: SimTime,
}

/// Content-derived idempotence ID: FNV-1a over the directive's debug
/// representation. Two directives with identical content (same device,
/// kind and posture) share an ID.
pub fn directive_id(directive: &Directive) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{directive:?}").bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The controller → data-plane directive channel.
pub struct DeliveryChannel {
    cfg: DeliveryConfig,
    queue: VecDeque<DirectiveEnvelope>,
    /// The ID of the last directive actually applied per device — the
    /// idempotence horizon. A newer, *different* directive for the same
    /// device always goes through.
    last_applied: BTreeMap<DeviceId, u64>,
    /// Counters.
    pub stats: DeliveryStats,
    /// Control-class trace emission (shed/retry/dedup; disabled by
    /// default).
    tracer: Tracer,
}

impl DeliveryChannel {
    /// An empty channel.
    pub fn new(cfg: DeliveryConfig) -> DeliveryChannel {
        DeliveryChannel {
            cfg,
            queue: VecDeque::new(),
            last_applied: BTreeMap::new(),
            stats: DeliveryStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attach a tracer for channel-internal events (shed, retry, dedup).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Submit a directive for delivery. Under queue pressure the
    /// lowest-criticality, newest entry is shed: if the incoming
    /// directive itself sits at (or below) the queue's lowest tier it
    /// is refused — it is the newest of that tier — and `false` is
    /// returned; otherwise the newest entry of the lowest tier is
    /// evicted to make room and the submission succeeds.
    pub fn submit(&mut self, now: SimTime, directive: Directive) -> bool {
        self.stats.submitted += 1;
        let criticality = directive.criticality();
        if self.queue.len() >= self.cfg.capacity {
            let min_crit = self.queue.iter().map(|e| e.criticality).min().unwrap_or(criticality);
            if criticality <= min_crit {
                self.shed(now, directive.device(), criticality);
                return false;
            }
            let victim = self
                .queue
                .iter()
                .rposition(|e| e.criticality == min_crit)
                .expect("full queue has a lowest-criticality entry");
            let evicted = self.queue.remove(victim).expect("victim index in range");
            self.shed(now, evicted.directive.device(), evicted.criticality);
        }
        let id = directive_id(&directive);
        self.queue.push_back(DirectiveEnvelope {
            id,
            directive,
            criticality,
            attempts: 0,
            next_attempt: now,
        });
        true
    }

    fn shed(&mut self, now: SimTime, device: DeviceId, criticality: Criticality) {
        self.stats.shed += 1;
        if criticality == Criticality::Quarantine {
            self.stats.shed_critical += 1;
        }
        self.tracer.emit(
            now.as_nanos(),
            TraceEvent::DirectiveShed { device: device.0, criticality: criticality.label() },
        );
    }

    /// Advance the channel to `now`. When `reachable`, every queued
    /// envelope is delivered in order (idempotent re-deliveries are
    /// suppressed) and the surviving directives are returned for
    /// execution. When unreachable, due envelopes re-arm with
    /// exponential backoff instead.
    pub fn pump(&mut self, now: SimTime, reachable: bool) -> Vec<Directive> {
        if !reachable {
            for env in &mut self.queue {
                if env.next_attempt <= now {
                    env.attempts += 1;
                    self.stats.retries += 1;
                    self.tracer.emit(
                        now.as_nanos(),
                        TraceEvent::DirectiveRetry {
                            device: env.directive.device().0,
                            attempt: env.attempts,
                        },
                    );
                    let exp = env.attempts.saturating_sub(1).min(16);
                    let backoff = (self.cfg.base_backoff * (1u64 << exp)).min(self.cfg.max_backoff);
                    env.next_attempt = now + backoff;
                }
            }
            return Vec::new();
        }
        let mut out = Vec::new();
        while let Some(env) = self.queue.pop_front() {
            let device = env.directive.device();
            if self.last_applied.get(&device) == Some(&env.id) {
                self.stats.deduped += 1;
                self.tracer.emit(now.as_nanos(), TraceEvent::DirectiveDeduped { device: device.0 });
                continue;
            }
            self.last_applied.insert(device, env.id);
            self.stats.delivered += 1;
            out.push(env.directive);
        }
        out
    }

    /// Envelopes currently waiting.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotpolicy::posture::{Posture, SecurityModule};

    fn launch(device: u32) -> Directive {
        Directive::Launch {
            device: DeviceId(device),
            posture: Posture::of(SecurityModule::PasswordProxy),
        }
    }

    #[test]
    fn ids_are_content_derived() {
        assert_eq!(directive_id(&launch(1)), directive_id(&launch(1)));
        assert_ne!(directive_id(&launch(1)), directive_id(&launch(2)));
        assert_ne!(
            directive_id(&launch(1)),
            directive_id(&Directive::Retire { device: DeviceId(1) })
        );
    }

    #[test]
    fn redelivery_of_the_current_posture_is_suppressed() {
        let mut ch = DeliveryChannel::new(DeliveryConfig::default());
        ch.submit(SimTime::ZERO, launch(1));
        assert_eq!(ch.pump(SimTime::ZERO, true).len(), 1);
        // A failover re-emits the same posture: suppressed.
        ch.submit(SimTime::from_secs(1), launch(1));
        assert!(ch.pump(SimTime::from_secs(1), true).is_empty());
        assert_eq!(ch.stats.deduped, 1);
        // But a *different* directive for the device goes through, and a
        // later re-issue of the original is a real state change again.
        ch.submit(SimTime::from_secs(2), Directive::Retire { device: DeviceId(1) });
        ch.submit(SimTime::from_secs(2), launch(1));
        assert_eq!(ch.pump(SimTime::from_secs(2), true).len(), 2);
    }

    #[test]
    fn bounded_queue_sheds_lowest_criticality_newest_first() {
        // Uniform criticality: the incoming directive is the newest of
        // the lowest tier, so it is the one refused (the pre-Criticality
        // behavior, preserved byte-for-byte for uniform queues).
        let mut ch = DeliveryChannel::new(DeliveryConfig { capacity: 2, ..Default::default() });
        assert!(ch.submit(SimTime::ZERO, launch(1)));
        assert!(ch.submit(SimTime::ZERO, launch(2)));
        assert!(!ch.submit(SimTime::ZERO, launch(3))); // shed
        assert_eq!(ch.stats.shed, 1);
        assert_eq!(ch.stats.shed_critical, 0);
        // The older envelopes are still intact and deliverable.
        let out = ch.pump(SimTime::ZERO, true);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.device() != DeviceId(3)));
    }

    #[test]
    fn quarantine_evicts_the_newest_of_the_lowest_tier() {
        let mut ch = DeliveryChannel::new(DeliveryConfig { capacity: 2, ..Default::default() });
        // Two telemetry-tier entries; device 2's is the newer.
        assert!(ch.submit(SimTime::ZERO, Directive::Retire { device: DeviceId(1) }));
        assert!(ch.submit(SimTime::ZERO, Directive::Retire { device: DeviceId(2) }));
        // A quarantine install outranks both: device 2 (newest of the
        // lowest tier) is evicted, device 1 keeps its delivery slot.
        let q = Directive::Launch { device: DeviceId(3), posture: Posture::quarantine() };
        assert!(ch.submit(SimTime::ZERO, q));
        assert_eq!(ch.stats.shed, 1);
        assert_eq!(ch.stats.shed_critical, 0);
        let out = ch.pump(SimTime::ZERO, true);
        let devs: Vec<DeviceId> = out.iter().map(|d| d.device()).collect();
        assert_eq!(devs, vec![DeviceId(1), DeviceId(3)]);
    }

    #[test]
    fn quarantine_is_only_shed_against_quarantine() {
        let mut ch = DeliveryChannel::new(DeliveryConfig { capacity: 1, ..Default::default() });
        let q =
            |dev: u32| Directive::Launch { device: DeviceId(dev), posture: Posture::quarantine() };
        assert!(ch.submit(SimTime::ZERO, q(1)));
        // The queue is all quarantine-tier; the incoming quarantine is
        // the newest of that tier and loses. This is the only path that
        // can increment shed_critical.
        assert!(!ch.submit(SimTime::ZERO, q(2)));
        assert_eq!(ch.stats.shed_critical, 1);
        assert_eq!(ch.depth(), 1);
    }

    #[test]
    fn unreachable_channel_backs_off_exponentially() {
        let cfg = DeliveryConfig {
            capacity: 8,
            base_backoff: SimDuration::from_millis(100),
            max_backoff: SimDuration::from_secs(1),
        };
        let mut ch = DeliveryChannel::new(cfg);
        ch.submit(SimTime::ZERO, launch(1));

        // Attempt 1 at t=0 → next at 100ms; attempt 2 → +200ms; etc.
        assert!(ch.pump(SimTime::ZERO, false).is_empty());
        assert_eq!(ch.stats.retries, 1);
        // Not yet due: no new attempt.
        ch.pump(SimTime::from_millis(50), false);
        assert_eq!(ch.stats.retries, 1);
        ch.pump(SimTime::from_millis(100), false);
        assert_eq!(ch.stats.retries, 2);
        ch.pump(SimTime::from_millis(300), false);
        assert_eq!(ch.stats.retries, 3);
        // Backoff is capped at max_backoff.
        for i in 0..10 {
            ch.pump(SimTime::from_secs(10 + 10 * i), false);
        }
        assert_eq!(ch.depth(), 1);

        // The channel heals: the envelope finally delivers.
        let out = ch.pump(SimTime::from_secs(200), true);
        assert_eq!(out.len(), 1);
        assert_eq!(ch.stats.delivered, 1);
    }
}
