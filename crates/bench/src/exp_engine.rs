//! E21 — the zero-alloc arena event engine and the packed packet fast
//! path, measured.
//!
//! Three measurements, one determinism gate:
//!
//! 1. **World sweep** — the E16 scaled-home grid
//!    ([`crate::exp_perf::standard_jobs`], 18 world instances) runs on
//!    two engine arms: *legacy* (the `BinaryHeap` reference queue plus
//!    the field-by-field flow-table scan) and *packed* (the arena-backed
//!    timer wheel plus packed-key SoA probing — the defaults). The
//!    packed arm additionally runs at each thread count in
//!    [`PAR_THREADS`]. Every leg must reproduce the packed-serial
//!    reference digests byte-for-byte.
//! 2. **Steady-state allocation probe** — a warm two-host network with a
//!    steered IDS chain runs `schedule → fire → forward → verdict`
//!    rounds while a caller-supplied allocation counter watches; the
//!    packed arm must execute the measured window with **zero**
//!    allocations (the tentpole's whole point).
//! 3. **Queue micro-benchmark** — a synthetic schedule/pop storm through
//!    both queue backends, for a ns/event number uncontaminated by world
//!    logic.
//!
//! Wall-clock numbers land only in the `wall_ms`-marked volatile section
//! of `BENCH_E21.json`; digests, counters and the alloc-free verdict are
//! byte-stable, and the CI `engine-gate` job diffs them with
//! `git diff -I'wall_ms'`. Any digest divergence — or a packed steady
//! state that allocates — fails the run (non-zero exit via the runner).

use crate::sweep::{run_sweep, run_world_job_engine, WorldOutcome};
use crate::Table;
use iotdev::device::{AdminCreds, DeviceId};
use iotdev::proto::{ports, AppMessage, TelemetryKind};
use iotdev::registry::Sku;
use iotlearn::signature::{AttackSignature, Matcher, Severity};
use iotnet::engine::{AnyEventQueue, QueueKind};
use iotnet::flow::{FlowAction, FlowMatch, FlowRule, SteerId};
use iotnet::link::LinkParams;
use iotnet::net::{Delivery, Network};
use iotnet::packet::{Packet, TransportHeader};
use iotnet::time::{SimDuration, SimTime};
use iotnet::topology::TopologyBuilder;
use iotpolicy::posture::{Posture, SecurityModule};
use std::time::Instant;
use trace::tracer::Tracer;
use umbox::chain::{build_chain, ChainConfig, FailureMode};
use umbox::element::{EventSink, ViewHandle};

/// The repo-wide experiment seed.
pub const SEED: u64 = 20151116;

/// Thread counts for the packed-parallel legs; fixed (not CLI-driven) so
/// the stable section of `BENCH_E21.json` is byte-identical across hosts.
pub const PAR_THREADS: &[usize] = &[2, 4];

/// Steady-probe round spacing: 2^21 ns, an exact multiple of the timer
/// wheel's level-0 slot width (2^12 ns) and level-1 slot width (2^18 ns).
/// Every round therefore lands its events in a slot-index pattern that
/// repeats with a short period, so a modest warm phase provably touches
/// every wheel slot the measured phase will use — allocation in the
/// measured window then genuinely means a steady-state leak, not a cold
/// slot vector.
const STEADY_STEP_NS: u64 = 1 << 21;
/// Warm-up rounds. At 2^21 ns per round the wheel's level-2 slot index
/// advances once every 8 rounds (lap = 512 rounds) and the overflow
/// re-anchor fires at the 2^30 ns boundary (round 512), so 576 rounds
/// covers one full level-2 lap plus the first overflow crossing — every
/// slot vector and heap the measured window can touch is already warm.
const STEADY_WARM: u64 = 576;
/// Measured rounds (well clear of the next overflow crossing at 1024).
const STEADY_MEASURE: u64 = 64;

/// Events scheduled and popped per queue micro-benchmark arm.
pub const MICRO_EVENTS: u64 = 1 << 18;
/// Batch size of the micro-benchmark's schedule/pop cycle.
const MICRO_BATCH: u64 = 4096;

/// One sweep leg: an engine arm at a thread count.
pub struct EngineLeg {
    /// Stable label (`legacy-serial`, `packed-serial`, `packed-par2`...).
    pub label: String,
    /// Worker threads (1 = serial).
    pub threads: usize,
    /// Whether every digest matched the packed-serial reference.
    pub identical: bool,
    /// Sweep wall time (volatile; never gated on).
    pub wall_ms: u128,
}

/// Steady-state allocation probe result for one engine arm.
pub struct SteadyProbe {
    /// Engine events popped in the measured window.
    pub events: u64,
    /// Packets delivered in the measured window.
    pub delivered: u64,
    /// Heap allocations observed in the measured window.
    pub allocs: u64,
}

/// The E21 report: the printed table plus everything the JSON needs.
pub struct EngineReport {
    /// Rendered leg table.
    pub table: Table,
    /// World instances per sweep leg.
    pub jobs: usize,
    /// Reference digests (packed serial), one per job.
    pub digests: Vec<String>,
    /// Engine events processed by the reference sweep.
    pub events_total: u64,
    /// Flow-decision-cache lookups in the reference sweep.
    pub cache_lookups: u64,
    /// Flow-decision-cache hits in the reference sweep.
    pub cache_hits: u64,
    /// Every sweep leg, reference first.
    pub legs: Vec<EngineLeg>,
    /// Steady-state probe on the legacy arm (heap queue + scan lookup).
    pub steady_legacy: SteadyProbe,
    /// Steady-state probe on the packed arm (wheel + packed lookup).
    pub steady_packed: SteadyProbe,
    /// Events per micro-benchmark arm.
    pub micro_events: u64,
    /// Micro-benchmark wall time, heap backend (volatile).
    pub micro_heap_wall_ns: u128,
    /// Micro-benchmark wall time, wheel backend (volatile).
    pub micro_wheel_wall_ns: u128,
    /// Every leg identical *and* the packed steady state allocation-free.
    pub deterministic: bool,
    /// One-line human summary.
    pub summary: String,
}

impl EngineReport {
    /// Aggregate flow-cache hit rate of the reference sweep.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }

    /// Events/second for a sweep leg (wall-clock, so host-dependent —
    /// volatile section only).
    fn events_per_sec(&self, wall_ms: u128) -> f64 {
        self.events_total as f64 / (wall_ms.max(1) as f64 / 1000.0)
    }

    /// ns/event for a sweep leg (volatile section only).
    fn ns_per_event(&self, wall_ms: u128) -> f64 {
        (wall_ms as f64 * 1e6) / (self.events_total.max(1) as f64)
    }

    /// Wall time of the leg with the given label, if it ran.
    fn leg_wall_ms(&self, label: &str) -> Option<u128> {
        self.legs.iter().find(|l| l.label == label).map(|l| l.wall_ms)
    }

    /// `BENCH_E21.json`: a stable section (digests, counters, the
    /// alloc-free verdict, engine agreement) plus a `timing_wall_ms`
    /// section where **every** volatile line contains `wall_ms`, so CI
    /// can assert byte stability with `git diff -I'wall_ms'`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"e21\",\n");
        out.push_str(&format!("  \"seed\": {SEED},\n"));
        let threads: Vec<String> = PAR_THREADS.iter().map(|t| t.to_string()).collect();
        out.push_str(&format!("  \"parallel_threads\": [{}],\n", threads.join(", ")));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"events_total\": {},\n", self.events_total));
        out.push_str(&format!("  \"cache_lookups\": {},\n", self.cache_lookups));
        out.push_str(&format!("  \"cache_hits\": {},\n", self.cache_hits));
        out.push_str(&format!(
            "  \"steady_state\": {{\"measured_rounds\": {STEADY_MEASURE}, \
             \"legacy_events\": {}, \"legacy_allocs\": {}, \
             \"packed_events\": {}, \"packed_allocs\": {}, \
             \"packed_alloc_free\": {}}},\n",
            self.steady_legacy.events,
            self.steady_legacy.allocs,
            self.steady_packed.events,
            self.steady_packed.allocs,
            self.steady_packed.allocs == 0,
        ));
        out.push_str("  \"digests\": [\n");
        for (i, d) in self.digests.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\"{}\n",
                d,
                if i + 1 == self.digests.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"legs\": [\n");
        for (i, l) in self.legs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"threads\": {}, \"identical\": {}}}{}\n",
                l.label,
                l.threads,
                l.identical,
                if i + 1 == self.legs.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"deterministic\": {},\n", self.deterministic));
        out.push_str("  \"timing_wall_ms\": [\n");
        for l in &self.legs {
            out.push_str(&format!(
                "    {{\"leg\": \"{}\", \"sweep_wall_ms\": {}, \"ns_per_event\": {:.1}, \
                 \"events_per_sec\": {:.0}}},\n",
                l.label,
                l.wall_ms,
                self.ns_per_event(l.wall_ms),
                self.events_per_sec(l.wall_ms),
            ));
        }
        out.push_str(&format!(
            "    {{\"micro\": \"queue-heap\", \"micro_wall_ms\": {}, \"ns_per_event\": {:.1}}},\n",
            self.micro_heap_wall_ns / 1_000_000,
            self.micro_heap_wall_ns as f64 / self.micro_events.max(1) as f64,
        ));
        out.push_str(&format!(
            "    {{\"micro\": \"queue-wheel\", \"micro_wall_ms\": {}, \"ns_per_event\": {:.1}}}\n",
            self.micro_wheel_wall_ns / 1_000_000,
            self.micro_wheel_wall_ns as f64 / self.micro_events.max(1) as f64,
        ));
        out.push_str("  ],\n");
        let legacy = self.leg_wall_ms("legacy-serial").unwrap_or(0);
        let packed = self.leg_wall_ms("packed-serial").unwrap_or(0);
        // The improvement verdict comes from the engine-isolated queue
        // micro-benchmark; the 18-world sweep walls are dominated by
        // world *construction* and recorded above as context only.
        out.push_str(&format!(
            "  \"speedup_wall_ms\": {{\"packed_vs_legacy_serial_sweep\": {:.2}, \
             \"micro_heap_vs_wheel\": {:.2}, \"packed_events_per_sec_improves\": {}}}\n",
            legacy as f64 / packed.max(1) as f64,
            self.micro_heap_wall_ns as f64 / self.micro_wheel_wall_ns.max(1) as f64,
            self.micro_wheel_wall_ns < self.micro_heap_wall_ns,
        ));
        out.push_str("}\n");
        out
    }
}

/// The steady-state fixture: two LAN hosts on one switch, every packet
/// steered through an IDS chain whose prefilters screen the (benign)
/// telemetry without a payload decode — the packed fast path end to end.
fn steady_net(queue: QueueKind, packed: bool) -> (Network, iotnet::addr::EndpointId, Packet) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch();
    let a = b.attach_endpoint(sw, LinkParams::lan());
    let z = b.attach_endpoint(sw, LinkParams::lan());
    let mut net = Network::with_queue(b.build(), SEED, queue);
    net.set_packed_lookup(packed);

    let signatures: Vec<AttackSignature> = vec![
        AttackSignature::new(
            Sku::new("belkin", "wemo", "1.1"),
            "cloud-bypass-backdoor",
            Matcher::CloudCommand,
            Severity::High,
        ),
        AttackSignature::new(
            Sku::new("belkin", "wemo", "1.1"),
            "unauthenticated-control",
            Matcher::UnauthenticatedControl,
            Severity::High,
        ),
        AttackSignature::new(
            Sku::new("belkin", "wemo", "1.1"),
            "mgmt-from-wan",
            Matcher::MgmtFromExternal,
            Severity::Medium,
        ),
    ];
    let config = ChainConfig {
        device: DeviceId(0),
        required_creds: AdminCreds::new("owner", "Str0ng!"),
        cleared_sources: Vec::new(),
        signatures: signatures.into(),
        view: ViewHandle::new(),
        events: EventSink::new(),
        failure_mode: FailureMode::FailOpen,
        tracer: Tracer::disabled(),
    };
    let chain = build_chain(&Posture::of(SecurityModule::Ids { ruleset: 1 }), &config);
    net.register_steer(SteerId(1), Box::new(chain), SimDuration::from_micros(200));
    net.install_rule(sw, FlowRule::new(100, FlowMatch::any(), FlowAction::Steer(SteerId(1))));

    let pkt = Packet::new(
        net.mac_of(a),
        net.mac_of(z),
        net.ip_of(a),
        net.ip_of(z),
        TransportHeader::udp(4000, ports::TELEMETRY),
        AppMessage::Telemetry { kind: TelemetryKind::Power, value: 21.0 }.encode(),
    );
    (net, a, pkt)
}

fn steady_round(
    net: &mut Network,
    a: iotnet::addr::EndpointId,
    pkt: &Packet,
    round: u64,
    buf: &mut Vec<Delivery>,
) -> u64 {
    let t = SimTime::from_nanos(round * STEADY_STEP_NS);
    net.send(a, t, pkt.clone());
    buf.clear();
    net.step_until_into(SimTime::from_nanos((round + 1) * STEADY_STEP_NS), buf);
    buf.len() as u64
}

/// Run the warm steady-state loop on one engine arm, reading the
/// allocation counter only around the measured window.
fn steady_probe(queue: QueueKind, packed: bool, alloc_count: &dyn Fn() -> u64) -> SteadyProbe {
    let (mut net, a, pkt) = steady_net(queue, packed);
    let mut buf: Vec<Delivery> = Vec::new();
    for round in 0..STEADY_WARM {
        steady_round(&mut net, a, &pkt, round, &mut buf);
    }
    let events_before = net.events_processed();
    let mut delivered = 0u64;
    let allocs_before = alloc_count();
    for round in STEADY_WARM..STEADY_WARM + STEADY_MEASURE {
        delivered += steady_round(&mut net, a, &pkt, round, &mut buf);
    }
    let allocs = alloc_count() - allocs_before;
    SteadyProbe { events: net.events_processed() - events_before, delivered, allocs }
}

/// Schedule/pop [`MICRO_EVENTS`] synthetic events through one queue
/// backend in batches, returning the wall time in nanoseconds. The
/// xorshift offsets exercise near (wheel slots) and far (overflow tier)
/// schedules identically on both backends.
fn micro_queue_wall_ns(kind: QueueKind) -> u128 {
    let mut q: AnyEventQueue<u64> = AnyEventQueue::with_capacity(kind, MICRO_BATCH as usize);
    let mut x = SEED | 1;
    let mut popped = 0u64;
    let start = Instant::now();
    while popped < MICRO_EVENTS {
        let base = q.now().as_nanos();
        for i in 0..MICRO_BATCH {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            let r = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
            // Simulated latencies are microseconds to low milliseconds
            // (LAN hops, µmbox detours); one event in 64 sits seconds out
            // to keep the overflow tier honest.
            let offset = if i % 64 == 0 { r % 4_000_000_000 } else { r % 4_000_000 };
            q.schedule(SimTime::from_nanos(base + offset), i);
        }
        while q.pop().is_some() {
            popped += 1;
        }
    }
    start.elapsed().as_nanos()
}

fn ms(start: Instant) -> u128 {
    start.elapsed().as_millis()
}

/// E21 — run both engine arms over the E16 grid, probe the steady state
/// through `alloc_count` (a reader of the process's allocation counter;
/// the `experiments` binary installs a counting global allocator and
/// passes it in), and build the report.
pub fn engine(alloc_count: &dyn Fn() -> u64) -> EngineReport {
    let jobs = crate::exp_perf::standard_jobs(SEED);

    // Steady-state probes first, on a quiet process (no sweep threads).
    let steady_legacy = steady_probe(QueueKind::Heap, false, alloc_count);
    let steady_packed = steady_probe(QueueKind::Wheel, true, alloc_count);

    // Queue micro-benchmark: warm both backends once (page cache, lazy
    // init), then time.
    micro_queue_wall_ns(QueueKind::Heap);
    micro_queue_wall_ns(QueueKind::Wheel);
    let micro_heap_wall_ns = micro_queue_wall_ns(QueueKind::Heap);
    let micro_wheel_wall_ns = micro_queue_wall_ns(QueueKind::Wheel);

    // Untimed warmup sweep so the first timed leg does not absorb the
    // process's cold-start cost (and so any residual warmup advantage
    // accrues to the *legacy* leg, timed first — the packed-faster
    // verdict below is the conservative reading).
    let warmup: Vec<WorldOutcome> =
        run_sweep(jobs.clone(), 1, |_, job| run_world_job_engine(job, QueueKind::Wheel, true));
    let digests: Vec<String> = warmup.iter().map(|o| o.digest()).collect();
    let events_total: u64 = warmup.iter().map(|o| o.events_processed).sum();
    let cache_lookups: u64 = warmup.iter().map(|o| o.cache_lookups).sum();
    let cache_hits: u64 = warmup.iter().map(|o| o.cache_hits).sum();

    let matches_reference = |outcomes: &[WorldOutcome]| {
        outcomes.len() == digests.len()
            && outcomes.iter().zip(digests.iter()).all(|(o, d)| &o.digest() == d)
    };

    let mut legs = Vec::new();

    // Legacy arm: heap queue + field-by-field lookup, serial.
    let start = Instant::now();
    let legacy: Vec<WorldOutcome> =
        run_sweep(jobs.clone(), 1, |_, job| run_world_job_engine(job, QueueKind::Heap, false));
    legs.push(EngineLeg {
        label: "legacy-serial".to_string(),
        threads: 1,
        identical: matches_reference(&legacy),
        wall_ms: ms(start),
    });

    // Packed-serial sweep: the arm whose digests are the reference.
    let start = Instant::now();
    let reference: Vec<WorldOutcome> =
        run_sweep(jobs.clone(), 1, |_, job| run_world_job_engine(job, QueueKind::Wheel, true));
    legs.push(EngineLeg {
        label: "packed-serial".to_string(),
        threads: 1,
        identical: matches_reference(&reference),
        wall_ms: ms(start),
    });

    // Packed arm at each fixed thread count.
    for &t in PAR_THREADS {
        let start = Instant::now();
        let par: Vec<WorldOutcome> =
            run_sweep(jobs.clone(), t, |_, job| run_world_job_engine(job, QueueKind::Wheel, true));
        legs.push(EngineLeg {
            label: format!("packed-par{t}"),
            threads: t,
            identical: matches_reference(&par),
            wall_ms: ms(start),
        });
    }

    let mut table = Table::new(
        "E21: arena engine + packed fast path — every leg, one digest set",
        &["leg", "threads", "jobs", "events", "cache hit rate", "identical", "wall ms"],
    );
    let hit_rate = if cache_lookups == 0 { 0.0 } else { cache_hits as f64 / cache_lookups as f64 };
    for l in &legs {
        table.rowd(&[
            l.label.clone(),
            l.threads.to_string(),
            jobs.len().to_string(),
            events_total.to_string(),
            format!("{hit_rate:.3}"),
            l.identical.to_string(),
            l.wall_ms.to_string(),
        ]);
    }

    let deterministic = legs.iter().all(|l| l.identical) && steady_packed.allocs == 0;
    let report = EngineReport {
        table,
        jobs: jobs.len(),
        digests,
        events_total,
        cache_lookups,
        cache_hits,
        legs,
        steady_legacy,
        steady_packed,
        micro_events: MICRO_EVENTS,
        micro_heap_wall_ns,
        micro_wheel_wall_ns,
        deterministic,
        summary: String::new(),
    };
    let summary = format!(
        "E21 summary: {} jobs x {} legs, {} events, steady-state allocs/round \
         legacy={:.2} packed={:.2} (packed alloc-free: {}), micro ns/event \
         heap={:.0} wheel={:.0}, deterministic: {}",
        report.jobs,
        report.legs.len(),
        report.events_total,
        report.steady_legacy.allocs as f64 / STEADY_MEASURE as f64,
        report.steady_packed.allocs as f64 / STEADY_MEASURE as f64,
        report.steady_packed.allocs == 0,
        report.micro_heap_wall_ns as f64 / report.micro_events.max(1) as f64,
        report.micro_wheel_wall_ns as f64 / report.micro_events.max(1) as f64,
        report.deterministic,
    );
    EngineReport { summary, ..report }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A null counter: unit tests exercise the probe's determinism, not
    /// the allocator (the real count is wired up by the `experiments`
    /// binary and pinned by `tests/alloc_counter.rs`).
    fn no_counter() -> u64 {
        0
    }

    #[test]
    fn steady_probe_is_arm_invariant() {
        let legacy = steady_probe(QueueKind::Heap, false, &no_counter);
        let packed = steady_probe(QueueKind::Wheel, true, &no_counter);
        // Same traffic, same engine semantics: both arms pop the same
        // events and deliver the same packets.
        assert_eq!(legacy.events, packed.events);
        assert_eq!(legacy.delivered, packed.delivered);
        assert!(packed.events > 0, "the probe must actually run the engine");
        assert_eq!(packed.delivered, STEADY_MEASURE, "one delivery per round");
    }

    #[test]
    fn micro_queue_pops_every_event() {
        // Both backends complete the full storm (the function would spin
        // forever otherwise); smoke the wheel arm.
        let ns = micro_queue_wall_ns(QueueKind::Wheel);
        assert!(ns > 0);
    }

    #[test]
    fn engine_arms_agree_on_one_job() {
        use crate::sweep::{SweepScenario, WorldJob};
        let job = WorldJob { scenario: SweepScenario::HomeIoTSec, seed: SEED, population: 0 };
        let packed = run_world_job_engine(&job, QueueKind::Wheel, true);
        let legacy = run_world_job_engine(&job, QueueKind::Heap, false);
        assert_eq!(packed.digest(), legacy.digest());
    }

    #[test]
    fn json_volatile_lines_all_carry_wall_ms() {
        let mk_leg = |label: &str, threads: usize| EngineLeg {
            label: label.to_string(),
            threads,
            identical: true,
            wall_ms: 5,
        };
        let report = EngineReport {
            table: Table::new("t", &["a"]),
            jobs: 18,
            digests: vec!["home-iotsec/s1/p0: c=0".to_string()],
            events_total: 1000,
            cache_lookups: 500,
            cache_hits: 400,
            legs: vec![mk_leg("packed-serial", 1), mk_leg("legacy-serial", 1)],
            steady_legacy: SteadyProbe { events: 128, delivered: 64, allocs: 0 },
            steady_packed: SteadyProbe { events: 128, delivered: 64, allocs: 0 },
            micro_events: MICRO_EVENTS,
            micro_heap_wall_ns: 7_000_000,
            micro_wheel_wall_ns: 5_000_000,
            deterministic: true,
            summary: String::new(),
        };
        let json = report.render_json();
        let mut in_timing = false;
        for line in json.lines() {
            if line.contains("\"timing_wall_ms\"") {
                in_timing = true;
            }
            if in_timing && line.contains('{') {
                assert!(line.contains("wall_ms"), "volatile line lacks marker: {line}");
            }
            if line.contains("speedup") || line.contains("ns_per_event") {
                assert!(line.contains("wall_ms"), "host-dependent line lacks marker: {line}");
            }
        }
        assert!(json.contains("\"packed_alloc_free\": true"));
        assert!(json.contains("\"deterministic\": true"));
        assert!(json.ends_with("}\n"));
    }
}
