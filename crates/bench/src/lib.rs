//! Experiment harness for the IoTSec reproduction.
//!
//! Every table and figure of the paper — plus the quantitative
//! experiments (E1–E12) its prose demands and the ablations (A1–A3) —
//! has a function here that regenerates it. The `experiments` binary
//! dispatches on experiment id and prints markdown tables;
//! EXPERIMENTS.md records the outputs against the paper's claims.
//!
//! Experiment ↔ module map (see DESIGN.md §3 for the full index):
//!
//! | ids | module |
//! |---|---|
//! | T1, F3, F4, F5, E11 | [`exp_world`] |
//! | T2, E1, E2, A1 | [`exp_policy`] |
//! | E3, E4, A3 | [`exp_crowd`] |
//! | E5, E6 | [`exp_models`] |
//! | E7, E8, A2 | [`exp_ctl`] |
//! | E9, E10 | [`exp_umbox`] |
//! | E12 | [`exp_anomaly`] |
//! | E13, E14 | [`exp_pipeline`] |
//! | E15 | [`exp_chaos`] |
//! | E16 | [`exp_perf`] (on the [`sweep`] engine) |
//! | E17 | [`exp_trace`] (the golden-trace differential harness) |
//! | E18 | [`exp_safety`] (the runtime safety sweep and CI gate) |
//! | E19 | [`exp_space`] (the packed-state state-space engine) |
//! | E20 | [`exp_fleet`] (the fleet-scale sharded controller) |
//! | E21 | [`exp_engine`] (the arena event engine + packed fast path) |
//! | E23 | [`exp_vet`] (the adversarial vet campaign and CI gate) |
//! | E25 | [`exp_fleet_chaos`] (fleet fault tolerance and recovery) |
//! | E26 | [`exp_resident`] (resident worlds and delta intel installs) |
//!
//! [`metrics`] holds the runner's thread-local engine-counter registry,
//! drained into each experiment's `BENCH_E16.json` record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp_anomaly;
pub mod exp_chaos;
pub mod exp_crowd;
pub mod exp_ctl;
pub mod exp_engine;
pub mod exp_fleet;
pub mod exp_fleet_chaos;
pub mod exp_models;
pub mod exp_perf;
pub mod exp_pipeline;
pub mod exp_policy;
pub mod exp_resident;
pub mod exp_safety;
pub mod exp_space;
pub mod exp_trace;
pub mod exp_umbox;
pub mod exp_vet;
pub mod exp_world;
pub mod metrics;
pub mod sweep;
pub mod table;

pub use table::Table;
