//! E18 — runtime safety: fault intensity × overload vs. violations
//! detected, violations prevented, and directives shed.
//!
//! Each cell runs the same smart-home scenario (all Table 1 devices;
//! the campaign bounces repeated DNS-reflection bursts off the smart
//! plug, then sweeps the remaining exploits, ending with a dictionary
//! attack on the camera) at one of three fault intensities, twice: once with the
//! safety layer in **detect-only** mode (same invariants, same budgets,
//! nothing acts on them) and once with the **full** stack (circuit
//! breakers, quarantine escalation, prioritized admission control).
//! Because both arms *measure* violations identically, the difference
//! between them is the number of violations the active machinery
//! prevented.
//!
//! The report doubles as the CI safety gate:
//!
//! * zero-fault cells must record **zero** violations,
//! * no cell may ever shed a quarantine-criticality directive,
//! * at the highest intensity the full stack must record **strictly
//!   fewer** violations than detect-only,
//! * the worst cell must reproduce byte-identically when re-run.
//!
//! Any gate failure flips `deterministic()` to false, which makes the
//! `experiments e18` process exit non-zero.

use crate::Table;
use iotctl::safety::SafetyConfig;
use iotdev::attacker::AttackAuth;
use iotdev::device::DeviceId;
use iotdev::proto::{ControlAction, MgmtCommand};
use iotnet::time::{SimDuration, SimTime};
use iotsec::chaos::ChaosConfig;
use iotsec::defense::Defense;
use iotsec::deployment::{Deployment, StepSpec};
use iotsec::metrics::Metrics;
use iotsec::scenario;
use iotsec::world::World;

/// Fault intensity for one sweep column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Intensity {
    /// Chaos layer attached but nothing scheduled. The safety gate
    /// requires zero violations here.
    Zero,
    /// One µmbox crash while the reflection campaign runs — enough to
    /// open a coverage hole, not enough to trip a breaker.
    Moderate,
    /// Repeated crashes inside the breaker window, a controller outage
    /// past every staleness budget, link flaps, and a delivery channel
    /// squeezed to force overload shedding.
    High,
}

impl Intensity {
    const ALL: [Intensity; 3] = [Intensity::Zero, Intensity::Moderate, Intensity::High];

    fn label(self) -> &'static str {
        match self {
            Intensity::Zero => "zero",
            Intensity::Moderate => "moderate",
            Intensity::High => "high",
        }
    }
}

/// One measured cell of the sweep.
struct Cell {
    intensity: Intensity,
    full: bool,
    metrics: Metrics,
}

impl Cell {
    fn mode(&self) -> &'static str {
        if self.full {
            "full"
        } else {
            "detect-only"
        }
    }

    fn detection_latency_ms(&self) -> f64 {
        let s = &self.metrics.safety;
        if s.detections == 0 {
            0.0
        } else {
            s.detection_latency_ns_total as f64 / s.detections as f64 / 1e6
        }
    }

    fn quarantine_secs(&self) -> f64 {
        self.metrics.safety.quarantine_time_ns as f64 / 1e9
    }
}

/// The scenario every cell shares: the full smart home (every Table 1
/// row plus clean devices), with a campaign paced for the fault
/// schedules below. Repeated DNS-reflection bursts bounce off the smart
/// plug — each burst that crosses a *down* fail-open chain is one
/// coverage-leak tick, so the burst train measures how long a coverage
/// hole stays open. The exploit sweep on the intact devices lands
/// inside the high-intensity controller outage (their detections queue
/// and reconcile as one burst at recovery — the overload that the
/// prioritized channel must shed), and the camera attack runs while the
/// camera's chain is down.
fn deployment(seed: u64) -> (Deployment, DeviceId, DeviceId) {
    let (mut d, v) = scenario::smart_home(Defense::iotsec(), seed);
    let cam = v[0];
    let plug = v[5];
    let mut steps = vec![StepSpec::Wait(SimDuration::from_millis(4500))];
    for _ in 0..5 {
        steps.push(StepSpec::DnsReflect { reflector: plug, queries: 10 });
        steps.push(StepSpec::Wait(SimDuration::from_secs(1)));
    }
    steps.extend([
        StepSpec::Login(v[1], "x", "y"),
        StepSpec::Mgmt(v[1], MgmtCommand::GetConfig),
        StepSpec::Control(v[4], ControlAction::SetPhase(2), AttackAuth::None),
        StepSpec::Cloud(v[6], ControlAction::TurnOff),
        StepSpec::DictionaryLogin(cam),
        StepSpec::Mgmt(cam, MgmtCommand::GetImage),
        StepSpec::DnsReflect { reflector: plug, queries: 40 },
    ]);
    d.campaign(steps);
    (d, cam, plug)
}

/// The fault schedule for one intensity. The high-intensity schedule is
/// built so every invariant has something to catch: a double crash on
/// the plug inside the breaker window, a camera crash, an outage past
/// both staleness budgets, and a long watchdog so detect-only rides the
/// coverage hole for the whole downtime.
fn chaos_for(intensity: Intensity, seed: u64, cam: DeviceId, plug: DeviceId) -> ChaosConfig {
    match intensity {
        Intensity::Zero => ChaosConfig::new().with_seed(seed),
        Intensity::Moderate => {
            let _ = cam;
            ChaosConfig::new()
                .with_seed(seed)
                .with_watchdog(SimDuration::from_secs(10))
                .crash(SimTime::from_secs(4), plug)
        }
        Intensity::High => {
            let mut chaos = ChaosConfig {
                link_flaps: 2,
                horizon: SimDuration::from_secs(30),
                flap_downtime: SimDuration::from_secs(1),
                ..ChaosConfig::default()
            }
            .with_seed(seed)
            .with_watchdog(SimDuration::from_secs(20))
            .crash(SimTime::from_secs(4), plug)
            .crash(SimTime::from_secs(6), plug)
            .crash(SimTime::from_secs(5), cam)
            .outage(SimTime::from_secs(8), SimDuration::from_secs(14));
            // Squeeze the delivery queue so the overload dimension is
            // real: the prioritized channel must shed something, and
            // the gate checks it never sheds quarantine-tier work.
            chaos.delivery.capacity = 1;
            chaos
        }
    }
}

/// The safety configuration for one arm. High-intensity cells also
/// tighten the admission backlog so whole-class recomputes are shed
/// under pressure — in *both* arms, so the violation counts stay
/// comparable.
fn safety_for(full: bool, intensity: Intensity) -> SafetyConfig {
    let mut cfg = if full { SafetyConfig::default() } else { SafetyConfig::detect_only() };
    if intensity == Intensity::High {
        cfg.admission_backlog = 1;
    }
    cfg
}

fn run_cell(intensity: Intensity, full: bool, seed: u64) -> Cell {
    let (mut d, cam, plug) = deployment(seed);
    d.chaos(chaos_for(intensity, seed, cam, plug));
    d.safety(safety_for(full, intensity));
    let mut w = World::new(&d);
    w.run(SimDuration::from_secs(40));
    crate::metrics::record_world(&w);
    Cell { intensity, full, metrics: w.report() }
}

/// E18's full result: the sweep table, the four gate verdicts, and the
/// headline detected/prevented split.
pub struct SafetyReport {
    /// The intensity × mode sweep, one row per cell.
    pub table: Table,
    /// Both zero-fault cells recorded zero violations.
    pub zero_fault_clean: bool,
    /// No cell shed a quarantine-criticality directive.
    pub no_critical_shed: bool,
    /// At high intensity, full < detect-only violations, strictly.
    pub strict_win: bool,
    /// The worst cell reproduced byte-identically on a second run.
    pub reproducible: bool,
    /// Violations the detect-only baseline recorded at high intensity.
    pub violations_baseline: u64,
    /// Violations the full stack recorded at high intensity.
    pub violations_guarded: u64,
    /// One-line human summary.
    pub summary: String,
    json: String,
}

impl SafetyReport {
    /// Violations the active machinery prevented at high intensity.
    pub fn prevented(&self) -> u64 {
        self.violations_baseline.saturating_sub(self.violations_guarded)
    }

    /// The CI gate: every safety property held.
    pub fn deterministic(&self) -> bool {
        self.zero_fault_clean && self.no_critical_shed && self.strict_win && self.reproducible
    }

    /// The `BENCH_E18.json` payload. Sim-time metrics only — no
    /// wall-clock — so the committed file reproduces byte-identically.
    pub fn render_json(&self) -> &str {
        &self.json
    }
}

fn render_json(seed: u64, cells: &[Cell], report_fields: &SafetyReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"zero_fault_clean\": {},\n", report_fields.zero_fault_clean));
    out.push_str(&format!("  \"no_critical_shed\": {},\n", report_fields.no_critical_shed));
    out.push_str(&format!("  \"strict_win\": {},\n", report_fields.strict_win));
    out.push_str(&format!("  \"reproducible\": {},\n", report_fields.reproducible));
    out.push_str(&format!("  \"violations_baseline\": {},\n", report_fields.violations_baseline));
    out.push_str(&format!("  \"violations_guarded\": {},\n", report_fields.violations_guarded));
    out.push_str(&format!("  \"violations_prevented\": {},\n", report_fields.prevented()));
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let m = &c.metrics;
        let s = &m.safety;
        out.push_str(&format!(
            "    {{\"intensity\": \"{}\", \"mode\": \"{}\", \"violations\": {}, \
             \"coverage\": {}, \"staleness\": {}, \"monotonicity\": {}, \"continuity\": {}, \
             \"breaker_trips\": {}, \"quarantines\": {}, \"quarantine_secs\": {:.1}, \
             \"delivery_shed\": {}, \"shed_critical\": {}, \"admission_shed\": {}, \
             \"detection_latency_ms\": {:.1}}}{}\n",
            c.intensity.label(),
            c.mode(),
            s.violations,
            s.coverage_violations,
            s.staleness_violations,
            s.monotonicity_violations,
            s.continuity_violations,
            m.breaker_trips,
            s.quarantines,
            c.quarantine_secs(),
            m.delivery.shed,
            m.delivery.shed_critical,
            m.admission_shed,
            c.detection_latency_ms(),
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// E18 — the safety sweep. Deterministic: driven entirely by sim-time
/// and the given seed.
pub fn safety(seed: u64) -> SafetyReport {
    let mut cells = Vec::new();
    for intensity in Intensity::ALL {
        for full in [false, true] {
            cells.push(run_cell(intensity, full, seed));
        }
    }

    let mut table = Table::new(
        "E18: fault intensity × overload — detect-only baseline vs full safety stack",
        &[
            "intensity",
            "mode",
            "violations",
            "coverage",
            "staleness",
            "breaker trips",
            "quarantines",
            "t-quarantined",
            "shed",
            "crit shed",
            "admission shed",
            "detect latency",
        ],
    );
    for c in &cells {
        let m = &c.metrics;
        let s = &m.safety;
        table.rowd(&[
            c.intensity.label().to_string(),
            c.mode().to_string(),
            s.violations.to_string(),
            s.coverage_violations.to_string(),
            s.staleness_violations.to_string(),
            m.breaker_trips.to_string(),
            s.quarantines.to_string(),
            format!("{:.1}s", c.quarantine_secs()),
            m.delivery.shed.to_string(),
            m.delivery.shed_critical.to_string(),
            m.admission_shed.to_string(),
            format!("{:.1}ms", c.detection_latency_ms()),
        ]);
    }

    let zero_fault_clean = cells
        .iter()
        .filter(|c| c.intensity == Intensity::Zero)
        .all(|c| c.metrics.safety.violations == 0 && c.metrics.safety.quarantines == 0);
    let no_critical_shed = cells.iter().all(|c| c.metrics.delivery.shed_critical == 0);
    let baseline = cells
        .iter()
        .find(|c| c.intensity == Intensity::High && !c.full)
        .expect("sweep always has the high/detect-only cell");
    let guarded = cells
        .iter()
        .find(|c| c.intensity == Intensity::High && c.full)
        .expect("sweep always has the high/full cell");
    let violations_baseline = baseline.metrics.safety.violations;
    let violations_guarded = guarded.metrics.safety.violations;
    let strict_win = violations_guarded < violations_baseline;
    let replay = run_cell(Intensity::High, true, seed);
    let reproducible = format!("{:?}", replay.metrics) == format!("{:?}", guarded.metrics);

    let mut report = SafetyReport {
        table,
        zero_fault_clean,
        no_critical_shed,
        strict_win,
        reproducible,
        violations_baseline,
        violations_guarded,
        summary: String::new(),
        json: String::new(),
    };
    report.summary = format!(
        "E18 summary: high-intensity violations {} (detect-only) vs {} (full stack), \
         {} prevented; zero-fault clean: {}, critical shed: {}, reproducible: {}",
        report.violations_baseline,
        report.violations_guarded,
        report.prevented(),
        report.zero_fault_clean,
        if report.no_critical_shed { "none" } else { "SOME" },
        report.reproducible,
    );
    report.json = render_json(seed, &cells, &report);
    report
}
