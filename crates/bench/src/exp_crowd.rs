//! Crowdsourcing experiments: E3 (signature quality under poisoning,
//! with the A3 ablation) and E4 (honeypot vs crowd coverage).

use crate::Table;
use iotdev::registry::Sku;
use iotlearn::repo::{RepoConfig, SignatureRepo};
use iotlearn::signature::{AttackSignature, Matcher, Severity};
use iotnet::time::SimTime;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Outcome of one crowd simulation.
#[derive(Debug, Clone, Copy)]
pub struct CrowdOutcome {
    /// Valid signatures standing at the end.
    pub published_valid: usize,
    /// Bad signatures that were ever published (the DoS events).
    pub published_bad: u64,
    /// Honest submissions that never made it.
    pub suppressed_valid: usize,
}

/// Simulate `rounds` of repository activity with a crowd of `n`
/// reporters, a malicious fraction, and a configuration.
pub fn run_crowd(
    n: usize,
    malicious_fraction: f64,
    rounds: u64,
    config: RepoConfig,
    seed: u64,
) -> CrowdOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut repo = SignatureRepo::new(config);
    let reporters: Vec<_> = (0..n).map(|_| repo.register()).collect();
    let n_mal = (n as f64 * malicious_fraction).round() as usize;
    let (malicious, honest) = reporters.split_at(n_mal);
    let sku = Sku::new("belkin", "wemo", "1.0");

    let mut honest_submissions = 0usize;
    for round in 0..rounds {
        // A third of malicious reporters submit garbage each round: half
        // match-alls (screenable), half plausible-looking junk.
        for (i, m) in malicious.iter().enumerate() {
            if !(round as usize + i).is_multiple_of(3) {
                continue;
            }
            let sig = if rng.gen_bool(0.5) {
                AttackSignature::new(sku.clone(), "fake", Matcher::MatchAll, Severity::High)
            } else {
                AttackSignature::new(
                    sku.clone(),
                    "fake",
                    Matcher::PayloadContains(vec![rng.gen::<u8>()]),
                    Severity::High,
                )
            };
            if let Some(sub) = repo.submit(*m, sig) {
                // Malicious reporters approve each other's garbage.
                for m2 in malicious {
                    repo.vote(*m2, sub, true);
                }
                for h in honest.iter().take(6) {
                    repo.vote(*h, sub, false);
                }
            }
        }
        // One honest observation per round.
        if let Some(h) = honest.get(round as usize % honest.len().max(1)) {
            let sig = AttackSignature::new(
                sku.clone(),
                "open-dns-resolver",
                Matcher::RecursiveDnsFromExternal,
                Severity::Medium,
            );
            if let Some(sub) = repo.submit(*h, sig) {
                honest_submissions += 1;
                for h2 in honest.iter().rev().take(6) {
                    repo.vote(*h2, sub, true);
                }
                for m in malicious.iter().take(6) {
                    repo.vote(*m, sub, false);
                }
            }
        }
        let published = repo.process(SimTime::from_secs(round * 60));
        for sig in published {
            repo.resolve(sig.id, sig.vuln_id == "open-dns-resolver");
        }
    }
    let published_valid =
        repo.published().iter().filter(|s| s.vuln_id == "open-dns-resolver").count();
    CrowdOutcome {
        published_valid,
        published_bad: repo.published_bad,
        suppressed_valid: honest_submissions.saturating_sub(published_valid),
    }
}

/// E3 — signature quality vs malicious fraction, with and without the
/// reputation/voting defenses (A3 ablation columns).
pub fn crowd(seed: u64) -> Table {
    let mut t = Table::new(
        "E3/A3: crowdsourced signature quality under poisoning",
        &[
            "malicious %",
            "full: valid pub / bad pub",
            "no-reputation: valid / bad",
            "no-screen: valid / bad",
        ],
    );
    let full = RepoConfig::default();
    let no_rep = RepoConfig { use_reputation: false, ..RepoConfig::default() };
    let no_screen = RepoConfig { screen_unselective: false, ..RepoConfig::default() };
    for frac in [0.0, 0.1, 0.2, 0.3, 0.4] {
        let a = run_crowd(100, frac, 60, full, seed);
        let b = run_crowd(100, frac, 60, no_rep, seed);
        let c = run_crowd(100, frac, 60, no_screen, seed);
        t.rowd(&[
            format!("{:.0}%", frac * 100.0),
            format!("{} / {}", a.published_valid, a.published_bad),
            format!("{} / {}", b.published_valid, b.published_bad),
            format!("{} / {}", c.published_valid, c.published_bad),
        ]);
    }
    t
}

/// E4 — honeypot coverage vs crowdsourcing.
///
/// `n_skus` SKUs with a Zipf-like deployment distribution; attacks land
/// on SKUs proportionally to popularity. A honeypot farm of size `H`
/// covers the `H` most popular SKUs; a crowd with participation `p`
/// covers a SKU if at least one of its deployments participates.
pub fn coverage(seed: u64) -> Table {
    let mut t = Table::new(
        "E4: attack-signature coverage — honeypot farm vs crowdsourcing",
        &["strategy", "cost parameter", "SKUs covered", "attack coverage"],
    );
    let n_skus = 1000usize;
    let mut rng = StdRng::seed_from_u64(seed);
    // Zipf-ish deployment counts.
    let deployments: Vec<u64> =
        (0..n_skus).map(|i| (100_000.0 / (i + 1) as f64).ceil() as u64).collect();
    let total: u64 = deployments.iter().sum();
    // Attack mass per SKU ∝ deployments.
    let attack_weight = |i: usize| deployments[i] as f64 / total as f64;

    for honeypots in [10usize, 100, 1000] {
        let covered = honeypots.min(n_skus);
        let mass: f64 = (0..covered).map(attack_weight).sum();
        t.rowd(&[
            "honeypots (top-K SKUs)".to_string(),
            format!("K = {honeypots}"),
            covered.to_string(),
            format!("{:.1}%", mass * 100.0),
        ]);
    }
    for participation in [0.001f64, 0.01, 0.05] {
        let mut covered = 0usize;
        let mut mass = 0.0;
        for (i, d) in deployments.iter().enumerate() {
            // P(at least one participant among d deployments).
            let p_cover = 1.0 - (1.0 - participation).powf(*d as f64);
            if rng.gen_bool(p_cover.clamp(0.0, 1.0)) {
                covered += 1;
                mass += attack_weight(i);
            }
        }
        t.rowd(&[
            "crowdsourcing".to_string(),
            format!("participation = {:.1}%", participation * 100.0),
            covered.to_string(),
            format!("{:.1}%", mass * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defended_repo_contains_moderate_poisoning() {
        // A few plausible-looking junk signatures slip through before
        // their submitters' reputations collapse — then get retracted.
        // The invariant is containment: bad publications stay a small
        // fraction of the valid stream (vs. hundreds without defenses).
        let out = run_crowd(100, 0.2, 40, RepoConfig::default(), 1);
        assert!(out.published_valid > 20, "{out:?}");
        assert!((out.published_bad as f64) < 0.25 * out.published_valid as f64, "{out:?}");
    }

    #[test]
    fn undefended_repo_leaks_garbage() {
        let cfg = RepoConfig {
            use_reputation: false,
            screen_unselective: false,
            quorum: 1.0,
            ..RepoConfig::default()
        };
        let out = run_crowd(100, 0.4, 40, cfg, 1);
        assert!(out.published_bad > 0, "{out:?}");
    }

    #[test]
    fn coverage_tables_render() {
        let t = coverage(5);
        assert_eq!(t.len(), 6);
    }
}
