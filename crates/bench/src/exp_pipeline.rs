//! Pipeline experiments for the §4.1 extensions: E13 (signature mining
//! from captures) and E14 (SKU fingerprinting accuracy).

use crate::Table;
use iotdev::proto::{ports, AppMessage, ControlAction, ControlAuth, TelemetryKind};
use iotdev::registry::{Sku, SkuRegistry};
use iotlearn::fingerprint::{Fingerprint, FingerprintDb};
use iotlearn::mine::mine_signatures;
use iotnet::addr::{Ipv4Addr, MacAddr};
use iotnet::packet::{Packet, TransportHeader};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

const WAN: Ipv4Addr = Ipv4Addr([100, 64, 0, 9]);

fn pkt(src: Ipv4Addr, dst_port: u16, msg: &AppMessage) -> Packet {
    Packet::new(
        MacAddr::from_index(9),
        MacAddr::from_index(1),
        src,
        Ipv4Addr::new(10, 0, 0, 5),
        TransportHeader::udp(4000, dst_port),
        msg.encode(),
    )
}

/// The canonical attack window for each Table 1 row, as wire packets.
fn attack_window(row: u8) -> Vec<Packet> {
    match row {
        1 => vec![
            pkt(
                WAN,
                ports::MGMT,
                &AppMessage::MgmtLogin { user: "admin".into(), pass: "admin".into() },
            ),
            pkt(
                WAN,
                ports::MGMT,
                &AppMessage::MgmtLogin { user: "admin".into(), pass: "1234".into() },
            ),
        ],
        2 | 3 => vec![pkt(
            WAN,
            ports::MGMT,
            &AppMessage::MgmtCommand { token: 0, command: iotdev::proto::MgmtCommand::GetConfig },
        )],
        4 => vec![pkt(
            WAN,
            ports::CONTROL,
            &AppMessage::Control {
                action: ControlAction::TurnOff,
                auth: ControlAuth::Key(0x5eed_c0de_5eed_c0de),
            },
        )],
        5 => vec![pkt(
            WAN,
            ports::CONTROL,
            &AppMessage::Control { action: ControlAction::SetPhase(2), auth: ControlAuth::None },
        )],
        6 => vec![pkt(
            WAN,
            ports::DNS,
            &AppMessage::DnsQuery { name: "amp.example".into(), recursion: true },
        )],
        7 => vec![pkt(
            WAN,
            ports::CLOUD,
            &AppMessage::CloudCommand { action: ControlAction::TurnOn },
        )],
        _ => unreachable!(),
    }
}

/// E13 — signature mining: for every Table 1 exploit class, mine a
/// signature from the canonical attack capture and verify it (a)
/// matches its own evidence and (b) stays selective.
pub fn mining() -> Table {
    let mut t = Table::new(
        "E13: signature mining from captured attack windows",
        &["row", "mined vuln id", "matcher", "matches evidence", "selective"],
    );
    let registry = SkuRegistry::table1();
    for row in 1..=7u8 {
        let sku = registry.by_row(row).unwrap().sku.clone();
        let window = attack_window(row);
        let mined = mine_signatures(&window, &sku);
        if mined.is_empty() {
            t.rowd(&[row.to_string(), "-".into(), "-".into(), "-".into(), "-".into()]);
            continue;
        }
        for sig in &mined {
            let matches = window.iter().any(|p| sig.matcher.matches(p));
            t.rowd(&[
                row.to_string(),
                sig.vuln_id.clone(),
                format!("{:?}", sig.matcher).chars().take(44).collect::<String>(),
                matches.to_string(),
                sig.matcher.is_selective().to_string(),
            ]);
        }
    }
    t
}

/// Perturb a reference fingerprint: drop/add a port or telemetry kind
/// with the given probability (observation noise).
fn perturb(reference: &Fingerprint, noise: f64, rng: &mut StdRng) -> Fingerprint {
    let mut f = reference.clone();
    if rng.gen_bool(noise) {
        // Miss one served port.
        if let Some(&p) = f.served_ports.iter().next() {
            f.served_ports.remove(&p);
        }
    }
    if rng.gen_bool(noise) {
        // Observe a spurious port (some unrelated flow).
        f.served_ports.insert(40000 + rng.gen_range(0..100));
    }
    if rng.gen_bool(noise / 2.0) {
        f.telemetry.insert(TelemetryKind::Status);
    }
    f
}

/// E14 — fingerprinting accuracy: identify each Table 1 SKU from noisy
/// observations of its canonical fingerprint.
pub fn fingerprinting(seed: u64) -> Table {
    let mut t = Table::new(
        "E14: SKU fingerprinting accuracy under observation noise",
        &["noise", "trials", "correct SKU", "wrong SKU", "unidentified"],
    );
    let db = FingerprintDb::with_table1();
    let registry = SkuRegistry::table1();
    // References: re-derive from the db itself through identify on the
    // clean fingerprint (sanity) and then under noise.
    let references: Vec<(Sku, Fingerprint)> = (1..=7u8)
        .map(|row| {
            let sku = registry.by_row(row).unwrap().sku.clone();
            // Clean observation = the db's own entry; reconstruct by
            // probing identify at zero noise.
            (sku, db_reference(&db, row))
        })
        .collect();
    for noise in [0.0, 0.1, 0.2, 0.4] {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut correct, mut wrong, mut unknown) = (0u32, 0u32, 0u32);
        const TRIALS: u32 = 100;
        for trial in 0..TRIALS {
            let (sku, reference) = &references[(trial as usize) % references.len()];
            let observed = perturb(reference, noise, &mut rng);
            match db.identify(&observed, 0.6) {
                Some(id) if id.sku == *sku => correct += 1,
                Some(_) => wrong += 1,
                None => unknown += 1,
            }
        }
        t.rowd(&[
            format!("{:.0}%", noise * 100.0),
            TRIALS.to_string(),
            correct.to_string(),
            wrong.to_string(),
            unknown.to_string(),
        ]);
    }
    t
}

/// Rebuild the canonical fingerprint for a row (mirrors
/// `FingerprintDb::with_table1`, used as the noise-free observation).
fn db_reference(_db: &FingerprintDb, row: u8) -> Fingerprint {
    let mut f = Fingerprint::default();
    match row {
        1 => {
            f.serve(ports::MGMT).serve(ports::CONTROL).emit(TelemetryKind::Motion);
            f.period_s = 5;
        }
        2 => {
            f.serve(ports::MGMT).serve(ports::CONTROL).emit(TelemetryKind::Status);
            f.period_s = 5;
        }
        3 => {
            f.serve(ports::MGMT).emit(TelemetryKind::Status);
            f.period_s = 5;
        }
        4 => {
            f.serve(ports::MGMT).serve(ports::CONTROL).emit(TelemetryKind::Motion);
            f.period_s = 10;
        }
        5 => {
            f.serve(ports::CONTROL).emit(TelemetryKind::Status);
            f.period_s = 5;
        }
        6 => {
            f.serve(ports::MGMT).serve(ports::CONTROL).serve(ports::DNS).emit(TelemetryKind::Power);
            f.period_s = 5;
        }
        7 => {
            f.serve(ports::MGMT)
                .serve(ports::CONTROL)
                .serve(ports::CLOUD)
                .emit(TelemetryKind::Power);
            f.period_s = 5;
        }
        _ => unreachable!(),
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mining_covers_all_rows() {
        let t = mining();
        assert!(t.len() >= 7);
        let s = t.render();
        assert!(!s.contains("false"), "every mined signature must match and be selective:\n{s}");
    }

    #[test]
    fn fingerprinting_is_perfect_without_noise() {
        let s = fingerprinting(3).render();
        let first_data_row = s.lines().find(|l| l.starts_with("| 0%")).unwrap();
        assert!(first_data_row.contains("| 100 "), "{first_data_row}");
    }
}
