//! The parallel sweep engine: a work-stealing runner for independent
//! world instances (the E16 tentpole).
//!
//! [`iotsec::world::World`] is deliberately single-threaded (`Rc` and
//! `RefCell` throughout), so the unit of parallelism is one *whole
//! world*: each job is a `(scenario, seed, population)` triple, built
//! and run entirely inside whichever worker thread claims it. Jobs are
//! distributed through the `crossbeam::deque` work-stealing triple
//! (global [`Injector`], per-worker [`Worker`] deques, cross-worker
//! [`Stealer`]s) and every result lands in a slot indexed by its job id,
//! so the merged output is a pure function of the job list — `--threads
//! 1` and `--threads N` produce byte-identical sweeps.

use crate::exp_world::exploit_landed;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use iotctl::concurrent::SweepLedger;
use iotnet::engine::QueueKind;
use iotnet::time::SimDuration;
use iotsec::defense::Defense;
use iotsec::scenario;
use iotsec::world::World;
use std::sync::Mutex;
use trace::{TraceConfig, Tracer};

/// Which canned scenario a sweep job instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepScenario {
    /// [`scenario::scaled_home`] with no defense: the attacker sweep
    /// lands everywhere (upper bound on attack traffic).
    HomeUndefended,
    /// [`scenario::scaled_home`] under full IoTSec: every exploit is
    /// absorbed by the enforcement path (upper bound on µmbox work).
    HomeIoTSec,
}

impl SweepScenario {
    /// Stable label (used in tables, digests and JSON).
    pub fn label(&self) -> &'static str {
        match self {
            SweepScenario::HomeUndefended => "home-undefended",
            SweepScenario::HomeIoTSec => "home-iotsec",
        }
    }

    fn defense(&self) -> Defense {
        match self {
            SweepScenario::HomeUndefended => Defense::None,
            SweepScenario::HomeIoTSec => Defense::iotsec(),
        }
    }
}

/// One independent world instance in a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorldJob {
    /// Scenario to instantiate.
    pub scenario: SweepScenario,
    /// Deployment seed.
    pub seed: u64,
    /// Extra clean background devices (the population axis).
    pub population: u32,
}

/// The deterministic outcome of one world job, plus the perf counters
/// the engine work of this PR is measured by.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldOutcome {
    /// The job that produced this outcome.
    pub job: WorldJob,
    /// Devices compromised.
    pub compromised: usize,
    /// Devices with data exposure.
    pub privacy_leaked: usize,
    /// Reflection bytes at the victim.
    pub ddos_bytes: u64,
    /// Campaign steps that succeeded.
    pub steps_succeeded: usize,
    /// µmbox drops + intercepts.
    pub umbox_blocks: u64,
    /// Whether the Table-1 row-1 exploit class landed (sanity anchor).
    pub camera_leaked: bool,
    /// Simulation events the engine processed (timer-wheel pops).
    pub events_processed: u64,
    /// Flow-decision-cache lookups.
    pub cache_lookups: u64,
    /// Flow-decision-cache hits.
    pub cache_hits: u64,
}

impl WorldOutcome {
    /// Canonical one-line digest. The determinism acceptance check
    /// compares these byte-for-byte between serial and parallel runs;
    /// every field in here — including the engine counters — must be a
    /// pure function of the job.
    pub fn digest(&self) -> String {
        format!(
            "{}/s{}/p{}: c={} l={} d={} ok={} ub={} cam={} ev={} cl={} ch={}",
            self.job.scenario.label(),
            self.job.seed,
            self.job.population,
            self.compromised,
            self.privacy_leaked,
            self.ddos_bytes,
            self.steps_succeeded,
            self.umbox_blocks,
            self.camera_leaked,
            self.events_processed,
            self.cache_lookups,
            self.cache_hits,
        )
    }
}

/// Build and run one world job to completion (entirely on the calling
/// thread — `World` never crosses a thread boundary).
pub fn run_world_job(job: &WorldJob) -> WorldOutcome {
    run_world_job_with(job, QueueKind::default(), true, Tracer::disabled())
}

/// Run one world job on an explicit engine configuration: the event-queue
/// backend plus the flow-table lookup engine (packed SoA probing vs the
/// legacy field-by-field scan). Both configurations must produce
/// identical outcomes — this is the hook the E21 benchmark's legacy arm
/// uses to measure the pre-arena engine against the packed default.
pub fn run_world_job_engine(job: &WorldJob, queue: QueueKind, packed_lookup: bool) -> WorldOutcome {
    run_world_job_with(job, queue, packed_lookup, Tracer::disabled())
}

/// Run one world job with trace emission, returning the outcome and the
/// canonical JSONL trace. `Tracer` is deliberately `!Send`, so each
/// sweep worker constructs its own from the (`Copy`) `config` — the
/// trace string, unlike the tracer, crosses threads fine.
pub fn run_world_job_traced(
    job: &WorldJob,
    queue: QueueKind,
    config: TraceConfig,
) -> (WorldOutcome, String) {
    let tracer = Tracer::new(config);
    let outcome = run_world_job_with(job, queue, true, tracer.clone());
    (outcome, tracer.to_jsonl())
}

fn run_world_job_with(
    job: &WorldJob,
    queue: QueueKind,
    packed_lookup: bool,
    tracer: Tracer,
) -> WorldOutcome {
    let (mut d, _) = scenario::scaled_home(job.scenario.defense(), job.seed, job.population);
    d.queue = queue;
    let mut w = World::new_traced(&d, tracer);
    w.net.set_packed_lookup(packed_lookup);
    w.env.occupied = true;
    w.run_until_attack_done(SimDuration::from_secs(300));
    let m = w.report();
    let (cache_lookups, cache_hits) = w.net.cache_stats();
    WorldOutcome {
        job: *job,
        compromised: m.compromised.len(),
        privacy_leaked: m.privacy_leaked.len(),
        ddos_bytes: m.ddos_bytes_at_victim,
        steps_succeeded: m.steps_succeeded(),
        umbox_blocks: m.umbox_drops + m.umbox_intercepts,
        camera_leaked: exploit_landed(1, &m),
        events_processed: w.net.events_processed(),
        cache_lookups,
        cache_hits,
    }
}

/// Pop the next task: local deque first, then the global injector, then
/// steal from a sibling. Returns `None` only when every source is dry —
/// correct as a termination test here because the job list is pushed in
/// full before any worker starts and jobs never spawn jobs.
fn find_task<T>(
    local: &Worker<T>,
    injector: &Injector<T>,
    stealers: &[Stealer<T>],
    me: usize,
) -> Option<T> {
    if let Some(t) = local.pop() {
        return Some(t);
    }
    loop {
        match injector.steal() {
            Steal::Success(t) => return Some(t),
            Steal::Retry => continue,
            Steal::Empty => break,
        }
    }
    for (i, s) in stealers.iter().enumerate() {
        if i == me {
            continue;
        }
        loop {
            match s.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
    }
    None
}

/// Run `run(index, &job)` over every job across `threads` workers and
/// return the results in job order. `threads <= 1` is a plain serial
/// loop (the reference the parallel path must match byte-for-byte);
/// otherwise each worker loops [`find_task`] and writes its result into
/// the slot for that job index, which *is* the canonical-order merge.
pub fn run_sweep<J, R, F>(jobs: Vec<J>, threads: usize, run: F) -> Vec<R>
where
    J: Send + Sync,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.iter().enumerate().map(|(i, j)| run(i, j)).collect();
    }
    let injector: Injector<(usize, &J)> = Injector::new();
    for (i, j) in jobs.iter().enumerate() {
        injector.push((i, j));
    }
    let slots: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let workers: Vec<Worker<(usize, &J)>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<(usize, &J)>> = workers.iter().map(|w| w.stealer()).collect();
    crossbeam::scope(|s| {
        for (me, worker) in workers.into_iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let slots = &slots;
            let run = &run;
            s.spawn(move |_| {
                while let Some((i, job)) = find_task(&worker, injector, stealers, me) {
                    let result = run(i, job);
                    *slots[i].lock().unwrap() = Some(result);
                }
            });
        }
    })
    .unwrap();
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every job produces exactly one result"))
        .collect()
}

/// The world-level sweep: run every [`WorldJob`] across `threads`
/// workers, bumping `ledger` as each instance completes, and return
/// the outcomes in job order.
pub fn sweep_worlds(jobs: &[WorldJob], threads: usize, ledger: &SweepLedger) -> Vec<WorldOutcome> {
    run_sweep(jobs.to_vec(), threads, |_, job| {
        let out = run_world_job(job);
        ledger.record(out.events_processed, out.cache_lookups, out.cache_hits);
        out
    })
}

/// The traced sweep: every job runs with its own tracer and the results
/// come back in job order, so the merged `(outcome, trace)` list is a
/// pure function of the job list — `--threads 1` and `--threads N` must
/// produce byte-identical traces (the differential harness pins this).
pub fn sweep_worlds_traced(
    jobs: &[WorldJob],
    threads: usize,
    queue: QueueKind,
    config: TraceConfig,
) -> Vec<(WorldOutcome, String)> {
    run_sweep(jobs.to_vec(), threads, move |_, job| run_world_job_traced(job, queue, config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_sweep_preserves_job_order() {
        let jobs: Vec<u64> = (0..64).collect();
        let serial = run_sweep(jobs.clone(), 1, |i, j| (i, j * 3));
        let parallel = run_sweep(jobs, 4, |i, j| (i, j * 3));
        assert_eq!(serial, parallel);
        assert_eq!(parallel[17], (17, 51));
    }

    #[test]
    fn world_sweep_is_thread_count_invariant() {
        let jobs = [
            WorldJob { scenario: SweepScenario::HomeIoTSec, seed: 7, population: 0 },
            WorldJob { scenario: SweepScenario::HomeUndefended, seed: 7, population: 4 },
        ];
        let ledger1 = SweepLedger::new();
        let ledger2 = SweepLedger::new();
        let serial = sweep_worlds(&jobs, 1, &ledger1);
        let parallel = sweep_worlds(&jobs, 2, &ledger2);
        assert_eq!(serial, parallel);
        assert_eq!(ledger1.done(), 2);
        assert_eq!(ledger1.events(), ledger2.events());
        assert!(ledger1.events() > 0, "worlds must actually process events");
    }
}
