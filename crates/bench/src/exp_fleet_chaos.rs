//! E25 — fault-tolerant fleet propagation, measured.
//!
//! The question E20 left open: how fast does the hierarchy *recover*?
//! This experiment sweeps one fault axis at a time — flush **loss**,
//! flush **duplication**, neighborhood **partition** — across four
//! per-mille intensities, each under a horizon-bounded schedule
//! ([`HORIZON`] rounds of weather, then calm) with the full
//! [`iotsec_fleet::RecoveryPolicy::standard`] stack. Each cell runs
//! [`REPS`] replicate fleets of the real
//! [`iotsec_fleet::FleetScenario`] (distinct chaos seeds, same fleet)
//! round-by-round until [`iotsec_fleet::Fleet::converged`] (every
//! discovery absorbed, every retry drained, every home at the region
//! epoch) and records every replicate's convergence round — the
//! headline numbers: intensity in, rounds to fleet-wide protection
//! out. Replicates matter because the loss and dup axes roll on
//! *non-empty flushes*, of which a single-discovery fleet has exactly
//! one per schedule — one seed is a coin flip, [`REPS`] seeds are a
//! measurement.
//!
//! Three gates make this a test, not just a chart:
//!
//! * **recovered** — every cell must converge within [`MAX_ROUNDS`];
//!   an unrecovered cell fails the run (non-zero exit).
//! * **checked** — every cell's trace must pass
//!   [`iotsec_fleet::check_fleet_trace`] with zero violations.
//! * **deterministic** — every cell is run twice; the rerun must
//!   reproduce the convergence round, digest and fault/recovery
//!   counters exactly.
//!
//! Convergence rounds, digests and counters are byte-stable in
//! `BENCH_E25.json`; wall-clock lands only on `wall_ms`-marked volatile
//! lines, and the CI `fleet-chaos-gate` job diffs the file with
//! `git diff -I'wall_ms'`.

use crate::Table;
use iotsec_fleet::{
    check_fleet_trace, Fleet, FleetChaos, FleetConfig, FleetScenario, FleetTraceSpec,
};
use std::time::Instant;
use trace::{TraceConfig, Tracer};

/// The repo-wide experiment seed.
pub const SEED: u64 = 20151116;
/// Homes in the fleet (20 neighborhoods of 20).
pub const HOMES: u32 = 400;
/// Homes per neighborhood aggregator.
pub const NEIGHBORHOOD: u32 = 20;
/// Homes per work-stealing chunk.
pub const CHUNK: u32 = 64;
/// Fault-injection window: weather rages in rounds `0..HORIZON`, then
/// the schedule goes calm and recovery must finish the job.
pub const HORIZON: u32 = 6;
/// Convergence deadline per replicate; a replicate still unconverged
/// here has failed to recover and fails the experiment.
pub const MAX_ROUNDS: u32 = 40;
/// Replicate fleets per cell (distinct chaos seeds over one fleet).
pub const REPS: u64 = 6;
/// Per-mille intensities swept on every axis (0 = the clean baseline).
pub const INTENSITIES: &[u32] = &[0, 250, 500, 750];
/// Checker settling grace (mirrors the fleet test suite).
pub const GRACE: u32 = 2;

/// The swept fault axes: label plus a schedule constructor.
const AXES: &[&str] = &["loss", "dup", "partition"];

/// One measured cell: a fault axis at an intensity, over [`REPS`]
/// replicate chaos seeds.
pub struct ChaosCell {
    /// Axis label (`loss`, `dup`, `partition`).
    pub axis: &'static str,
    /// Per-mille intensity.
    pub pm: u32,
    /// Per-replicate convergence rounds (`MAX_ROUNDS` + 1 = never).
    pub rounds: Vec<u32>,
    /// Worst replicate's convergence round.
    pub worst_rounds: u32,
    /// Every replicate converged within the deadline.
    pub recovered: bool,
    /// Fnv64 fold of the replicates' chained fleet digests.
    pub digest: u64,
    /// Faults injected across replicates.
    pub faults: u64,
    /// Recoveries completed across replicates.
    pub recoveries: u64,
    /// Rounds spent in declared degraded mode across replicates.
    pub degraded_rounds: u64,
    /// `check_fleet_trace` violation count across replicates (must be 0).
    pub violations: usize,
    /// The rerun reproduced every replicate's rounds, trace and report.
    pub identical: bool,
    /// Cell wall time (volatile; never gated on).
    pub wall_ms: u128,
}

/// The E25 report: the printed table plus everything the JSON needs.
pub struct FleetChaosReport {
    /// Rendered cell table.
    pub table: Table,
    /// Homes per replicate fleet ([`HOMES`] unless `--homes` overrode it).
    pub homes: u32,
    /// Convergence deadline ([`MAX_ROUNDS`] unless `--rounds` overrode it).
    pub max_rounds: u32,
    /// Every cell, axis-major, intensity ascending.
    pub cells: Vec<ChaosCell>,
    /// Every cell converged within the deadline.
    pub recovered: bool,
    /// Every cell deterministic, recovered, and checker-clean.
    pub deterministic: bool,
    /// One-line human summary.
    pub summary: String,
}

/// The schedule for `axis` at `pm` under replicate seed `rep` — exactly
/// one fault dial turned, the rest calm, weather confined to
/// `0..HORIZON`.
fn schedule(axis: &str, pm: u32, rep: u64) -> FleetChaos {
    let calm = FleetChaos {
        drop_pm: 0,
        dup_pm: 0,
        reorder_pm: 0,
        crash_pm: 0,
        partition_pm: 0,
        partition_rounds: 2,
        delay_pm: 0,
        ..FleetChaos::new(SEED ^ 0xE25 ^ rep.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
    .with_horizon(HORIZON);
    match axis {
        "loss" => FleetChaos { drop_pm: pm, ..calm },
        "dup" => FleetChaos { dup_pm: pm, ..calm },
        "partition" => FleetChaos { partition_pm: pm, ..calm },
        _ => unreachable!("unknown axis {axis}"),
    }
}

/// Run one replicate to convergence (or the deadline).
fn run_rep(
    axis: &str,
    pm: u32,
    rep: u64,
    homes: u32,
    max_rounds: u32,
) -> (iotsec_fleet::FleetReport, Vec<(u64, trace::event::TraceEvent)>, u32) {
    let cfg =
        FleetConfig { homes, neighborhood: NEIGHBORHOOD, chunk: CHUNK, threads: 1, seed: SEED };
    let tracer = Tracer::new(TraceConfig::control_only());
    let mut fleet =
        Fleet::with_chaos(FleetScenario::new(homes), cfg, schedule(axis, pm, rep), tracer.clone());
    let mut rounds = max_rounds + 1;
    for r in 1..=max_rounds {
        fleet.run(1);
        if fleet.converged() {
            rounds = r;
            break;
        }
    }
    (fleet.report(), tracer.events(), rounds)
}

/// Run one cell's replicates, judge every trace, and rerun the whole
/// cell to pin determinism.
fn run_cell(axis: &'static str, pm: u32, homes: u32, max_rounds: u32) -> ChaosCell {
    let start = Instant::now();
    let mut cell = ChaosCell {
        axis,
        pm,
        rounds: Vec::new(),
        worst_rounds: 0,
        recovered: true,
        digest: 0,
        faults: 0,
        recoveries: 0,
        degraded_rounds: 0,
        violations: 0,
        identical: true,
        wall_ms: 0,
    };
    let mut digest = trace::digest::Fnv64::new();
    for rep in 0..REPS {
        let (report, events, rounds) = run_rep(axis, pm, rep, homes, max_rounds);
        let spec = FleetTraceSpec {
            homes,
            rounds: rounds.min(max_rounds),
            staleness_budget: schedule(axis, pm, rep).policy.staleness_budget,
            grace: GRACE,
        };
        cell.violations += check_fleet_trace(&events, &spec).len();
        cell.recovered &= rounds <= max_rounds;
        cell.rounds.push(rounds);
        cell.worst_rounds = cell.worst_rounds.max(rounds);
        cell.faults += report.faults;
        cell.recoveries += report.recoveries;
        cell.degraded_rounds += report.degraded_rounds;
        digest.write_u64(report.digest);

        let (rerun, rerun_events, rerun_rounds) = run_rep(axis, pm, rep, homes, max_rounds);
        cell.identical &= rerun == report && rerun_events == events && rerun_rounds == rounds;
    }
    cell.digest = digest.finish();
    cell.wall_ms = start.elapsed().as_millis();
    cell
}

impl FleetChaosReport {
    /// `BENCH_E25.json`: a stable section (per-cell convergence rounds,
    /// digests, fault/recovery counters, gate verdicts) plus a
    /// `timing_wall_ms` section where **every** volatile line contains
    /// `wall_ms`, so CI can assert byte stability with
    /// `git diff -I'wall_ms'`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"e25\",\n");
        out.push_str(&format!("  \"seed\": {SEED},\n"));
        out.push_str(&format!(
            "  \"fleet\": {{\"homes\": {}, \"neighborhood\": {NEIGHBORHOOD}, \
             \"chunk\": {CHUNK}, \"horizon\": {HORIZON}, \"max_rounds\": {}, \
             \"replicates\": {REPS}}},\n",
            self.homes, self.max_rounds,
        ));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let rounds: Vec<String> = c.rounds.iter().map(|r| r.to_string()).collect();
            out.push_str(&format!(
                "    {{\"axis\": \"{}\", \"pm\": {}, \"rounds\": [{}], \
                 \"worst_rounds\": {}, \"recovered\": {}, \"digest\": \"{:016x}\", \
                 \"faults\": {}, \"recoveries\": {}, \"degraded_rounds\": {}, \
                 \"violations\": {}, \"identical\": {}}}{}\n",
                c.axis,
                c.pm,
                rounds.join(", "),
                c.worst_rounds,
                c.recovered,
                c.digest,
                c.faults,
                c.recoveries,
                c.degraded_rounds,
                c.violations,
                c.identical,
                if i + 1 == self.cells.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"recovered\": {},\n", self.recovered));
        out.push_str(&format!("  \"deterministic\": {},\n", self.deterministic));
        out.push_str("  \"timing_wall_ms\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"cell\": \"{}-{}\", \"wall_ms\": {}}}{}\n",
                c.axis,
                c.pm,
                c.wall_ms,
                if i + 1 == self.cells.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// E25 — sweep the axes and build the report. `homes`/`rounds` are the
/// CLI overrides (`--homes N` scales each replicate fleet, `--rounds N`
/// moves the convergence deadline); `None` keeps the committed
/// defaults, which is what the byte-stability gate compares against.
pub fn fleet_chaos(homes: Option<u32>, rounds: Option<u32>) -> FleetChaosReport {
    let homes = homes.unwrap_or(HOMES);
    let max_rounds = rounds.unwrap_or(MAX_ROUNDS);
    let mut cells = Vec::new();
    for &axis in AXES {
        for &pm in INTENSITIES {
            cells.push(run_cell(axis, pm, homes, max_rounds));
        }
    }

    let mut table = Table::new(
        "E25: fault-tolerant fleet propagation — convergence rounds vs fault intensity",
        &[
            "axis",
            "pm",
            "rounds",
            "recovered",
            "faults",
            "recoveries",
            "degraded",
            "violations",
            "identical",
            "wall ms",
        ],
    );
    for c in &cells {
        table.rowd(&[
            c.axis.to_string(),
            c.pm.to_string(),
            format!("{:?}", c.rounds),
            c.recovered.to_string(),
            c.faults.to_string(),
            c.recoveries.to_string(),
            c.degraded_rounds.to_string(),
            c.violations.to_string(),
            c.identical.to_string(),
            c.wall_ms.to_string(),
        ]);
    }

    let recovered = cells.iter().all(|c| c.recovered);
    let deterministic = recovered && cells.iter().all(|c| c.identical && c.violations == 0);
    let worst = cells.iter().map(|c| c.worst_rounds).max().unwrap_or(0);
    let faults: u64 = cells.iter().map(|c| c.faults).sum();
    let recoveries: u64 = cells.iter().map(|c| c.recoveries).sum();
    let summary = format!(
        "E25 summary: {} homes x {} cells ({} axes x {:?} pm, {REPS} replicates each), \
         {} faults -> {} recoveries, worst convergence {} rounds (horizon {HORIZON}), \
         all recovered: {}, checker-clean and rerun-stable: {}",
        homes,
        cells.len(),
        AXES.len(),
        INTENSITIES,
        faults,
        recoveries,
        worst,
        recovered,
        deterministic,
    );
    FleetChaosReport { table, homes, max_rounds, cells, recovered, deterministic, summary }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_intensity_cells_converge_immediately_and_cleanly() {
        // One replicate is enough for the calm case: every replicate of
        // a 0-pm cell is the same clean fleet.
        let (report, events, rounds) = run_rep("loss", 0, 0, HOMES, MAX_ROUNDS);
        assert_eq!(rounds, 1, "calm fleet converges at round 1");
        assert_eq!(report.faults, 0);
        let spec = FleetTraceSpec {
            homes: HOMES,
            rounds,
            staleness_budget: schedule("loss", 0, 0).policy.staleness_budget,
            grace: GRACE,
        };
        assert!(check_fleet_trace(&events, &spec).is_empty());
    }

    #[test]
    fn a_stormy_cell_recovers_after_the_horizon() {
        let cell = run_cell("loss", 750, HOMES, MAX_ROUNDS);
        assert!(cell.recovered, "loss-750 must converge within the deadline");
        assert!(cell.faults > 0, "a 750-pm cell with no faults across {REPS} replicates");
        assert_eq!(cell.violations, 0);
        assert!(cell.identical);
        assert!(
            cell.worst_rounds <= HORIZON + 8,
            "recovery should finish within a backoff-bounded tail, got {}",
            cell.worst_rounds
        );
    }

    #[test]
    fn json_volatile_lines_all_carry_wall_ms() {
        let cells = vec![
            ChaosCell {
                axis: "loss",
                pm: 0,
                rounds: vec![1, 1],
                worst_rounds: 1,
                recovered: true,
                digest: 0xabc,
                faults: 0,
                recoveries: 0,
                degraded_rounds: 0,
                violations: 0,
                identical: true,
                wall_ms: 7,
            },
            ChaosCell {
                axis: "dup",
                pm: 500,
                rounds: vec![3, 2],
                worst_rounds: 3,
                recovered: true,
                digest: 0xdef,
                faults: 4,
                recoveries: 4,
                degraded_rounds: 0,
                violations: 0,
                identical: true,
                wall_ms: 9,
            },
        ];
        let report = FleetChaosReport {
            table: Table::new("t", &["a"]),
            homes: HOMES,
            max_rounds: MAX_ROUNDS,
            cells,
            recovered: true,
            deterministic: true,
            summary: String::new(),
        };
        let json = report.render_json();
        let mut in_timing = false;
        for line in json.lines() {
            if line.contains("\"timing_wall_ms\"") {
                in_timing = true;
            }
            if in_timing && line.contains('{') {
                assert!(line.contains("wall_ms"), "volatile line lacks marker: {line}");
            }
        }
        assert!(json.contains("\"experiment\": \"e25\""));
        assert!(json.contains("\"deterministic\": true"));
        assert!(json.ends_with("}\n"));
    }
}
