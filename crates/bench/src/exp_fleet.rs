//! E20 — the fleet-scale sharded controller, measured.
//!
//! One experiment, one determinism gate: a fleet of [`FLEET_HOMES`]
//! IoTSec homes (the [`iotsec_fleet::FleetScenario`] zero-day camera)
//! runs [`ROUNDS`] rounds on four legs — the serial reference, a serial
//! *rerun* (run-to-run stability), and the work-stealing parallel path
//! at each count in [`PAR_THREADS`]. Every leg starts from a cold fleet
//! (fresh memo, fresh region) and must reproduce the reference's chained
//! fleet digest byte-for-byte; any divergence fails the run.
//!
//! The round structure exercises the whole E20 story at 10⁴ scale:
//! round 0 breaches every home and the sentinel publishes, the barrier
//! batches one install per neighborhood (10⁴ directives through 10²
//! aggregators from **one** discovery), round 1 runs fully defended on
//! the shared interned snapshot, and round 2 is served entirely from
//! the `(home, epoch)` memo without building a single world.
//!
//! Wall-clock derived numbers (homes/sec, directives/sec, bytes/home)
//! land only on `wall_ms`-marked volatile lines of `BENCH_E20.json`;
//! digests, counters and propagation facts are byte-stable and the CI
//! `fleet-gate` job diffs them with `git diff -I'wall_ms'`.

use crate::Table;
use iotsec_fleet::{Fleet, FleetConfig, FleetReport, FleetScenario};
use std::time::Instant;

/// The repo-wide experiment seed.
pub const SEED: u64 = 20151116;

/// Thread counts for the parallel legs; fixed (not CLI-driven) so the
/// stable section of `BENCH_E20.json` is byte-identical across hosts.
pub const PAR_THREADS: &[usize] = &[2, 4];

/// Homes in the fleet (the acceptance floor is 10⁴).
pub const FLEET_HOMES: u32 = 10_000;
/// Homes per neighborhood aggregator (10² aggregators).
pub const NEIGHBORHOOD: u32 = 100;
/// Homes per work-stealing chunk.
pub const CHUNK: u32 = 64;
/// Fleet rounds: breach → defended → memoized.
pub const ROUNDS: u32 = 3;

/// One fleet leg: an execution mode at a thread count.
pub struct FleetLeg {
    /// Stable label (`fleet-serial`, `fleet-serial-rerun`, `fleet-par2`…).
    pub label: String,
    /// Worker threads (1 = serial).
    pub threads: usize,
    /// Whether the chained fleet digest matched the serial reference.
    pub identical: bool,
    /// Leg wall time (volatile; never gated on).
    pub wall_ms: u128,
}

/// The E20 report: the printed table plus everything the JSON needs.
pub struct FleetBenchReport {
    /// Rendered leg table.
    pub table: Table,
    /// The serial reference run's cumulative report.
    pub reference: FleetReport,
    /// Every leg, reference first.
    pub legs: Vec<FleetLeg>,
    /// Heap bytes allocated during the reference leg (volatile — the
    /// absolute value tracks allocator internals, not the contract).
    pub reference_bytes: u64,
    /// Every leg reproduced the reference digest.
    pub deterministic: bool,
    /// One-line human summary.
    pub summary: String,
}

impl FleetBenchReport {
    /// Home-rounds served per second for a leg (volatile section only).
    fn homes_per_sec(&self, wall_ms: u128) -> f64 {
        let served = u64::from(self.reference.homes) * u64::from(self.reference.rounds);
        served as f64 / (wall_ms.max(1) as f64 / 1000.0)
    }

    /// Directive installs per second for a leg (volatile section only).
    fn directives_per_sec(&self, wall_ms: u128) -> f64 {
        self.reference.installs as f64 / (wall_ms.max(1) as f64 / 1000.0)
    }

    /// Heap bytes per home over the reference leg (volatile).
    pub fn bytes_per_home(&self) -> u64 {
        self.reference_bytes / u64::from(self.reference.homes.max(1))
    }

    /// `BENCH_E20.json`: a stable section (fleet digest, propagation
    /// facts, memo/intern counters, leg agreement) plus a
    /// `timing_wall_ms` section where **every** volatile line contains
    /// `wall_ms`, so CI can assert byte stability with
    /// `git diff -I'wall_ms'`.
    pub fn render_json(&self) -> String {
        let r = &self.reference;
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"e20\",\n");
        out.push_str(&format!("  \"seed\": {SEED},\n"));
        let threads: Vec<String> = PAR_THREADS.iter().map(|t| t.to_string()).collect();
        out.push_str(&format!("  \"parallel_threads\": [{}],\n", threads.join(", ")));
        out.push_str(&format!(
            "  \"fleet\": {{\"homes\": {}, \"rounds\": {}, \"neighborhood\": {NEIGHBORHOOD}, \
             \"chunk\": {CHUNK}}},\n",
            r.homes, r.rounds,
        ));
        out.push_str(&format!("  \"digest\": \"{}\",\n", r.digest_hex()));
        out.push_str(&format!(
            "  \"propagation\": {{\"discoveries\": {}, \"epoch\": {}, \"intel_len\": {}, \
             \"installs\": {}, \"batches\": {}}},\n",
            r.discoveries, r.epoch, r.intel_len, r.installs, r.batches,
        ));
        out.push_str(&format!(
            "  \"memo\": {{\"hits\": {}, \"misses\": {}, \"interned_snapshots\": {}}},\n",
            r.memo_hits, r.memo_misses, r.interned,
        ));
        out.push_str(&format!(
            "  \"outcomes\": {{\"events\": {}, \"blocks\": {}, \"compromised\": {}, \
             \"leaked\": {}, \"flagged\": {}}},\n",
            r.events, r.blocks, r.compromised, r.leaked, r.flagged,
        ));
        out.push_str("  \"legs\": [\n");
        for (i, l) in self.legs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"threads\": {}, \"identical\": {}}}{}\n",
                l.label,
                l.threads,
                l.identical,
                if i + 1 == self.legs.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"deterministic\": {},\n", self.deterministic));
        out.push_str("  \"timing_wall_ms\": [\n");
        for l in &self.legs {
            out.push_str(&format!(
                "    {{\"leg\": \"{}\", \"wall_ms\": {}, \"homes_per_sec\": {:.0}, \
                 \"directives_per_sec\": {:.0}}},\n",
                l.label,
                l.wall_ms,
                self.homes_per_sec(l.wall_ms),
                self.directives_per_sec(l.wall_ms),
            ));
        }
        out.push_str(&format!(
            "    {{\"mem\": \"reference-leg\", \"ref_wall_ms\": {}, \"bytes_total\": {}, \
             \"bytes_per_home\": {}}}\n",
            self.legs.first().map_or(0, |l| l.wall_ms),
            self.reference_bytes,
            self.bytes_per_home(),
        ));
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

/// Run one cold fleet leg and return its cumulative report.
fn run_leg(threads: usize, homes: u32, rounds: u32) -> FleetReport {
    let cfg = FleetConfig { homes, neighborhood: NEIGHBORHOOD, chunk: CHUNK, threads, seed: SEED };
    // One sentinel (home 0): the whole fleet is protected by a single
    // crowdsourced discovery.
    let mut fleet = Fleet::new(FleetScenario::new(homes), cfg);
    fleet.run(rounds)
}

/// E20 — run the fleet legs and build the report. `alloc_bytes` reads
/// the process's cumulative heap-bytes counter (the `experiments`
/// binary installs a counting global allocator and passes it in; unit
/// tests pass a null reader). `homes`/`rounds` are the CLI overrides
/// (`--homes N` / `--rounds N`); `None` keeps the committed defaults,
/// which is what the byte-stability gate compares against.
pub fn fleet(
    alloc_bytes: &dyn Fn() -> u64,
    homes: Option<u32>,
    rounds: Option<u32>,
) -> FleetBenchReport {
    let homes = homes.unwrap_or(FLEET_HOMES);
    let rounds = rounds.unwrap_or(ROUNDS);
    let mut legs = Vec::new();

    let bytes_before = alloc_bytes();
    let start = Instant::now();
    let reference = run_leg(1, homes, rounds);
    let ref_wall = start.elapsed().as_millis();
    let reference_bytes = alloc_bytes() - bytes_before;
    legs.push(FleetLeg {
        label: "fleet-serial".to_string(),
        threads: 1,
        identical: true,
        wall_ms: ref_wall,
    });

    let start = Instant::now();
    let rerun = run_leg(1, homes, rounds);
    legs.push(FleetLeg {
        label: "fleet-serial-rerun".to_string(),
        threads: 1,
        identical: rerun == reference,
        wall_ms: start.elapsed().as_millis(),
    });

    for &t in PAR_THREADS {
        let start = Instant::now();
        let par = run_leg(t, homes, rounds);
        legs.push(FleetLeg {
            label: format!("fleet-par{t}"),
            threads: t,
            identical: par == reference,
            wall_ms: start.elapsed().as_millis(),
        });
    }

    let mut table = Table::new(
        "E20: fleet-scale sharded controller — every leg, one chained digest",
        &["leg", "threads", "homes", "rounds", "digest", "identical", "wall ms"],
    );
    for l in &legs {
        table.rowd(&[
            l.label.clone(),
            l.threads.to_string(),
            reference.homes.to_string(),
            reference.rounds.to_string(),
            reference.digest_hex(),
            l.identical.to_string(),
            l.wall_ms.to_string(),
        ]);
    }

    let deterministic = legs.iter().all(|l| l.identical)
        && reference.discoveries == 1
        && reference.epoch == 1
        && u64::from(reference.homes) == reference.installs;
    let report = FleetBenchReport {
        table,
        reference,
        legs,
        reference_bytes,
        deterministic,
        summary: String::new(),
    };
    let summary = format!(
        "E20 summary: {} homes x {} rounds x {} legs, digest {}, 1 discovery -> {} installs \
         in {} batches (epoch {}), memo {}/{} hits/misses, {} bytes/home, deterministic: {}",
        report.reference.homes,
        report.reference.rounds,
        report.legs.len(),
        report.reference.digest_hex(),
        report.reference.installs,
        report.reference.batches,
        report.reference.epoch,
        report.reference.memo_hits,
        report.reference.memo_misses,
        report.bytes_per_home(),
        report.deterministic,
    );
    FleetBenchReport { summary, ..report }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_legs_agree() {
        // A 60-home miniature of the real legs (the full 10⁴ run lives
        // in `experiments e20`).
        let reference = run_leg(1, 60, ROUNDS);
        assert_eq!(reference.discoveries, 1);
        assert_eq!(reference.epoch, 1);
        assert_eq!(reference.installs, 60);
        for t in [2usize, 4] {
            assert_eq!(run_leg(t, 60, ROUNDS), reference, "t={t}");
        }
    }

    #[test]
    fn json_volatile_lines_all_carry_wall_ms() {
        let reference = run_leg(1, 12, ROUNDS);
        let legs = vec![
            FleetLeg { label: "fleet-serial".into(), threads: 1, identical: true, wall_ms: 5 },
            FleetLeg { label: "fleet-par2".into(), threads: 2, identical: true, wall_ms: 3 },
        ];
        let report = FleetBenchReport {
            table: Table::new("t", &["a"]),
            reference,
            legs,
            reference_bytes: 1 << 20,
            deterministic: true,
            summary: String::new(),
        };
        let json = report.render_json();
        let mut in_timing = false;
        for line in json.lines() {
            if line.contains("\"timing_wall_ms\"") {
                in_timing = true;
            }
            if in_timing && line.contains('{') {
                assert!(line.contains("wall_ms"), "volatile line lacks marker: {line}");
            }
            if line.contains("per_sec") || line.contains("bytes_per_home") {
                assert!(line.contains("wall_ms"), "host-dependent line lacks marker: {line}");
            }
        }
        assert!(json.contains("\"experiment\": \"e20\""));
        assert!(json.contains("\"deterministic\": true"));
        assert!(json.ends_with("}\n"));
    }
}
