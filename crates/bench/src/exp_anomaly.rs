//! E12 — anomaly detection on device behaviour, with and without
//! context conditioning.

use crate::Table;
use iotdev::device::DeviceId;
use iotlearn::anomaly::{AnomalyConfig, AnomalyDetector, Plane, Window};
use iotnet::addr::Ipv4Addr;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

const HUB: Ipv4Addr = Ipv4Addr([10, 0, 200, 1]);
const ATTACKER: Ipv4Addr = Ipv4Addr([100, 64, 0, 99]);

fn normal_window(rng: &mut StdRng, occupied: bool) -> Window {
    let mut w = Window::default();
    // Devices chat more when somebody is home (actuations, streaming).
    let telemetry = if occupied { 8 + rng.gen_range(0..5) } else { 2 + rng.gen_range(0..2) };
    for _ in 0..telemetry {
        w.record(Plane::Telemetry, HUB);
    }
    if occupied && rng.gen_bool(0.4) {
        w.record(Plane::Control, HUB);
    }
    w
}

fn attack_window(rng: &mut StdRng, kind: u8) -> Window {
    let mut w = Window::default();
    match kind {
        // DNS reflection burst.
        0 => {
            for _ in 0..100 + rng.gen_range(0..50) {
                w.record(Plane::Dns, Ipv4Addr([203, 0, 113, 50]));
            }
        }
        // Exfiltration to a new peer at roughly normal volume.
        1 => {
            for _ in 0..6 {
                w.record(Plane::Mgmt, ATTACKER);
            }
        }
        // Mimicry: telemetry-rate traffic while the house is empty —
        // exactly what only a context-conditioned profile can see.
        _ => {
            for _ in 0..10 {
                w.record(Plane::Telemetry, HUB);
            }
        }
    }
    w
}

/// One detector evaluation: (detection rate, false-positive rate).
pub fn evaluate(context_conditioned: bool, seed: u64) -> (f64, f64) {
    let dev = DeviceId(0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut det =
        AnomalyDetector::new(AnomalyConfig { context_conditioned, ..AnomalyConfig::default() });
    for _ in 0..300 {
        let occupied = rng.gen_bool(0.5);
        let ctx = if occupied { "present" } else { "absent" };
        det.train(dev, ctx, &normal_window(&mut rng, occupied));
    }
    det.seal();

    let mut fp = 0;
    const NORMALS: u64 = 300;
    for _ in 0..NORMALS {
        let occupied = rng.gen_bool(0.5);
        let ctx = if occupied { "present" } else { "absent" };
        if det.score(dev, ctx, &normal_window(&mut rng, occupied)).flagged {
            fp += 1;
        }
    }
    let mut tp = 0;
    const ATTACKS: u64 = 300;
    for i in 0..ATTACKS {
        // Attacks land while the house is empty (kind 2 is the mimicry).
        let w = attack_window(&mut rng, (i % 3) as u8);
        if det.score(dev, "absent", &w).flagged {
            tp += 1;
        }
    }
    (tp as f64 / ATTACKS as f64, fp as f64 / NORMALS as f64)
}

/// E12 — the context-conditioning ablation.
pub fn anomaly(seed: u64) -> Table {
    let mut t = Table::new(
        "E12: anomaly detection — context conditioning on/off",
        &["profile", "detection rate", "false-positive rate"],
    );
    for (label, conditioned) in
        [("context-conditioned (per occupancy)", true), ("single profile (unconditioned)", false)]
    {
        let (tpr, fpr) = evaluate(conditioned, seed);
        t.rowd(&[
            label.to_string(),
            format!("{:.0}%", tpr * 100.0),
            format!("{:.1}%", fpr * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditioning_improves_detection() {
        let (tpr_on, fpr_on) = evaluate(true, 5);
        let (tpr_off, _) = evaluate(false, 5);
        assert!(tpr_on > tpr_off, "conditioned {tpr_on} vs flat {tpr_off}");
        assert!(tpr_on > 0.9, "conditioned detection {tpr_on}");
        assert!(fpr_on < 0.1, "false positives {fpr_on}");
    }
}
