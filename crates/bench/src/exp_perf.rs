//! E16 — the parallel sweep engine: throughput, flow-cache efficacy and
//! thread-count determinism.
//!
//! The experiment runs the same E11-shaped job grid (scenario × seed ×
//! population) twice — once serial (`threads = 1`, the reference) and
//! once across the requested worker count — and compares the merged
//! outcome digests byte-for-byte. Divergence is a hard failure (the
//! binary exits non-zero), which is what the CI perf-smoke job leans
//! on. Wall-clock numbers are reported but deliberately kept *out* of
//! the digests: they are the only non-deterministic output.

use crate::sweep::{sweep_worlds, SweepScenario, WorldJob};
use crate::Table;
use iotctl::concurrent::SweepLedger;
use std::time::Instant;

/// Everything E16 produces: the printable table plus the numbers the
/// JSON report and the CI gate consume.
#[derive(Debug)]
pub struct PerfReport {
    /// Per-job outcome table.
    pub table: Table,
    /// Worker threads used for the parallel leg.
    pub threads: usize,
    /// Wall-clock of the serial reference leg.
    pub wall_ms_serial: u128,
    /// Wall-clock of the parallel leg.
    pub wall_ms_parallel: u128,
    /// Engine events processed across the sweep (one leg).
    pub events_processed: u64,
    /// Aggregate flow-decision-cache hit rate across the sweep.
    pub cache_hit_rate: f64,
    /// Whether the parallel digests matched the serial ones.
    pub deterministic: bool,
}

impl PerfReport {
    /// Serial-over-parallel wall-clock ratio (>1 means the parallel leg
    /// was faster). On a single-core host this hovers around 1.0.
    pub fn speedup(&self) -> f64 {
        if self.wall_ms_parallel == 0 {
            1.0
        } else {
            self.wall_ms_serial as f64 / self.wall_ms_parallel as f64
        }
    }
}

/// The standard E16 job grid: both scenarios × 3 seeds × 3 populations
/// (18 world instances), in canonical order.
pub fn standard_jobs(seed: u64) -> Vec<WorldJob> {
    let mut jobs = Vec::new();
    for scenario in [SweepScenario::HomeUndefended, SweepScenario::HomeIoTSec] {
        for s in [seed, seed + 1, seed + 2] {
            for population in [0u32, 8, 24] {
                jobs.push(WorldJob { scenario, seed: s, population });
            }
        }
    }
    jobs
}

/// E16 — run the sweep serial and parallel, check determinism, report.
pub fn perf(seed: u64, threads: usize) -> PerfReport {
    let jobs = standard_jobs(seed);

    let serial_ledger = SweepLedger::new();
    let t0 = Instant::now();
    let serial = sweep_worlds(&jobs, 1, &serial_ledger);
    let wall_ms_serial = t0.elapsed().as_millis();

    let parallel_ledger = SweepLedger::new();
    let t1 = Instant::now();
    let parallel = sweep_worlds(&jobs, threads.max(1), &parallel_ledger);
    let wall_ms_parallel = t1.elapsed().as_millis();

    let serial_digests: Vec<String> = serial.iter().map(|o| o.digest()).collect();
    let parallel_digests: Vec<String> = parallel.iter().map(|o| o.digest()).collect();
    let deterministic = serial_digests == parallel_digests;

    let mut table = Table::new(
        &format!(
            "E16: parallel sweep — {} worlds, {} thread(s) vs serial (identical: {})",
            jobs.len(),
            threads.max(1),
            deterministic
        ),
        &["scenario", "seed", "population", "events", "cache hits", "cache rate", "digest match"],
    );
    for (i, out) in serial.iter().enumerate() {
        let rate = if out.cache_lookups == 0 {
            0.0
        } else {
            out.cache_hits as f64 / out.cache_lookups as f64
        };
        table.rowd(&[
            out.job.scenario.label().to_string(),
            out.job.seed.to_string(),
            out.job.population.to_string(),
            out.events_processed.to_string(),
            format!("{}/{}", out.cache_hits, out.cache_lookups),
            format!("{:.3}", rate),
            (serial_digests[i] == parallel_digests[i]).to_string(),
        ]);
    }

    PerfReport {
        table,
        threads: threads.max(1),
        wall_ms_serial,
        wall_ms_parallel,
        events_processed: serial_ledger.events(),
        cache_hit_rate: serial_ledger.cache_hit_rate(),
        deterministic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_grid_is_canonical() {
        let a = standard_jobs(7);
        let b = standard_jobs(7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 18);
        assert_eq!(a[0].population, 0);
        assert_eq!(a[17].scenario, SweepScenario::HomeIoTSec);
    }

    #[test]
    fn perf_reports_deterministic_sweep() {
        // A trimmed grid keeps the unit test quick; the full grid runs
        // in the experiments binary and the root sweep_props test.
        let jobs = vec![
            WorldJob { scenario: SweepScenario::HomeUndefended, seed: 3, population: 0 },
            WorldJob { scenario: SweepScenario::HomeIoTSec, seed: 3, population: 0 },
        ];
        let ledger = SweepLedger::new();
        let serial = sweep_worlds(&jobs, 1, &ledger);
        let parallel = sweep_worlds(&jobs, 3, &SweepLedger::new());
        assert_eq!(serial, parallel);
        assert!(ledger.cache_hit_rate() > 0.0, "repeat flows must hit the decision cache");
    }
}
