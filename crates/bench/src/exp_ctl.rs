//! Control-plane experiments: E7/A2 (flat vs hierarchical scalability)
//! and E8 (consistency under churn).

use crate::Table;
use iotctl::controller::{Controller, ControllerConfig};
use iotctl::hier::{HierarchicalController, Partitioning};
use iotdev::device::{DeviceClass, DeviceId};
use iotdev::env::EnvVar;
use iotdev::events::{SecurityEvent, SecurityEventKind};
use iotdev::vuln::Vulnerability;
use iotnet::time::{SimDuration, SimTime};
use iotpolicy::compile::PolicyCompiler;
use iotpolicy::policy::FsmPolicy;
use umbox::element::ViewHandle;

fn deployment_policy(n: u32) -> FsmPolicy {
    let mut c = PolicyCompiler::new();
    for i in 0..n {
        let vulns = if i % 4 == 0 { vec![Vulnerability::default_admin_admin()] } else { vec![] };
        c.device(DeviceId(i), DeviceClass::Camera, &vulns);
    }
    // Sparse coupling: one protect pair per 10 devices.
    for p in 0..(n / 10) {
        c.protect_on_suspicion(DeviceId(p * 10), DeviceId(p * 10 + 1));
    }
    c.build()
}

fn event_burst(n_devices: u32, events: u64) -> Vec<SecurityEvent> {
    (0..events)
        .map(|i| {
            SecurityEvent::new(
                SimTime::from_micros(i * 50),
                DeviceId((i % n_devices as u64) as u32),
                SecurityEventKind::AuthFailureBurst,
            )
        })
        .collect()
}

/// E7 — event latency, flat vs hierarchical (coupling-partitioned),
/// with the A2 random-partition ablation as the fourth column.
pub fn control_plane() -> Table {
    let mut t = Table::new(
        "E7/A2: control-plane responsiveness — 500-event burst, per-event latency",
        &["devices", "flat p50 / max", "hier(coupling) p50 / max", "hier(random,4) p50 / max"],
    );
    for n in [10u32, 50, 100, 250, 500] {
        let events = event_burst(n, 500);

        let mut flat =
            Controller::new(deployment_policy(n), ControllerConfig::default(), ViewHandle::new());
        flat.reconcile(SimTime::ZERO);
        for e in events.clone() {
            flat.ingest(e);
        }
        flat.step(SimTime::from_secs(3600));
        let flat_stats = (flat.stats.latency.median(), flat.stats.latency.max());

        let run_hier = |partitioning: Partitioning| {
            let mut h = HierarchicalController::new(
                deployment_policy(n),
                partitioning,
                ControllerConfig::default(),
                ViewHandle::new(),
            );
            h.reconcile(SimTime::ZERO);
            for e in events.clone() {
                h.ingest(e);
            }
            h.step(SimTime::from_secs(3600));
            (h.worst_median(), h.worst_latency())
        };
        let hier = run_hier(Partitioning::ByCoupling);
        let rand = run_hier(Partitioning::Random { parts: 4, seed: 9 });

        t.rowd(&[
            n.to_string(),
            format!("{} / {}", flat_stats.0, flat_stats.1),
            format!("{} / {}", hier.0, hier.1),
            format!("{} / {}", rand.0, rand.1),
        ]);
    }
    t
}

/// E8 — consistency: how long the data-plane view lags a context change,
/// and what that does to gate decisions, per propagation setting.
pub fn consistency() -> Table {
    let mut t = Table::new(
        "E8: view-consistency window vs wrong gate decisions",
        &["propagation", "stale window", "racing ONs admitted (of 20)"],
    );
    for propagation_ms in [0u64, 10, 50, 200, 1000, 5000] {
        let propagation = SimDuration::from_millis(propagation_ms);
        let gate_view = ViewHandle::new();
        let mut c = PolicyCompiler::new();
        c.device(DeviceId(0), DeviceClass::SmartPlug, &[]);
        c.gate_actuation(DeviceId(0), EnvVar::Occupancy, "present");
        let mut ctl = Controller::new(
            c.build(),
            ControllerConfig { view_propagation: propagation, ..ControllerConfig::default() },
            gate_view.clone(),
        );
        // Start with somebody home; the gate learns it.
        ctl.ingest_env(SimTime::ZERO, &[(EnvVar::Occupancy, "present")]);
        ctl.step(SimTime::ZERO + propagation);

        // The house empties at t0; attacker fires 20 ON attempts spread
        // over the next 2 s. Every attempt that hits a still-"present"
        // view is a wrong admission.
        let t0 = SimTime::from_secs(10);
        ctl.ingest_env(t0, &[(EnvVar::Occupancy, "absent")]);
        let mut admitted = 0;
        for k in 0..20u64 {
            let at = t0 + SimDuration::from_millis(k * 100);
            ctl.step(at);
            if gate_view.get(EnvVar::Occupancy) == Some("present") {
                admitted += 1;
            }
        }
        t.rowd(&[format!("{propagation}"), format!("{propagation}"), admitted.to_string()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_wins_at_scale() {
        // At 250 devices the hierarchical worst latency must be well
        // below flat's (the E7 shape).
        let n = 250;
        let events = event_burst(n, 500);
        let mut flat =
            Controller::new(deployment_policy(n), ControllerConfig::default(), ViewHandle::new());
        flat.reconcile(SimTime::ZERO);
        for e in events.clone() {
            flat.ingest(e);
        }
        flat.step(SimTime::from_secs(3600));
        let mut hier = HierarchicalController::new(
            deployment_policy(n),
            Partitioning::ByCoupling,
            ControllerConfig::default(),
            ViewHandle::new(),
        );
        hier.reconcile(SimTime::ZERO);
        for e in events {
            hier.ingest(e);
        }
        hier.step(SimTime::from_secs(3600));
        let flat_max = flat.stats.latency.max();
        let hier_max = hier.worst_latency();
        assert!(
            hier_max.as_nanos() * 5 < flat_max.as_nanos(),
            "hier {hier_max} vs flat {flat_max}"
        );
    }

    #[test]
    fn consistency_monotone_in_propagation() {
        let s = consistency().render();
        let admitted: Vec<u32> = s
            .lines()
            .filter(|l| l.starts_with("| ") && !l.contains("propagation"))
            .filter_map(|l| l.split('|').nth(3)?.trim().parse().ok())
            .collect();
        assert!(admitted.len() >= 4);
        for w in admitted.windows(2) {
            assert!(w[0] <= w[1], "{admitted:?}");
        }
        assert_eq!(admitted[0], 0, "strong consistency admits nothing: {admitted:?}");
    }
}
