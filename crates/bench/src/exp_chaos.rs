//! E15 — chaos engineering: deterministic fault injection across the
//! enforcement path.
//!
//! Three questions, three tables:
//!
//! 1. **Degradation semantics.** A camera's µmbox crashes just before
//!    the attack lands. Fail-open trades security for availability (the
//!    attack crosses unfiltered); fail-closed trades availability for
//!    security (the attack — and everything else — is dropped until the
//!    watchdog respawns the instance).
//! 2. **Controller failover.** A long controller outage with and
//!    without a warm standby: the standby's detect + re-sync window
//!    bounds the reaction blackout, cutting cumulative unprotected time
//!    by an order of magnitude.
//! 3. **Determinism.** The same chaos seed reproduces byte-identical
//!    metrics — faults, crashes and outages included — which is what
//!    makes chaos runs debuggable at all.

use crate::Table;
use iotnet::time::{SimDuration, SimTime};
use iotsec::chaos::ChaosConfig;
use iotsec::defense::Defense;
use iotsec::deployment::StepSpec;
use iotsec::scenario;
use iotsec::world::World;

/// E15a — fail-open vs fail-closed while the camera's µmbox is down.
pub fn failure_modes() -> Table {
    let mut t = Table::new(
        "E15a: crash during attack — fail-open leaks, fail-closed holds",
        &[
            "failure mode",
            "privacy leaked",
            "unfiltered pkts",
            "dropped pkts",
            "crashes",
            "respawns",
            "unprotected",
        ],
    );
    for fail_closed in [false, true] {
        let mut chaos = ChaosConfig::new()
            .crash(SimTime::from_secs(5), iotdev::device::DeviceId(0))
            .with_watchdog(SimDuration::from_secs(30));
        if fail_closed {
            chaos = chaos.fail_closed();
        }
        let (mut d, cam) = scenario::table1_row(1, Defense::iotsec());
        // Strike inside the downtime window (crash at 5 s, watchdog 30 s).
        d.campaign.insert(0, StepSpec::Wait(SimDuration::from_secs(6)));
        d.chaos(chaos);
        let mut w = World::new(&d);
        w.run_until_attack_done(SimDuration::from_secs(60));
        let m = w.report();
        crate::metrics::record_world(&w);
        t.rowd(&[
            if fail_closed { "fail-closed" } else { "fail-open" }.to_string(),
            m.privacy_leaked.contains(&cam).to_string(),
            m.missed_blocks.to_string(),
            m.fail_closed_drops.to_string(),
            m.umbox_crashes.to_string(),
            m.umbox_respawns.to_string(),
            format!("{:.1}s", m.unprotected_total().as_secs_f64()),
        ]);
    }
    t
}

/// E15b — riding out a controller outage vs failing over to a standby.
pub fn failover() -> Table {
    let mut t = Table::new(
        "E15b: 60s controller outage — warm standby vs riding it out",
        &[
            "control plane",
            "failovers",
            "unprotected",
            "directives delivered",
            "deduped",
            "retries",
        ],
    );
    for standby in [false, true] {
        let mut chaos =
            ChaosConfig::new().outage(SimTime::from_secs(5), SimDuration::from_secs(60));
        if standby {
            chaos = chaos.with_standby();
        }
        let (mut d, _) = scenario::table1_row(1, Defense::iotsec());
        d.campaign.insert(0, StepSpec::Wait(SimDuration::from_secs(10)));
        d.chaos(chaos);
        let mut w = World::new(&d);
        w.run(SimDuration::from_secs(90));
        let m = w.report();
        crate::metrics::record_world(&w);
        t.rowd(&[
            if standby { "primary + standby" } else { "single" }.to_string(),
            m.controller_failovers.to_string(),
            format!("{:.1}s", m.unprotected_total().as_secs_f64()),
            m.delivery.delivered.to_string(),
            m.delivery.deduped.to_string(),
            m.delivery.retries.to_string(),
        ]);
    }
    t
}

/// E15c — identical chaos seeds reproduce byte-identical metrics.
pub fn determinism(seed: u64) -> Table {
    let mut t = Table::new(
        "E15c: chaos determinism — same seed, byte-identical metrics",
        &["chaos seed", "faults applied", "crashes", "replay identical"],
    );
    let run = |chaos_seed: u64| {
        let chaos = ChaosConfig {
            link_flaps: 3,
            loss_bursts: 2,
            umbox_crashes: 2,
            controller_outages: 1,
            outage_len: SimDuration::from_secs(8),
            horizon: SimDuration::from_secs(40),
            ..ChaosConfig::default()
        }
        .with_seed(chaos_seed);
        let (mut d, _) = scenario::table1_row(1, Defense::iotsec());
        d.chaos(chaos);
        let mut w = World::new(&d);
        // Run past the fault horizon so the whole schedule plays out.
        w.run(SimDuration::from_secs(45));
        crate::metrics::record_world(&w);
        w.report()
    };
    for chaos_seed in [seed, seed ^ 0xDEAD] {
        let a = run(chaos_seed);
        let b = run(chaos_seed);
        t.rowd(&[
            format!("{chaos_seed:#x}"),
            a.faults_injected.to_string(),
            a.umbox_crashes.to_string(),
            (format!("{a:?}") == format!("{b:?}")).to_string(),
        ]);
    }
    t
}

/// All E15 tables.
pub fn chaos(seed: u64) -> Vec<Table> {
    vec![failure_modes(), failover(), determinism(seed)]
}
