//! E26 — resident home worlds: delta-driven fleet rounds, measured.
//!
//! E20 showed the fleet is digest-deterministic; ROADMAP flags its
//! remaining head-room twice: an active round rebuilds every world
//! from scratch (~0.8 MB and the dominant wall-time per home). This
//! experiment measures the whole amortization ladder on identical
//! round streams:
//!
//! * **rebuild-cold** — the from-scratch baseline the fleet started
//!   from: every active home-round is a full [`iotsec_fleet::fleet::HomeWorld::run_home`]
//!   build (no scrap reuse). This is the reference every other leg
//!   must reproduce byte-for-byte, and the baseline the acceptance
//!   ratios are quoted against.
//! * **rebuild-recycled** — the production E25 path: full rebuild per
//!   home-round, but out of the worker's reclaimed network buffers.
//! * **resident** — the E26 mode ([`iotsec_fleet::fleet::Fleet::set_resident`]):
//!   one persistent world per worker, **rebound** to each home
//!   (`(home, seed, intel)` purity makes one machine serve any home)
//!   with intel epochs **delta-installed**
//!   ([`iotsec::world::World::apply_intel_delta`]) instead of
//!   recompiled from scratch — measured serial, rerun, and at each
//!   count in [`PAR_THREADS`].
//!
//! Three churn arms isolate the steady-state cost, each measured over
//! [`ROUNDS`] post-warmup rounds:
//!
//! * **quiet** — no new intel after warmup; every measured round is
//!   memo-served. Sanity: residency must not disturb the memo path.
//! * **churn-miss** — one novel signature per round for a SKU no home
//!   owns: every round is a new epoch (memo useless, all homes
//!   execute), but the delta keeps every device untouched.
//! * **churn-hit** — one novel signature per round for the camera SKU
//!   every home owns: every round is a new epoch *and* every delta
//!   splices the camera's signature list (no policy recompile — repo
//!   membership never flips after warmup).
//!
//! Every leg must reproduce the cold reference's chained fleet digest
//! byte-for-byte — the rebuild-equivalence oracle at bench scale. The
//! headline numbers are steady-state homes/sec and heap bytes per
//! home-round; the experiment fails (non-zero exit) unless the churn
//! arms show the resident path ≥3× faster **or** ≥5× lighter per
//! home-round than the from-scratch baseline. The recycled ratios are
//! reported alongside so the resident mode's margin over the already-
//! optimized E25 path stays visible.
//!
//! Digests, epochs, memo counters and the serial resident-stats
//! counters are byte-stable in `BENCH_E26.json`; wall-clock and
//! allocator-dependent numbers land only on `wall_ms`-marked volatile
//! lines, and the CI `resident-gate` job diffs the file with
//! `git diff -I'wall_ms'`.

use crate::Table;
use iotdev::registry::Sku;
use iotlearn::signature::{Matcher, Severity};
use iotlearn::AttackSignature;
use iotsec::world::WorldScrap;
use iotsec_fleet::{
    Fleet, FleetConfig, FleetReport, FleetScenario, HomeOutcome, HomeWorld, ResidentStats,
};
use std::time::Instant;

/// The repo-wide experiment seed.
pub const SEED: u64 = 20151116;
/// Homes in the fleet (20 neighborhoods of 100).
pub const HOMES: u32 = 2_000;
/// Homes per neighborhood aggregator.
pub const NEIGHBORHOOD: u32 = 100;
/// Homes per chunk (one chunk is the unit of worker assignment).
pub const CHUNK: u32 = 64;
/// Measured steady-state rounds per leg (post-warmup).
pub const ROUNDS: u32 = 6;
/// Warmup rounds: the breach round plus the first defended round, so
/// the measurement window starts with every world built and epoch 1
/// installed fleet-wide.
pub const WARMUP: u32 = 2;
/// Thread counts for the resident digest-gate legs.
pub const PAR_THREADS: &[usize] = &[2, 4];
/// Amortization gate: resident must be ≥ this many times faster than
/// the from-scratch baseline…
pub const MIN_SPEEDUP: f64 = 3.0;
/// …or allocate ≤ 1/this of its bytes per home-round.
pub const MIN_BYTES_RATIO: f64 = 5.0;

/// The swept churn arms.
const ARMS: &[Churn] = &[Churn::Quiet, Churn::Miss, Churn::Hit];

/// What the intel feed does during the measured rounds.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Churn {
    /// No new intel: steady state is fully memo-served.
    Quiet,
    /// A novel signature per round for a SKU no home owns.
    Miss,
    /// A novel signature per round for the camera SKU every home owns.
    Hit,
}

impl Churn {
    /// Stable arm label.
    pub fn label(self) -> &'static str {
        match self {
            Churn::Quiet => "quiet",
            Churn::Miss => "churn-miss",
            Churn::Hit => "churn-hit",
        }
    }

    /// The round-`idx` injection for this arm (`None` for quiet).
    /// Every signature is novel (distinct vuln id) so each injection
    /// advances the region epoch by exactly one.
    fn sig(self, idx: u32, cam_sku: &Sku) -> Option<AttackSignature> {
        let sku = match self {
            Churn::Quiet => return None,
            Churn::Miss => Sku::new("e26", "no-such-device", "1"),
            Churn::Hit => cam_sku.clone(),
        };
        Some(AttackSignature::new(
            sku,
            &format!("e26-{}-{idx}", self.label()),
            Matcher::MatchAll,
            Severity::Medium,
        ))
    }
}

/// The from-scratch baseline: wraps the real scenario but refuses the
/// recycled build, so every active home-round is a cold
/// [`HomeWorld::run_home`] — the world the fleet ran in before E25's
/// scrap reuse, and the "~0.8 MB per home" the ROADMAP head-room notes
/// point at.
struct ColdRebuild(FleetScenario);

impl HomeWorld for ColdRebuild {
    type Resident = ();

    fn run_home(&self, home: u32, seed: u64, intel: &[AttackSignature]) -> HomeOutcome {
        self.0.run_home(home, seed, intel)
    }

    fn run_home_recycled(
        &self,
        home: u32,
        seed: u64,
        intel: &[AttackSignature],
        _scrap: &mut WorldScrap,
    ) -> HomeOutcome {
        self.0.run_home(home, seed, intel)
    }

    fn discovery(&self, home: u32) -> Option<AttackSignature> {
        self.0.discovery(home)
    }
}

/// One measured leg: an execution mode at a thread count.
pub struct ResidentLeg {
    /// Stable label (`rebuild-cold`, `rebuild-recycled`, `resident`,
    /// `resident-rerun`, `resident-par2`…).
    pub label: String,
    /// Worker threads (1 = serial).
    pub threads: usize,
    /// Whether the cumulative fleet report (digest included) matched
    /// the cold rebuild reference.
    pub identical: bool,
    /// Steady-state wall time (volatile; never gated on).
    pub steady_wall_ms: u128,
    /// Heap bytes allocated during the steady-state window (volatile —
    /// tracks allocator internals; only the rebuild/resident *ratio*
    /// is meaningful).
    pub steady_bytes: u64,
    /// Scrap-reuse counters exported through the fleet's
    /// [`trace::MetricsRegistry`] hookup: `[queue_reused, queue_cold,
    /// capture_reused, capture_cold]`.
    pub scrap: [u64; 4],
}

/// One arm's results: the cold reference plus every other leg.
pub struct ResidentArm {
    /// Which churn pattern.
    pub churn: Churn,
    /// The cold rebuild reference's cumulative report.
    pub reference: FleetReport,
    /// Serial resident leg's pool stats (deterministic: one worker).
    pub stats: ResidentStats,
    /// Every leg: `rebuild-cold`, `rebuild-recycled`, `resident`,
    /// `resident-rerun`, then one `resident-parN` per [`PAR_THREADS`].
    pub legs: Vec<ResidentLeg>,
}

/// Leg indices in [`ResidentArm::legs`].
const COLD: usize = 0;
const RECYCLED: usize = 1;
const RESIDENT: usize = 2;

impl ResidentArm {
    /// Steady-state home-rounds served per second for a leg (volatile).
    fn homes_per_sec(&self, wall_ms: u128) -> f64 {
        let served = u64::from(self.reference.homes) * u64::from(ROUNDS);
        served as f64 / (wall_ms.max(1) as f64 / 1000.0)
    }

    /// Steady-state heap bytes per home-round for a leg (volatile).
    fn bytes_per_home_round(&self, bytes: u64) -> u64 {
        bytes / (u64::from(self.reference.homes) * u64::from(ROUNDS)).max(1)
    }

    fn wall_ratio(&self, base: usize) -> f64 {
        self.legs[base].steady_wall_ms.max(1) as f64
            / self.legs[RESIDENT].steady_wall_ms.max(1) as f64
    }

    fn byte_ratio_vs(&self, base: usize) -> f64 {
        self.legs[base].steady_bytes.max(1) as f64 / self.legs[RESIDENT].steady_bytes.max(1) as f64
    }

    /// cold wall / resident wall (≥ 1 means resident is faster).
    pub fn speedup(&self) -> f64 {
        self.wall_ratio(COLD)
    }

    /// cold bytes / resident bytes (≥ 1 means resident is lighter).
    pub fn bytes_ratio(&self) -> f64 {
        self.byte_ratio_vs(COLD)
    }

    /// recycled wall / resident wall — resident's margin over E25.
    pub fn recycled_speedup(&self) -> f64 {
        self.wall_ratio(RECYCLED)
    }

    /// recycled bytes / resident bytes — resident's margin over E25.
    pub fn recycled_bytes_ratio(&self) -> f64 {
        self.byte_ratio_vs(RECYCLED)
    }

    /// The amortization verdict for this arm (vs the cold baseline).
    pub fn amortized(&self) -> bool {
        self.speedup() >= MIN_SPEEDUP || self.bytes_ratio() >= MIN_BYTES_RATIO
    }
}

/// The E26 report: the printed table plus everything the JSON needs.
pub struct ResidentBenchReport {
    /// Rendered leg table.
    pub table: Table,
    /// Homes per fleet ([`HOMES`] unless `--homes` overrode it).
    pub homes: u32,
    /// Measured rounds ([`ROUNDS`] unless `--rounds` overrode it).
    pub rounds: u32,
    /// Every arm, in [`ARMS`] order.
    pub arms: Vec<ResidentArm>,
    /// Every leg of every arm reproduced its cold rebuild reference.
    pub identical: bool,
    /// Both churn arms passed the amortization gate.
    pub amortized: bool,
    /// `identical && amortized` — what the CI gate checks.
    pub deterministic: bool,
    /// One-line human summary.
    pub summary: String,
}

/// Drive one fleet through warmup plus `rounds` measured rounds under
/// the arm's churn, and collect the measurement bundle.
///
/// The injection schedule is phase-shifted so every measured round of a
/// churn arm is *active*: signature `idx` enters the feed one round
/// before measured round `idx` runs, so its epoch installs at the
/// preceding barrier and forces a memo miss.
fn drive<S: HomeWorld + Sync>(
    fleet: &mut Fleet<S>,
    churn: Churn,
    cam_sku: &Sku,
    rounds: u32,
    alloc_bytes: &dyn Fn() -> u64,
) -> (FleetReport, ResidentStats, [u64; 4], u64, u128) {
    for g in 0..WARMUP {
        if g + 1 == WARMUP {
            if let Some(sig) = churn.sig(0, cam_sku) {
                fleet.inject_intel(vec![sig]);
            }
        }
        fleet.round();
    }
    let bytes_before = alloc_bytes();
    let start = Instant::now();
    for r in 0..rounds {
        if let Some(sig) = churn.sig(r + 1, cam_sku) {
            fleet.inject_intel(vec![sig]);
        }
        fleet.round();
    }
    let steady_wall_ms = start.elapsed().as_millis();
    let steady_bytes = alloc_bytes() - bytes_before;
    let mut reg = trace::MetricsRegistry::new();
    fleet.export_metrics(&mut reg);
    let read = |name: &str| match reg.get(name) {
        Some(trace::registry::MetricValue::Counter(c)) => c,
        _ => 0,
    };
    let scrap = [
        read("fleet.scrap.queue_reused"),
        read("fleet.scrap.queue_cold"),
        read("fleet.scrap.capture_reused"),
        read("fleet.scrap.capture_cold"),
    ];
    (fleet.report(), fleet.resident_stats(), scrap, steady_bytes, steady_wall_ms)
}

fn fleet_cfg(homes: u32, threads: usize) -> FleetConfig {
    FleetConfig { homes, neighborhood: NEIGHBORHOOD, chunk: CHUNK, threads, seed: SEED }
}

/// The camera SKU the churn-hit arm targets.
fn cam_sku(homes: u32) -> Sku {
    FleetScenario::new(homes)
        .discovery(0)
        .expect("the fleet scenario always has a discoverable camera signature")
        .sku
}

/// Run one arm's legs against its cold rebuild reference.
fn run_arm(churn: Churn, homes: u32, rounds: u32, alloc_bytes: &dyn Fn() -> u64) -> ResidentArm {
    let sku = cam_sku(homes);
    let mut legs = Vec::new();

    let mut cold = Fleet::new(ColdRebuild(FleetScenario::new(homes)), fleet_cfg(homes, 1));
    let (reference, _, scrap, bytes, wall) = drive(&mut cold, churn, &sku, rounds, alloc_bytes);
    legs.push(ResidentLeg {
        label: "rebuild-cold".to_string(),
        threads: 1,
        identical: true,
        steady_wall_ms: wall,
        steady_bytes: bytes,
        scrap,
    });

    let mut recycled = Fleet::new(FleetScenario::new(homes), fleet_cfg(homes, 1));
    let (rec, _, scrap, bytes, wall) = drive(&mut recycled, churn, &sku, rounds, alloc_bytes);
    legs.push(ResidentLeg {
        label: "rebuild-recycled".to_string(),
        threads: 1,
        identical: rec == reference,
        steady_wall_ms: wall,
        steady_bytes: bytes,
        scrap,
    });

    let mut resident = Fleet::new(FleetScenario::new(homes), fleet_cfg(homes, 1));
    resident.set_resident(true);
    let (res, stats, scrap, bytes, wall) = drive(&mut resident, churn, &sku, rounds, alloc_bytes);
    legs.push(ResidentLeg {
        label: "resident".to_string(),
        threads: 1,
        identical: res == reference,
        steady_wall_ms: wall,
        steady_bytes: bytes,
        scrap,
    });

    let mut rerun = Fleet::new(FleetScenario::new(homes), fleet_cfg(homes, 1));
    rerun.set_resident(true);
    let (rer, _, scrap, bytes, wall) = drive(&mut rerun, churn, &sku, rounds, alloc_bytes);
    legs.push(ResidentLeg {
        label: "resident-rerun".to_string(),
        threads: 1,
        identical: rer == reference,
        steady_wall_ms: wall,
        steady_bytes: bytes,
        scrap,
    });

    for &t in PAR_THREADS {
        let mut par = Fleet::new(FleetScenario::new(homes), fleet_cfg(homes, t));
        par.set_resident(true);
        let (p, _, scrap, bytes, wall) = drive(&mut par, churn, &sku, rounds, alloc_bytes);
        legs.push(ResidentLeg {
            label: format!("resident-par{t}"),
            threads: t,
            identical: p == reference,
            steady_wall_ms: wall,
            steady_bytes: bytes,
            scrap,
        });
    }

    ResidentArm { churn, reference, stats, legs }
}

impl ResidentBenchReport {
    /// `BENCH_E26.json`: a stable section (per-arm digest, epoch and
    /// memo counters, the serial resident-stats counters, leg
    /// agreement, gate verdicts) plus a `timing_wall_ms` section where
    /// **every** volatile line contains `wall_ms`, so CI can assert
    /// byte stability with `git diff -I'wall_ms'`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"e26\",\n");
        out.push_str(&format!("  \"seed\": {SEED},\n"));
        out.push_str(&format!(
            "  \"fleet\": {{\"homes\": {}, \"rounds\": {}, \"warmup\": {WARMUP}, \
             \"neighborhood\": {NEIGHBORHOOD}, \"chunk\": {CHUNK}}},\n",
            self.homes, self.rounds,
        ));
        out.push_str("  \"arms\": [\n");
        for (i, a) in self.arms.iter().enumerate() {
            let r = &a.reference;
            let s = &a.stats;
            let legs: Vec<String> = a
                .legs
                .iter()
                .map(|l| {
                    format!(
                        "{{\"label\": \"{}\", \"threads\": {}, \"identical\": {}}}",
                        l.label, l.threads, l.identical,
                    )
                })
                .collect();
            out.push_str(&format!(
                "    {{\"arm\": \"{}\", \"digest\": \"{}\", \"epoch\": {}, \"installs\": {}, \
                 \"memo\": {{\"hits\": {}, \"misses\": {}, \"interned_snapshots\": {}}}, \
                 \"resident_serial\": {{\"full_builds\": {}, \"resident_runs\": {}, \
                 \"delta_installs\": {}, \"noop_installs\": {}, \"policy_recompiles\": {}, \
                 \"devices_patched\": {}, \"devices_kept\": {}, \"dropped\": {}}}, \
                 \"legs\": [{}], \"amortized\": {}}}{}\n",
                a.churn.label(),
                r.digest_hex(),
                r.epoch,
                r.installs,
                r.memo_hits,
                r.memo_misses,
                r.interned,
                s.full_builds,
                s.resident_runs,
                s.delta_installs,
                s.noop_installs,
                s.policy_recompiles,
                s.devices_patched,
                s.devices_kept,
                s.dropped,
                legs.join(", "),
                // Quiet is memo-served on both paths — its ratios are
                // noise over ~0-cost legs, so it carries no claim.
                match a.churn {
                    Churn::Quiet => "null".to_string(),
                    _ => a.amortized().to_string(),
                },
                if i + 1 == self.arms.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"identical\": {},\n", self.identical));
        out.push_str(&format!("  \"amortized\": {},\n", self.amortized));
        out.push_str(&format!("  \"deterministic\": {},\n", self.deterministic));
        out.push_str("  \"timing_wall_ms\": [\n");
        let mut lines = Vec::new();
        for a in &self.arms {
            for l in &a.legs {
                lines.push(format!(
                    "    {{\"leg\": \"{}-{}\", \"wall_ms\": {}, \"homes_per_sec\": {:.0}, \
                     \"bytes_per_home_round\": {}}}",
                    a.churn.label(),
                    l.label,
                    l.steady_wall_ms,
                    a.homes_per_sec(l.steady_wall_ms),
                    a.bytes_per_home_round(l.steady_bytes),
                ));
            }
            lines.push(format!(
                "    {{\"ratio\": \"{}\", \"ref_wall_ms\": {}, \"speedup_vs_cold\": {:.2}, \
                 \"bytes_ratio_vs_cold\": {:.2}, \"speedup_vs_recycled\": {:.2}, \
                 \"bytes_ratio_vs_recycled\": {:.2}}}",
                a.churn.label(),
                a.legs[COLD].steady_wall_ms,
                a.speedup(),
                a.bytes_ratio(),
                a.recycled_speedup(),
                a.recycled_bytes_ratio(),
            ));
            let s = a.legs[RESIDENT].scrap;
            lines.push(format!(
                "    {{\"scrap\": \"{}\", \"res_wall_ms\": {}, \"queue_reused\": {}, \
                 \"queue_cold\": {}, \"capture_reused\": {}, \"capture_cold\": {}}}",
                a.churn.label(),
                a.legs[RESIDENT].steady_wall_ms,
                s[0],
                s[1],
                s[2],
                s[3],
            ));
        }
        out.push_str(&lines.join(",\n"));
        out.push_str("\n  ]\n");
        out.push_str("}\n");
        out
    }
}

/// E26 — run the arms and build the report. `alloc_bytes` reads the
/// process's cumulative heap-bytes counter (the `experiments` binary
/// installs a counting global allocator; unit tests pass a null
/// reader). `homes`/`rounds` are the CLI overrides (`--homes N` /
/// `--rounds N`); `None` keeps the committed defaults, which is what
/// the byte-stability gate compares against.
pub fn resident(
    alloc_bytes: &dyn Fn() -> u64,
    homes: Option<u32>,
    rounds: Option<u32>,
) -> ResidentBenchReport {
    let homes = homes.unwrap_or(HOMES);
    let rounds = rounds.unwrap_or(ROUNDS);
    let arms: Vec<ResidentArm> =
        ARMS.iter().map(|&c| run_arm(c, homes, rounds, alloc_bytes)).collect();

    let mut table = Table::new(
        "E26: resident home worlds — cold rebuild vs recycled rebuild vs delta-driven resident",
        &["arm", "leg", "threads", "digest", "identical", "steady wall ms", "bytes/home-round"],
    );
    for a in &arms {
        for l in &a.legs {
            table.rowd(&[
                a.churn.label().to_string(),
                l.label.clone(),
                l.threads.to_string(),
                a.reference.digest_hex(),
                l.identical.to_string(),
                l.steady_wall_ms.to_string(),
                a.bytes_per_home_round(l.steady_bytes).to_string(),
            ]);
        }
    }

    let identical = arms.iter().all(|a| a.legs.iter().all(|l| l.identical));
    // Quiet steady state is memo-served on both paths, so only the
    // churn arms carry the amortization claim.
    let amortized = arms.iter().filter(|a| a.churn != Churn::Quiet).all(|a| a.amortized());
    let deterministic = identical && amortized;
    let churn_hit = arms.iter().find(|a| a.churn == Churn::Hit);
    let summary = format!(
        "E26 summary: {} homes x {} steady rounds x {} arms, all legs digest-identical: {}, \
         churn-hit vs cold rebuild {:.2}x wall / {:.2}x bytes (gate: >={MIN_SPEEDUP}x or \
         >={MIN_BYTES_RATIO}x), vs recycled rebuild {:.2}x wall / {:.2}x bytes, \
         serial resident stats {:?}, amortized: {}",
        homes,
        rounds,
        arms.len(),
        identical,
        churn_hit.map_or(0.0, |a| a.speedup()),
        churn_hit.map_or(0.0, |a| a.bytes_ratio()),
        churn_hit.map_or(0.0, |a| a.recycled_speedup()),
        churn_hit.map_or(0.0, |a| a.recycled_bytes_ratio()),
        churn_hit.map(|a| a.stats),
        amortized,
    );
    ResidentBenchReport { table, homes, rounds, arms, identical, amortized, deterministic, summary }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 24-home miniature of the real arms (the full run lives in
    /// `experiments e26`). Digest equality is the oracle; the
    /// amortization ratios are only meaningful at bench scale.
    #[test]
    fn miniature_arms_are_digest_identical_and_run_resident() {
        for &churn in ARMS {
            let arm = run_arm(churn, 24, 2, &|| 0);
            assert!(arm.legs.iter().all(|l| l.identical), "arm {}", churn.label());
            assert!(arm.stats.resident_runs > 0, "arm {}: {:?}", churn.label(), arm.stats);
            match churn {
                // Measured rounds are memo hits; only warmup executes.
                Churn::Quiet => assert_eq!(arm.stats.delta_installs, 1),
                // Every measured round delta-installs a fresh epoch.
                Churn::Miss | Churn::Hit => {
                    assert!(arm.stats.delta_installs >= 2, "{:?}", arm.stats);
                    assert_eq!(arm.stats.noop_installs, 0);
                }
            }
            if churn == Churn::Hit {
                assert!(arm.stats.devices_patched > 0, "{:?}", arm.stats);
            }
        }
    }

    #[test]
    fn json_volatile_lines_all_carry_wall_ms() {
        let arm = run_arm(Churn::Quiet, 12, 1, &|| 0);
        let report = ResidentBenchReport {
            table: Table::new("t", &["a"]),
            homes: 12,
            rounds: 1,
            arms: vec![arm],
            identical: true,
            amortized: true,
            deterministic: true,
            summary: String::new(),
        };
        let json = report.render_json();
        let mut in_timing = false;
        for line in json.lines() {
            if line.contains("\"timing_wall_ms\"") {
                in_timing = true;
            }
            if in_timing && line.contains('{') {
                assert!(line.contains("wall_ms"), "volatile line lacks marker: {line}");
            }
            if line.contains("per_sec") || line.contains("bytes_per_home_round") {
                assert!(line.contains("wall_ms"), "host-dependent line lacks marker: {line}");
            }
        }
        assert!(json.contains("\"experiment\": \"e26\""));
        assert!(json.contains("\"identical\": true"));
        assert!(json.ends_with("}\n"));
    }
}
