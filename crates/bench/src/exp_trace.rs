//! E17 — deterministic tracing: the differential harness and the
//! in-process aggregator, surfaced via `experiments trace` (or the
//! `--trace` flag).
//!
//! The experiment runs a small traced job grid three ways — timer-wheel
//! serial (the reference), heap-queue serial, and timer-wheel parallel —
//! and compares the JSONL traces *byte for byte*. Identical seeds must
//! yield identical traces regardless of queue backend or worker count;
//! any divergence is reported as a readable first-divergence diff, not a
//! blob mismatch, and fails the run. A separate single smart-home world
//! feeds the [`TraceAggregator`] for the per-component histogram and the
//! top-K hot switches/µmboxes.

use crate::sweep::{sweep_worlds_traced, SweepScenario, WorldJob};
use crate::Table;
use iotnet::engine::QueueKind;
use iotnet::time::SimDuration;
use iotsec::defense::Defense;
use iotsec::scenario;
use iotsec::world::World;
use trace::{first_divergence, render_divergence, TraceAggregator, TraceConfig, Tracer};

/// Everything E17 produces: the printable table, the aggregator text,
/// and the identity verdicts the CI gate consumes.
#[derive(Debug)]
pub struct TraceReport {
    /// Per-job trace summary table.
    pub table: Table,
    /// Rendered aggregator output (histograms + top-K hot spots).
    pub summary: String,
    /// Trace events recorded across the reference leg.
    pub events: u64,
    /// Whether heap-queue traces matched the timer-wheel reference.
    pub queue_identical: bool,
    /// Whether parallel-sweep traces matched the serial reference.
    pub threads_identical: bool,
    /// First-divergence renderings for any mismatches (empty when green).
    pub divergences: Vec<String>,
}

impl TraceReport {
    /// The single verdict the binary's exit code keys on.
    pub fn deterministic(&self) -> bool {
        self.queue_identical && self.threads_identical
    }
}

/// The E17 job grid: both scenarios over two seeds, small populations —
/// enough to exercise every emission site without E16's runtime.
pub fn trace_jobs(seed: u64) -> Vec<WorldJob> {
    vec![
        WorldJob { scenario: SweepScenario::HomeUndefended, seed, population: 0 },
        WorldJob { scenario: SweepScenario::HomeIoTSec, seed, population: 0 },
        WorldJob { scenario: SweepScenario::HomeIoTSec, seed: seed + 1, population: 4 },
    ]
}

/// E17 — run the traced grid, check queue-backend and thread-count
/// trace identity, and aggregate one world's trace for the hot-spot
/// report.
pub fn trace(seed: u64, threads: usize) -> TraceReport {
    let jobs = trace_jobs(seed);
    let config = TraceConfig::full();
    let reference = sweep_worlds_traced(&jobs, 1, QueueKind::Wheel, config);
    let heap = sweep_worlds_traced(&jobs, 1, QueueKind::Heap, config);
    let parallel = sweep_worlds_traced(&jobs, threads.max(2), QueueKind::Wheel, config);

    let mut divergences = Vec::new();
    let mut queue_identical = true;
    let mut threads_identical = true;
    let mut table = Table::new(
        &format!(
            "E17: deterministic traces — {} worlds, wheel vs heap vs {} threads",
            jobs.len(),
            threads.max(2)
        ),
        &["scenario", "seed", "events", "trace bytes", "heap identical", "parallel identical"],
    );
    for (i, (out, trace)) in reference.iter().enumerate() {
        let heap_ok = heap[i].1 == *trace;
        let par_ok = parallel[i].1 == *trace;
        if !heap_ok {
            queue_identical = false;
            if let Some(d) = first_divergence(trace, &heap[i].1) {
                divergences.push(format!("job {i} (heap queue): {}", render_divergence(&d)));
            }
        }
        if !par_ok {
            threads_identical = false;
            if let Some(d) = first_divergence(trace, &parallel[i].1) {
                divergences.push(format!("job {i} (parallel): {}", render_divergence(&d)));
            }
        }
        table.rowd(&[
            out.job.scenario.label().to_string(),
            out.job.seed.to_string(),
            trace.lines().count().to_string(),
            trace.len().to_string(),
            heap_ok.to_string(),
            par_ok.to_string(),
        ]);
    }
    let events = reference.iter().map(|(_, t)| t.lines().count() as u64).sum();

    // One full smart-home run feeds the aggregator: per-component event
    // histograms plus the hottest switches and µmboxes.
    let (d, _) = scenario::smart_home(Defense::iotsec(), seed);
    let tracer = Tracer::new(config);
    let mut w = World::new_traced(&d, tracer.clone());
    w.env.occupied = true;
    w.run_until_attack_done(SimDuration::from_secs(300));
    let mut agg = TraceAggregator::new();
    agg.observe_all(&tracer.events());
    let summary = agg.render(5);

    TraceReport { table, summary, events, queue_identical, threads_identical, divergences }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_grid_is_canonical() {
        assert_eq!(trace_jobs(7), trace_jobs(7));
        assert_eq!(trace_jobs(7).len(), 3);
    }
}
