//! Markdown table rendering for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned markdown table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of displayable items.
    pub fn rowd<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as aligned markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n### {}\n", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, " {c:<w$} |");
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.rowd(&["alpha", "1"]);
        t.rowd(&["beta-long", "22"]);
        let s = t.render();
        assert!(s.contains("### demo"));
        assert!(s.contains("| alpha     | 1     |"));
        assert!(s.contains("| beta-long | 22    |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.rowd(&["only-one"]);
    }
}
