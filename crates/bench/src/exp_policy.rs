//! Policy-layer experiments: Table 2 (recipe corpus), E1/A1 (state
//! explosion and pruning), E2 (conflict detection).

use crate::Table;
use iotdev::device::{DeviceClass, DeviceId};
use iotdev::vuln::Vulnerability;
use iotpolicy::compile::PolicyCompiler;
use iotpolicy::conflict::{find_recipe_conflicts, plant_conflicts};
use iotpolicy::prune::{collapse_count, factor};
use iotpolicy::recipe::{default_target_pool, table2_corpus, Table2Anchor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// T2 — reproduce Table 2: the cross-device recipe corpus, with the
/// conflict analysis the paper says IFTTT cannot do.
pub fn table2(seed: u64) -> Table {
    let mut t = Table::new(
        "T2: Table 2 — cross-device recipes per anchor device, with conflict analysis",
        &["device", "paper count", "generated", "parse round-trip", "contradictions"],
    );
    let pool = default_target_pool();
    let mut rng = StdRng::seed_from_u64(seed);
    let corpus = table2_corpus(&pool, &mut rng);
    for (anchor, recipes) in &corpus {
        let name = match anchor {
            Table2Anchor::NestProtect => "NEST Protect",
            Table2Anchor::WemoInsight => "Wemo Insight",
            Table2Anchor::ScoutAlarm => "Scout Alarm",
        };
        let round_trip_ok = recipes.iter().all(|r| {
            iotpolicy::recipe::parse(r.id, &r.to_text()).map(|p| p == *r).unwrap_or(false)
        });
        let conflicts = find_recipe_conflicts(recipes).len();
        t.rowd(&[
            name.to_string(),
            anchor.paper_count().to_string(),
            recipes.len().to_string(),
            round_trip_ok.to_string(),
            conflicts.to_string(),
        ]);
    }
    // And the combined corpus: conflicts across anchors too.
    let all: Vec<_> = corpus.iter().flat_map(|(_, r)| r.clone()).collect();
    t.rowd(&[
        "combined".to_string(),
        "478".to_string(),
        all.len().to_string(),
        "-".to_string(),
        find_recipe_conflicts(&all).len().to_string(),
    ]);
    t
}

/// The E1/E19 population-scaling policy: `n_devices` cameras (every
/// third carrying a default-credential vuln, which widens its context
/// domain), `coupled_pairs` cross-device protection rules, and one
/// tracked environment variable.
pub fn policy_for(n_devices: u32, coupled_pairs: u32) -> iotpolicy::policy::FsmPolicy {
    let mut c = PolicyCompiler::new();
    for i in 0..n_devices {
        let vulns = if i % 3 == 0 { vec![Vulnerability::default_admin_admin()] } else { vec![] };
        c.device(DeviceId(i), DeviceClass::Camera, &vulns);
    }
    for p in 0..coupled_pairs.min(n_devices / 2) {
        c.protect_on_suspicion(DeviceId(2 * p), DeviceId(2 * p + 1));
    }
    c.env(iotdev::env::EnvVar::Occupancy);
    c.build()
}

/// E1 — state-space explosion vs pruning: raw `|S|` grows
/// combinatorially; the factored (independence-pruned) space grows
/// linearly for sparsely coupled deployments.
pub fn state_space() -> Table {
    let mut t = Table::new(
        "E1: state-space explosion vs independence pruning",
        &[
            "devices",
            "coupled pairs",
            "raw |S|",
            "pruned (factored)",
            "reduction",
            "posture classes",
        ],
    );
    for n in [2u32, 4, 6, 8, 10, 12, 14] {
        let pairs = n / 4;
        let policy = policy_for(n, pairs);
        let f = factor(&policy);
        let raw = policy.schema.size();
        // The packed memoized engine (E19) raised the feasible-enumeration
        // ceiling from 1 << 20 to 1 << 23 states: the n = 12 row, "-"
        // before, now fills in well under a second.
        let classes =
            collapse_count(&policy, 1 << 23).map(|c| c.to_string()).unwrap_or_else(|| "-".into());
        t.rowd(&[
            n.to_string(),
            pairs.to_string(),
            raw.to_string(),
            f.effective_states().to_string(),
            format!("{:.1}x", f.reduction_ratio()),
            classes,
        ]);
    }
    t
}

/// A1 — pruning ablation: coupling density vs achievable reduction.
/// Dense coupling defeats independence factoring, exactly as expected.
pub fn state_space_ablation() -> Table {
    let mut t = Table::new(
        "A1: pruning ablation — coupling density vs reduction",
        &["devices", "coupled pairs", "components", "pruned states", "reduction"],
    );
    let n = 12u32;
    for pairs in [0u32, 1, 2, 3, 4, 5, 6] {
        let policy = policy_for(n, pairs);
        let f = factor(&policy);
        t.rowd(&[
            n.to_string(),
            pairs.to_string(),
            f.components.len().to_string(),
            f.effective_states().to_string(),
            format!("{:.1}x", f.reduction_ratio()),
        ]);
    }
    t
}

/// E2 — conflict detection accuracy against planted ground truth.
pub fn conflicts(seed: u64) -> Table {
    let mut t = Table::new(
        "E2: recipe-conflict detection vs planted contradictions",
        &["corpus size", "planted", "detected planted", "recall", "organic conflicts"],
    );
    let pool = default_target_pool();
    for planted_n in [5usize, 10, 20, 40] {
        let mut rng = StdRng::seed_from_u64(seed + planted_n as u64);
        let corpus = table2_corpus(&pool, &mut rng);
        let mut recipes: Vec<_> = corpus.into_iter().flat_map(|(_, r)| r).collect();
        let organic_before = find_recipe_conflicts(&recipes).len();
        let planted = plant_conflicts(&mut recipes, planted_n, &mut rng);
        let found = find_recipe_conflicts(&recipes);
        let detected = planted
            .iter()
            .filter(|(a, b)| {
                found.iter().any(|c| (c.a == *a && c.b == *b) || (c.a == *b && c.b == *a))
            })
            .count();
        t.rowd(&[
            recipes.len().to_string(),
            planted.len().to_string(),
            detected.to_string(),
            format!("{:.0}%", 100.0 * detected as f64 / planted.len().max(1) as f64),
            organic_before.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_counts() {
        let t = table2(7);
        assert_eq!(t.len(), 4);
        let s = t.render();
        assert!(s.contains("188"));
        assert!(s.contains("227"));
        assert!(s.contains("63"));
    }

    #[test]
    fn state_space_reduction_grows() {
        let s = state_space().render();
        assert!(s.contains("x"));
    }

    #[test]
    fn conflict_recall_is_total() {
        let s = conflicts(3).render();
        // Planted contradictions are exact-by-construction: 100% recall.
        assert!(s.matches("100%").count() >= 4, "{s}");
    }
}
