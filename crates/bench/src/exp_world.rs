//! World-level experiments: Table 1, Figures 3–5 and the end-to-end
//! campaign (E11).

use crate::Table;
use iotdev::registry::SkuRegistry;
use iotnet::time::SimDuration;
use iotsec::defense::{Defense, IoTSecConfig};
use iotsec::metrics::Metrics;
use iotsec::scenario;
use iotsec::world::World;

fn defense_label(d: &Defense) -> &'static str {
    match d {
        Defense::None => "none",
        Defense::Perimeter => "perimeter",
        Defense::IoTSec(cfg) if cfg.hierarchical => "iotsec-hier",
        Defense::IoTSec(_) => "iotsec",
    }
}

/// Whether the row's exploit landed (the same notion the paper's Table 1
/// reports: data exposure, actuator control, or DDoS participation).
pub fn exploit_landed(row: u8, m: &Metrics) -> bool {
    match row {
        1..=3 => !m.privacy_leaked.is_empty(),
        4 | 5 | 7 => !m.compromised.is_empty(),
        6 => m.ddos_bytes_at_victim > 0,
        _ => unreachable!(),
    }
}

/// T1 — Table 1 reproduced, with outcome columns per defense.
pub fn table1() -> Table {
    let registry = SkuRegistry::table1();
    let mut t = Table::new(
        "T1: Table 1 — known IoT vulnerabilities, exploited under each defense",
        &["row", "device", "population", "vulnerability", "undefended", "perimeter", "iotsec"],
    );
    for row in 1..=7u8 {
        let entry = registry.by_row(row).unwrap();
        let mut outcome = Vec::new();
        for defense in [Defense::None, Defense::Perimeter, Defense::iotsec()] {
            let (d, _) = scenario::table1_row(row, defense);
            let mut w = World::new(&d);
            w.run_until_attack_done(SimDuration::from_secs(120));
            let m = w.report();
            crate::metrics::record_world(&w);
            outcome.push(if exploit_landed(row, &m) { "EXPLOITED" } else { "protected" });
        }
        t.rowd(&[
            row.to_string(),
            format!("{} ({})", entry.sku, entry.class.name()),
            entry.population.to_string(),
            entry.description.to_string(),
            outcome[0].to_string(),
            outcome[1].to_string(),
            outcome[2].to_string(),
        ]);
    }
    t
}

/// F4 — Figure 4: the password-proxy security gateway.
pub fn figure4() -> Table {
    let mut t = Table::new(
        "F4: Figure 4 — patching an exposed password with a proxy umbox",
        &["defense", "dictionary login", "image stolen", "config stolen", "proxy intercepts"],
    );
    for defense in [Defense::None, Defense::Perimeter, Defense::iotsec()] {
        let label = defense_label(&defense);
        let (d, cam) = scenario::figure4(defense);
        let mut w = World::new(&d);
        w.run_until_attack_done(SimDuration::from_secs(120));
        let m = w.report();
        crate::metrics::record_world(&w);
        let login_ok = m.attack_outcomes.first().map(|o| o.success).unwrap_or(false);
        t.rowd(&[
            label.to_string(),
            if login_ok { "SUCCEEDED" } else { "blocked" }.to_string(),
            m.privacy_leaked.contains(&cam).to_string(),
            (m.steps_succeeded() >= 3).to_string(),
            m.umbox_intercepts.to_string(),
        ]);
    }
    t
}

/// F5 — Figure 5: the cross-device context gate.
pub fn figure5() -> Table {
    let mut t = Table::new(
        "F5: Figure 5 — allow ON to the Wemo only when somebody is home",
        &[
            "defense",
            "backdoor OFF landed",
            "backdoor ON landed",
            "attacker controls power",
            "umbox drops",
        ],
    );
    for defense in [Defense::None, Defense::Perimeter, Defense::iotsec()] {
        let label = defense_label(&defense);
        let (d, wemo, _) = scenario::figure5(defense);
        let mut w = World::new(&d);
        w.env.occupied = false;
        w.run_until_attack_done(SimDuration::from_secs(180));
        let m = w.report();
        crate::metrics::record_world(&w);
        let off_landed = m.attack_outcomes.first().map(|o| o.success).unwrap_or(false);
        let on_landed = m.attack_outcomes.get(1).map(|o| o.success).unwrap_or(false);
        t.rowd(&[
            label.to_string(),
            off_landed.to_string(),
            on_landed.to_string(),
            m.compromised.contains(&wemo).to_string(),
            m.umbox_drops.to_string(),
        ]);
    }
    t
}

/// F3 — Figure 3: the fire-alarm / window FSM policy, executed.
pub fn figure3() -> Table {
    let mut t = Table::new(
        "F3: Figure 3 — FSM policy: backdoor on the alarm blocks 'open' to the window",
        &[
            "defense",
            "backdoor touched",
            "window open sent",
            "window ended open",
            "physical breach",
        ],
    );
    for defense in [Defense::None, Defense::iotsec()] {
        let label = defense_label(&defense);
        let (d, _alarm, _window) = scenario::figure3(defense);
        let mut w = World::new(&d);
        w.env.occupied = false;
        w.run_until_attack_done(SimDuration::from_secs(180));
        let m = w.report();
        crate::metrics::record_world(&w);
        t.rowd(&[
            label.to_string(),
            m.attack_outcomes.first().map(|o| o.success).unwrap_or(false).to_string(),
            (m.attack_outcomes.len() > 1).to_string(),
            w.env.window_open.to_string(),
            m.physical_breach.to_string(),
        ]);
    }
    t
}

/// E11 — end-to-end smart-home campaign under every defense, plus the
/// break-in chain.
pub fn endtoend() -> Vec<Table> {
    let mut sweep = Table::new(
        "E11a: smart home (11 devices, 7 flaws) under a full exploit sweep",
        &["defense", "compromised", "privacy leaks", "ddos bytes", "steps ok", "umbox blocks"],
    );
    let defenses: Vec<Defense> = vec![
        Defense::None,
        Defense::Perimeter,
        Defense::iotsec(),
        Defense::IoTSec(IoTSecConfig { hierarchical: true, ..IoTSecConfig::default() }),
    ];
    for defense in defenses {
        let label = defense_label(&defense);
        let (d, _) = scenario::smart_home(defense, 7);
        let mut w = World::new(&d);
        w.env.occupied = true;
        w.run_until_attack_done(SimDuration::from_secs(300));
        let m = w.report();
        crate::metrics::record_world(&w);
        sweep.rowd(&[
            label.to_string(),
            m.compromised.len().to_string(),
            m.privacy_leaked.len().to_string(),
            m.ddos_bytes_at_victim.to_string(),
            format!("{}/{}", m.steps_succeeded(), m.attack_outcomes.len()),
            (m.umbox_drops + m.umbox_intercepts).to_string(),
        ]);
    }

    let mut chain = Table::new(
        "E11b: the multi-stage cyber-physical break-in chain",
        &["defense", "plug compromised", "temp (C)", "window open", "physical breach"],
    );
    for defense in [Defense::None, Defense::Perimeter, Defense::iotsec()] {
        let label = defense_label(&defense);
        let (d, plug, _) = scenario::breakin_chain(defense);
        let mut w = World::new(&d);
        w.env.occupied = false;
        w.env.ambient_c = 35.0;
        w.run_until_attack_done(SimDuration::from_secs(3600));
        let m = w.report();
        crate::metrics::record_world(&w);
        chain.rowd(&[
            label.to_string(),
            m.compromised.contains(&plug).to_string(),
            format!("{:.1}", w.env.temperature_c),
            w.env.window_open.to_string(),
            m.physical_breach.to_string(),
        ]);
    }
    vec![sweep, chain]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds() {
        let t = table1();
        assert_eq!(t.len(), 7);
        let s = t.render();
        // The headline shape: undefended exploited, iotsec protected.
        assert!(s.matches("EXPLOITED").count() >= 13, "{s}");
        for line in s.lines().filter(|l| l.starts_with("| ")) {
            if line.contains("EXPLOITED") || line.contains("protected") {
                assert!(
                    line.trim_end().ends_with("protected |"),
                    "iotsec column must protect: {line}"
                );
            }
        }
    }

    #[test]
    fn figure_tables_render() {
        assert_eq!(figure4().len(), 3);
        assert_eq!(figure5().len(), 3);
        assert_eq!(figure3().len(), 2);
    }
}
