//! Per-experiment engine counters, threaded into every JSON record.
//!
//! `BENCH_E16.json` used to report `events_processed: 0` and
//! `cache_hit_rate: 0.0` for every experiment except E16 itself — the
//! runner had no way to see the engine work done inside `table1`,
//! `fig3`–`fig5`, `endtoend`, `chaos` or `safety`. This module gives the
//! runner that visibility without touching any experiment signature: a
//! thread-local [`MetricsRegistry`] that each world-running experiment
//! feeds ([`record_world`]) as it finishes a world, and the runner
//! drains ([`take`]) after each experiment to populate that row's
//! record.
//!
//! Thread-local is the right scope: worlds in the non-perf experiments
//! run serially on the runner's thread. The parallel sweeps (E16/E17)
//! run worlds on worker threads, but those experiments already report
//! their counters through their own ledgers — the registry is their
//! fallback, not their source.

use std::cell::RefCell;
use trace::registry::{MetricValue, MetricsRegistry};

thread_local! {
    static REGISTRY: RefCell<MetricsRegistry> = RefCell::new(MetricsRegistry::new());
}

/// Clear the calling thread's experiment registry.
pub fn reset() {
    REGISTRY.with(|r| *r.borrow_mut() = MetricsRegistry::new());
}

/// Add one engine-work observation: simulation events processed plus
/// flow-decision-cache lookups and hits.
pub fn add_work(events: u64, cache_lookups: u64, cache_hits: u64) {
    REGISTRY.with(|r| {
        let mut reg = r.borrow_mut();
        reg.counter("engine.events_processed", events);
        reg.counter("net.cache_lookups", cache_lookups);
        reg.counter("net.cache_hits", cache_hits);
    });
}

/// Record a finished world's engine counters.
pub fn record_world(w: &iotsec::world::World) {
    let (lookups, hits) = w.net.cache_stats();
    add_work(w.net.events_processed(), lookups, hits);
}

fn counter(reg: &MetricsRegistry, name: &str) -> u64 {
    match reg.get(name) {
        Some(MetricValue::Counter(c)) => c,
        _ => 0,
    }
}

/// Drain the registry: `(events_processed, cache_hit_rate)` accumulated
/// since the last [`reset`]/[`take`], leaving the registry empty.
pub fn take() -> (u64, f64) {
    REGISTRY.with(|r| {
        let reg = std::mem::take(&mut *r.borrow_mut());
        let events = counter(&reg, "engine.events_processed");
        let lookups = counter(&reg, "net.cache_lookups");
        let hits = counter(&reg, "net.cache_hits");
        let rate = if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 };
        (events, rate)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_drains_accumulated_work() {
        reset();
        add_work(100, 10, 4);
        add_work(50, 10, 6);
        let (events, rate) = take();
        assert_eq!(events, 150);
        assert!((rate - 0.5).abs() < 1e-9);
        // Drained: the next take sees nothing.
        assert_eq!(take(), (0, 0.0));
    }

    #[test]
    fn zero_lookups_is_zero_rate_not_nan() {
        reset();
        add_work(7, 0, 0);
        let (events, rate) = take();
        assert_eq!(events, 7);
        assert_eq!(rate, 0.0);
    }
}
