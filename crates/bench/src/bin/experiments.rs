//! The experiment runner: regenerates every table and figure of the
//! paper plus the quantitative E-series.
//!
//! ```text
//! cargo run --release -p iotsec-bench --bin experiments          # all
//! cargo run --release -p iotsec-bench --bin experiments table1   # one
//! ```

use iotsec_bench::{
    exp_anomaly, exp_chaos, exp_crowd, exp_ctl, exp_models, exp_pipeline, exp_policy, exp_umbox,
    exp_world,
};

const SEED: u64 = 20151116; // HotNets '15, November 16

fn run(id: &str) -> bool {
    match id {
        "table1" | "t1" => exp_world::table1().print(),
        "table2" | "t2" => exp_policy::table2(SEED).print(),
        "fig3" | "f3" => exp_world::figure3().print(),
        "fig4" | "f4" => exp_world::figure4().print(),
        "fig5" | "f5" => exp_world::figure5().print(),
        "state_space" | "e1" => exp_policy::state_space().print(),
        "state_space_ablation" | "a1" => exp_policy::state_space_ablation().print(),
        "conflicts" | "e2" => exp_policy::conflicts(SEED).print(),
        "crowd" | "e3" | "a3" => exp_crowd::crowd(SEED).print(),
        "coverage" | "e4" => exp_crowd::coverage(SEED).print(),
        "fuzz" | "e5" => exp_models::fuzz(SEED).print(),
        "attack_graph" | "e6" => exp_models::attack_graph(SEED).print(),
        "control_plane" | "e7" | "a2" => exp_ctl::control_plane().print(),
        "consistency" | "e8" => exp_ctl::consistency().print(),
        "umbox_agility" | "e9" => exp_umbox::umbox_agility().print(),
        "dataplane" | "e10" => exp_umbox::dataplane().print(),
        "endtoend" | "e11" => {
            for t in exp_world::endtoend() {
                t.print();
            }
        }
        "anomaly" | "e12" => exp_anomaly::anomaly(SEED).print(),
        "mining" | "e13" => exp_pipeline::mining().print(),
        "fingerprinting" | "e14" => exp_pipeline::fingerprinting(SEED).print(),
        "chaos" | "e15" => {
            for t in exp_chaos::chaos(SEED) {
                t.print();
            }
        }
        _ => return false,
    }
    true
}

const ALL: &[&str] = &[
    "table1",
    "table2",
    "fig3",
    "fig4",
    "fig5",
    "state_space",
    "state_space_ablation",
    "conflicts",
    "crowd",
    "coverage",
    "fuzz",
    "attack_graph",
    "control_plane",
    "consistency",
    "umbox_agility",
    "dataplane",
    "endtoend",
    "anomaly",
    "mining",
    "fingerprinting",
    "chaos",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("# IoTSec reproduction — experiment run (seed {SEED})");
    if args.is_empty() || args[0] == "all" {
        for id in ALL {
            assert!(run(id), "unknown experiment {id}");
        }
        return;
    }
    for id in &args {
        if !run(id) {
            eprintln!("unknown experiment '{id}'. available: all {}", ALL.join(" "));
            std::process::exit(2);
        }
    }
}
