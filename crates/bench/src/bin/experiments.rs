//! The experiment runner: regenerates every table and figure of the
//! paper plus the quantitative E-series.
//!
//! ```text
//! cargo run --release -p iotsec-bench --bin experiments            # all
//! cargo run --release -p iotsec-bench --bin experiments table1     # one
//! cargo run --release -p iotsec-bench --bin experiments e16 --threads 4
//! cargo run --release -p iotsec-bench --bin experiments all --json # + BENCH_E16.json
//! cargo run --release -p iotsec-bench --bin experiments --trace    # E17 trace harness
//! ```
//!
//! `--homes N` / `--rounds N` override the fleet-shaped arms'
//! (e20/e25/e26) population and round count for ad-hoc scaling runs —
//! leave them off when regenerating the checked-in BENCH_*.json files,
//! which CI byte-compares at the committed defaults.
//! `--threads N` sets the worker count for the E16 parallel sweep;
//! `--json` writes `BENCH_E16.json` with one record per experiment run
//! (wall-clock for each, plus engine/cache counters for E16). If E16's
//! parallel digests diverge from the serial reference the process exits
//! non-zero — the CI perf-smoke job depends on that. The `e18` arm
//! always writes `BENCH_E18.json` (sim-time metrics only, so the file
//! is byte-stable) and exits non-zero on any safety-gate failure — the
//! CI safety-gate job depends on *that*. The `e19` arm always writes
//! `BENCH_E19.json` (stable digests plus a `wall_ms`-marked volatile
//! timing section) and exits non-zero if any state-space engine
//! diverges from the serial packed reference — the CI state-space-gate
//! job depends on that. The `e20` arm always writes `BENCH_E20.json`
//! (stable fleet digest, propagation counters and leg agreement plus a
//! `wall_ms` volatile section carrying homes/sec, directives/sec and
//! bytes/home) and exits non-zero if any fleet leg — serial rerun or
//! work-stealing parallel — diverges from the serial reference, or if
//! the one-discovery → fleet-wide-install propagation fact fails — the
//! CI fleet-gate job depends on that. The `e21` arm always writes `BENCH_E21.json`
//! (stable sweep digests, engine counters and the steady-state
//! allocation verdict plus a `wall_ms` volatile timing section) and
//! exits non-zero if any engine arm — legacy heap queue, packed wheel,
//! serial or parallel — diverges from the packed-serial reference, or
//! if the packed steady state allocates at all (this binary installs a
//! counting global allocator so E21 can measure allocs/event for real)
//! — the CI engine-gate job depends on that. The `e23` arm always
//! writes `BENCH_E23.json`
//! (stable campaign fingerprint and shrink statistics plus a `wall_ms`
//! volatile line) and exits non-zero if the vet campaign finds a
//! violation or a vacuous scenario, if the parallel sweep diverges from
//! the serial reference, or if the weakened-defense arm fails to
//! produce a shrinkable violation — the CI vet-gate job depends on
//! that. The `e25` arm always writes `BENCH_E25.json` (stable per-cell
//! convergence rounds, digests and fault/recovery counters plus a
//! `wall_ms` volatile section) and exits non-zero if any chaos cell
//! fails to recover by the deadline, trips the fleet trace checker, or
//! diverges on rerun — the CI fleet-chaos-gate job depends on that.
//! The `e26` arm always writes `BENCH_E26.json` (stable per-arm fleet
//! digests, memo and resident-stats counters plus a `wall_ms` volatile
//! section carrying steady-state homes/sec, bytes/home-round and the
//! rebuild-vs-resident ratios) and exits non-zero if any resident leg
//! diverges from its rebuild reference or the churn arms fail the
//! amortization gate — the CI resident-gate job depends on that.

use iotsec_bench::{
    exp_anomaly, exp_chaos, exp_crowd, exp_ctl, exp_engine, exp_fleet, exp_fleet_chaos, exp_models,
    exp_perf, exp_pipeline, exp_policy, exp_resident, exp_safety, exp_space, exp_trace, exp_umbox,
    exp_vet, exp_world, metrics,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const SEED: u64 = 20151116; // HotNets '15, November 16

/// Counting allocator: E21's steady-state probe reads this to pin
/// allocs/event for real (the library crates are `#![forbid(unsafe_code)]`,
/// so the counter lives in the binary, mirroring `tests/alloc_counter.rs`).
/// Counts allocations and reallocations; frees are irrelevant to the
/// zero-alloc claim.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn alloc_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// One experiment's JSON record. Every record carries the full field
/// set; only E16 populates the engine counters.
struct Record {
    experiment: String,
    wall_ms: u128,
    events_processed: u64,
    cache_hit_rate: f64,
    threads: usize,
    deterministic: bool,
}

/// CLI overrides for the fleet-shaped arms (e20/e25/e26): `--homes N`
/// and `--rounds N`. `None` keeps each experiment's committed defaults
/// (the byte-stable configuration CI gates on).
#[derive(Clone, Copy, Default)]
struct FleetOverrides {
    homes: Option<u32>,
    rounds: Option<u32>,
}

fn run(id: &str, threads: usize, fleet_cfg: FleetOverrides) -> Option<(u64, f64, bool)> {
    match id {
        "table1" | "t1" => exp_world::table1().print(),
        "table2" | "t2" => exp_policy::table2(SEED).print(),
        "fig3" | "f3" => exp_world::figure3().print(),
        "fig4" | "f4" => exp_world::figure4().print(),
        "fig5" | "f5" => exp_world::figure5().print(),
        "state_space" | "e1" => exp_policy::state_space().print(),
        "state_space_ablation" | "a1" => exp_policy::state_space_ablation().print(),
        "conflicts" | "e2" => exp_policy::conflicts(SEED).print(),
        "crowd" | "e3" | "a3" => exp_crowd::crowd(SEED).print(),
        "coverage" | "e4" => exp_crowd::coverage(SEED).print(),
        "fuzz" | "e5" => exp_models::fuzz(SEED).print(),
        "attack_graph" | "e6" => exp_models::attack_graph(SEED).print(),
        "control_plane" | "e7" | "a2" => exp_ctl::control_plane().print(),
        "consistency" | "e8" => exp_ctl::consistency().print(),
        "umbox_agility" | "e9" => exp_umbox::umbox_agility().print(),
        "dataplane" | "e10" => exp_umbox::dataplane().print(),
        "endtoend" | "e11" => {
            for t in exp_world::endtoend() {
                t.print();
            }
        }
        "anomaly" | "e12" => exp_anomaly::anomaly(SEED).print(),
        "mining" | "e13" => exp_pipeline::mining().print(),
        "fingerprinting" | "e14" => exp_pipeline::fingerprinting(SEED).print(),
        "chaos" | "e15" => {
            for t in exp_chaos::chaos(SEED) {
                t.print();
            }
        }
        "perf" | "e16" => {
            let report = exp_perf::perf(SEED, threads);
            report.table.print();
            println!(
                "E16 summary: serial {} ms, parallel({}) {} ms, speedup {:.2}x, \
                 {} events, cache hit rate {:.3}, deterministic: {}",
                report.wall_ms_serial,
                report.threads,
                report.wall_ms_parallel,
                report.speedup(),
                report.events_processed,
                report.cache_hit_rate,
                report.deterministic,
            );
            println!();
            return Some((report.events_processed, report.cache_hit_rate, report.deterministic));
        }
        "trace" | "e17" => {
            let report = exp_trace::trace(SEED, threads);
            report.table.print();
            println!("{}", report.summary);
            for d in &report.divergences {
                println!("{d}");
            }
            println!(
                "E17 summary: {} trace events, heap-vs-wheel identical: {}, \
                 parallel-vs-serial identical: {}",
                report.events, report.queue_identical, report.threads_identical,
            );
            println!();
            return Some((report.events, 0.0, report.deterministic()));
        }
        "safety" | "e18" => {
            let report = exp_safety::safety(SEED);
            report.table.print();
            println!("{}", report.summary);
            println!();
            let path = "BENCH_E18.json";
            std::fs::write(path, report.render_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("wrote {path}");
            return Some((report.violations_baseline, 0.0, report.deterministic()));
        }
        "space" | "e19" => {
            let report = exp_space::space();
            report.table.print();
            println!("{}", report.summary);
            println!();
            let path = "BENCH_E19.json";
            std::fs::write(path, report.render_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("wrote {path}");
            return Some((report.states_total(), report.memo_hit_rate(), report.deterministic));
        }
        "fleet" | "e20" => {
            let report = exp_fleet::fleet(&alloc_bytes, fleet_cfg.homes, fleet_cfg.rounds);
            report.table.print();
            println!("{}", report.summary);
            println!();
            let path = "BENCH_E20.json";
            std::fs::write(path, report.render_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("wrote {path}");
            return Some((report.reference.events, 0.0, report.deterministic));
        }
        "engine" | "e21" => {
            let report = exp_engine::engine(&alloc_count);
            report.table.print();
            println!("{}", report.summary);
            println!();
            let path = "BENCH_E21.json";
            std::fs::write(path, report.render_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("wrote {path}");
            return Some((report.events_total, report.cache_hit_rate(), report.deterministic));
        }
        "vet" | "e23" => {
            let report = exp_vet::vet(SEED, threads);
            report.table.print();
            println!("{}", report.summary);
            println!();
            let path = "BENCH_E23.json";
            std::fs::write(path, report.render_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("wrote {path}");
            return Some((report.scenarios as u64, 0.0, report.deterministic()));
        }
        "fleet_chaos" | "e25" => {
            let report = exp_fleet_chaos::fleet_chaos(fleet_cfg.homes, fleet_cfg.rounds);
            report.table.print();
            println!("{}", report.summary);
            println!();
            let path = "BENCH_E25.json";
            std::fs::write(path, report.render_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("wrote {path}");
            let faults: u64 = report.cells.iter().map(|c| c.faults).sum();
            return Some((faults, 0.0, report.deterministic));
        }
        "resident" | "e26" => {
            let report = exp_resident::resident(&alloc_bytes, fleet_cfg.homes, fleet_cfg.rounds);
            report.table.print();
            println!("{}", report.summary);
            println!();
            let path = "BENCH_E26.json";
            std::fs::write(path, report.render_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("wrote {path}");
            let runs: u64 = report.arms.iter().map(|a| a.stats.resident_runs).sum();
            return Some((runs, 0.0, report.deterministic));
        }
        _ => return None,
    }
    Some((0, 0.0, true))
}

const ALL: &[&str] = &[
    "table1",
    "table2",
    "fig3",
    "fig4",
    "fig5",
    "state_space",
    "state_space_ablation",
    "conflicts",
    "crowd",
    "coverage",
    "fuzz",
    "attack_graph",
    "control_plane",
    "consistency",
    "umbox_agility",
    "dataplane",
    "endtoend",
    "anomaly",
    "mining",
    "fingerprinting",
    "chaos",
    "perf",
    "trace",
    "safety",
    "space",
    "fleet",
    "engine",
    "vet",
    "fleet_chaos",
    "resident",
];

fn render_json(seed: u64, threads: usize, records: &[Record]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"experiment\": \"{}\", \"seed\": {}, \"threads\": {}, \"wall_ms\": {}, \
             \"events_processed\": {}, \"cache_hit_rate\": {:.4}, \"deterministic\": {}}}{}\n",
            r.experiment,
            seed,
            r.threads,
            r.wall_ms,
            r.events_processed,
            r.cache_hit_rate,
            r.deterministic,
            if i + 1 == records.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut json = false;
    let mut threads = 2usize;
    let mut fleet_cfg = FleetOverrides::default();
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--trace" => ids.push("trace".to_string()),
            "--threads" => {
                let v = args.next().unwrap_or_default();
                threads = v.parse().unwrap_or_else(|_| {
                    eprintln!("--threads needs a positive integer, got '{v}'");
                    std::process::exit(2);
                });
            }
            "--homes" => {
                let v = args.next().unwrap_or_default();
                fleet_cfg.homes = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--homes needs a positive integer, got '{v}'");
                    std::process::exit(2);
                }));
            }
            "--rounds" => {
                let v = args.next().unwrap_or_default();
                fleet_cfg.rounds = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--rounds needs a positive integer, got '{v}'");
                    std::process::exit(2);
                }));
            }
            _ => ids.push(arg),
        }
    }
    let to_run: Vec<&str> = if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ALL.to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };

    println!("# IoTSec reproduction — experiment run (seed {SEED})");
    let mut records = Vec::new();
    let mut diverged = false;
    for id in &to_run {
        metrics::reset();
        let start = Instant::now();
        let Some((events, hit_rate, deterministic)) = run(id, threads, fleet_cfg) else {
            eprintln!("unknown experiment '{id}'. available: all {}", ALL.join(" "));
            std::process::exit(2);
        };
        let wall_ms = start.elapsed().as_millis();
        // Experiments that run worlds on this thread accumulate their
        // engine counters in the thread-local registry; prefer those
        // over the (often zero) values the arm returned directly.
        let (reg_events, reg_rate) = metrics::take();
        let (events, hit_rate) =
            if reg_events > 0 { (reg_events, reg_rate) } else { (events, hit_rate) };
        diverged |= !deterministic;
        records.push(Record {
            experiment: id.to_string(),
            wall_ms,
            events_processed: events,
            cache_hit_rate: hit_rate,
            threads,
            deterministic,
        });
    }
    if json {
        let path = "BENCH_E16.json";
        std::fs::write(path, render_json(SEED, threads, &records)).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path} ({} records)", records.len());
    }
    if diverged {
        eprintln!(
            "determinism check FAILED: a parallel or packed engine diverged from its \
             serial reference"
        );
        std::process::exit(1);
    }
}
