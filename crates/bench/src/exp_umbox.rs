//! Data-plane experiments: E9 (µmbox agility) and E10 (per-packet
//! overhead, per-device chains vs a monolithic perimeter IDS).

use crate::Table;
use iotdev::device::{AdminCreds, DeviceId};
use iotdev::proto::{ports, AppMessage, TelemetryKind};
use iotdev::registry::Sku;
use iotlearn::signature::{AttackSignature, Matcher, Severity};
use iotnet::addr::{Ipv4Addr, MacAddr};
use iotnet::packet::{Packet, TransportHeader};
use iotnet::time::{SimDuration, SimTime};
use iotpolicy::posture::{Posture, SecurityModule};
use umbox::chain::{build_chain, ChainConfig};
use umbox::element::{EventSink, ViewHandle};
use umbox::lifecycle::{LifecycleManager, VmKind};
use umbox::resource::Cluster;

/// E9 — instantiation and reconfiguration latency per realization, and
/// how many fit on the home router.
pub fn umbox_agility() -> Table {
    let mut t = Table::new(
        "E9: umbox agility — instantiation / reconfiguration latency and router capacity",
        &[
            "realization",
            "instantiate",
            "reconfigure",
            "service drop during reconfig",
            "fit on IoT router",
        ],
    );
    for kind in [
        VmKind::UnikernelPooled,
        VmKind::Unikernel,
        VmKind::Container,
        VmKind::FullVm,
        VmKind::Monolithic,
    ] {
        let mut mgr = LifecycleManager::new(if kind == VmKind::UnikernelPooled { 1024 } else { 0 });
        for i in 0..100 {
            mgr.launch(DeviceId(i), kind, SimTime::ZERO);
        }
        let boot = mgr.boot_hist.median();
        let (reconf, disruptive) = kind.reconfigure();
        let router = Cluster::iot_router().remaining_slots(kind);
        t.rowd(&[
            format!("{kind:?}"),
            format!("{boot}"),
            format!("{reconf}"),
            disruptive.to_string(),
            router.to_string(),
        ]);
    }
    t
}

fn telemetry_packet() -> Packet {
    Packet::new(
        MacAddr::from_index(3),
        MacAddr::from_index(1),
        Ipv4Addr::new(10, 0, 0, 3),
        Ipv4Addr::new(10, 0, 0, 5),
        TransportHeader::udp(5683, ports::TELEMETRY),
        AppMessage::Telemetry { kind: TelemetryKind::Power, value: 4.2 }.encode(),
    )
}

fn chain_cfg(signatures: usize) -> ChainConfig {
    let sku = Sku::new("acme", "widget", "1");
    ChainConfig {
        device: DeviceId(0),
        required_creds: AdminCreds::owner_default(),
        cleared_sources: vec![],
        signatures: (0..signatures)
            .map(|i| {
                AttackSignature::new(
                    sku.clone(),
                    "x",
                    Matcher::PayloadContains(vec![0xF0, i as u8]),
                    Severity::Low,
                )
            })
            .collect(),
        view: ViewHandle::new(),
        events: EventSink::new(),
        failure_mode: umbox::chain::FailureMode::FailOpen,
        tracer: trace::Tracer::disabled(),
    }
}

/// E10 — per-packet processing latency of chains of increasing depth,
/// and the per-device vs monolithic-IDS comparison.
pub fn dataplane() -> Table {
    let mut t = Table::new(
        "E10: data-plane overhead — per-packet umbox latency (modelled processing time)",
        &["configuration", "elements", "IDS rules", "per-packet latency"],
    );
    let postures: Vec<(&str, Posture, usize)> = vec![
        ("pass-through (no umbox)", Posture::allow(), 0),
        ("proxy only", Posture::of(SecurityModule::PasswordProxy), 0),
        (
            "proxy + IDS(7 rules)",
            Posture::of(SecurityModule::PasswordProxy).with(SecurityModule::Ids { ruleset: 1 }),
            7,
        ),
        (
            "full chain (proxy+IDS+rate+whitelist+mirror)",
            Posture::of(SecurityModule::PasswordProxy)
                .with(SecurityModule::Ids { ruleset: 1 })
                .with(SecurityModule::RateLimit { pps: 10_000 })
                .with(SecurityModule::ProtocolWhitelist)
                .with(SecurityModule::Mirror),
            7,
        ),
    ];
    for (label, posture, sigs) in postures {
        let cfg = chain_cfg(sigs);
        let mut chain = build_chain(&posture, &cfg);
        let mut total = SimDuration::ZERO;
        const PKTS: u64 = 1000;
        for i in 0..PKTS {
            let v = chain.run(SimTime::from_millis(i), telemetry_packet());
            total += v.latency;
        }
        t.rowd(&[
            label.to_string(),
            chain.len().to_string(),
            sigs.to_string(),
            format!("{}", total / PKTS),
        ]);
    }

    // Per-device customization vs the monolithic perimeter box: a device
    // chain carries only its SKU's 7 rules; the enterprise IDS carries
    // every SKU's rules (7 rules × 500 SKUs).
    for (label, sigs) in [
        ("per-device IDS (7 rules, its SKU only)", 7usize),
        ("monolithic perimeter IDS (3500 rules)", 3500),
    ] {
        let cfg = chain_cfg(sigs);
        let mut chain = build_chain(&Posture::of(SecurityModule::Ids { ruleset: 1 }), &cfg);
        let v = chain.run(SimTime::ZERO, telemetry_packet());
        t.rowd(&[label.to_string(), "1".to_string(), sigs.to_string(), format!("{}", v.latency)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agility_table_orders_kinds() {
        let t = umbox_agility();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn per_device_beats_monolith() {
        let s = dataplane().render();
        assert!(s.contains("monolithic"));
        // The monolithic row's latency must be visibly larger (ms-scale
        // vs µs-scale given 3500 rules × 2 µs).
        assert!(s.contains("ms"), "{s}");
    }
}
