//! Model-based learning experiments: E5 (interaction fuzzing) and E6
//! (attack-graph search).

use crate::Table;
use iotdev::classes::PlugLoad;
use iotdev::device::{DeviceClass, DeviceId};
use iotdev::env::EnvVar;
use iotdev::model::AbstractModel;
use iotdev::proto::ControlAction;
use iotlearn::attack_graph::{AttackGraph, DeviceSpec, Fact};
use iotlearn::fuzz::{fuzz_interactions, ground_truth, Strategy};
use iotpolicy::recipe::{Recipe, RecipeAction, Trigger};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

fn household_models(extra_inert: usize) -> Vec<AbstractModel> {
    let mut models = vec![
        AbstractModel::for_device(DeviceClass::SmartPlug, Some(PlugLoad::AirConditioner)),
        AbstractModel::for_device(DeviceClass::SmartPlug, Some(PlugLoad::Oven)),
        AbstractModel::for_device(DeviceClass::SmartPlug, Some(PlugLoad::Lamp)),
        AbstractModel::for_device(DeviceClass::Thermostat, None),
        AbstractModel::for_device(DeviceClass::FireAlarm, None),
        AbstractModel::for_device(DeviceClass::WindowActuator, None),
        AbstractModel::for_device(DeviceClass::LightBulb, None),
        AbstractModel::for_device(DeviceClass::LightSensor, None),
        AbstractModel::for_device(DeviceClass::SmartLock, None),
        AbstractModel::for_device(DeviceClass::Oven, None),
    ];
    for _ in 0..extra_inert {
        models.push(AbstractModel::for_device(DeviceClass::SetTopBox, None));
        models.push(AbstractModel::for_device(DeviceClass::TrafficLight, None));
    }
    models
}

/// E5 — cross-device interaction discovery: random vs coverage-guided
/// fuzzing against the statically known edge set.
pub fn fuzz(seed: u64) -> Table {
    let mut t = Table::new(
        "E5: interaction fuzzing — recall vs trials (truth from static model analysis)",
        &["deployment", "true edges", "trials", "random recall", "guided recall"],
    );
    for (label, inert) in [("10 coupled devices", 0usize), ("+20 inert devices", 10)] {
        let models = household_models(inert);
        let truth = ground_truth(&models);
        for trials in [50u64, 200, 1000, 5000] {
            let mut recalls = Vec::new();
            for strategy in [Strategy::Random, Strategy::CoverageGuided] {
                let mut acc = 0.0;
                const REPS: u64 = 5;
                for rep in 0..REPS {
                    let mut rng = StdRng::seed_from_u64(seed + rep);
                    let r = fuzz_interactions(&models, trials, strategy, &mut rng);
                    acc += r.recall(&truth);
                }
                recalls.push(acc / REPS as f64);
            }
            t.rowd(&[
                label.to_string(),
                truth.len().to_string(),
                trials.to_string(),
                format!("{:.0}%", recalls[0] * 100.0),
                format!("{:.0}%", recalls[1] * 100.0),
            ]);
        }
    }
    t
}

fn random_deployment(n: usize, rng: &mut StdRng) -> (Vec<DeviceSpec>, Vec<Recipe>) {
    let classes = [
        (DeviceClass::SmartPlug, Some(PlugLoad::AirConditioner)),
        (DeviceClass::SmartPlug, Some(PlugLoad::Oven)),
        (DeviceClass::Thermostat, None),
        (DeviceClass::WindowActuator, None),
        (DeviceClass::SmartLock, None),
        (DeviceClass::Oven, None),
        (DeviceClass::LightBulb, None),
        (DeviceClass::Camera, None),
        (DeviceClass::FireAlarm, None),
    ];
    let vuln_ids = ["cloud-bypass-backdoor", "no-auth-control", "default-credentials"];
    let specs: Vec<DeviceSpec> = (0..n)
        .map(|i| {
            let (class, load) = *classes.choose(rng).unwrap();
            let remote_vulns = if rng.gen_bool(0.3) {
                vec![vuln_ids.choose(rng).unwrap().to_string()]
            } else {
                vec![]
            };
            DeviceSpec { id: DeviceId(i as u32), class, load, remote_vulns }
        })
        .collect();
    // A few automation recipes wiring env conditions to actuators.
    let actuator_actions: Vec<(DeviceId, ControlAction)> = specs
        .iter()
        .filter_map(|s| match s.class {
            DeviceClass::WindowActuator => Some((s.id, ControlAction::Open)),
            DeviceClass::SmartLock => Some((s.id, ControlAction::Unlock)),
            DeviceClass::LightBulb => Some((s.id, ControlAction::TurnOn)),
            DeviceClass::Oven => Some((s.id, ControlAction::TurnOn)),
            _ => None,
        })
        .collect();
    let triggers = [
        Trigger::EnvEquals(EnvVar::Temperature, "high"),
        Trigger::EnvEquals(EnvVar::Smoke, "yes"),
        Trigger::EnvEquals(EnvVar::Light, "dark"),
    ];
    let mut recipes = Vec::new();
    for i in 0..(n / 3).max(1) {
        if let Some((target, action)) = actuator_actions.choose(rng) {
            recipes.push(Recipe {
                id: i as u32,
                trigger: *triggers.choose(rng).unwrap(),
                action: RecipeAction { target: *target, action: *action },
            });
        }
    }
    (specs, recipes)
}

/// E6 — multi-stage attack search over generated deployments: how often
/// a physical-breach goal is reachable, and in how many stages.
pub fn attack_graph(seed: u64) -> Table {
    let mut t = Table::new(
        "E6: attack-graph search for multi-stage physical-breach paths",
        &["devices", "deployments", "goal reachable", "avg stages", "max stages"],
    );
    let goals = [Fact::Env(EnvVar::Window, "open"), Fact::Env(EnvVar::Door, "unlocked")];
    for n in [5usize, 10, 20, 40] {
        let mut reachable = 0;
        let mut stages_sum = 0usize;
        let mut stages_max = 0usize;
        let mut paths = 0usize;
        const DEPLOYMENTS: u64 = 30;
        for rep in 0..DEPLOYMENTS {
            let mut rng = StdRng::seed_from_u64(seed * 1000 + rep);
            let (specs, recipes) = random_deployment(n, &mut rng);
            let graph = AttackGraph::build(specs, recipes);
            let mut any = false;
            for goal in &goals {
                if let Some(path) = graph.find_attack(goal.clone()) {
                    any = true;
                    stages_sum += path.stages();
                    stages_max = stages_max.max(path.stages());
                    paths += 1;
                }
            }
            if any {
                reachable += 1;
            }
        }
        t.rowd(&[
            n.to_string(),
            DEPLOYMENTS.to_string(),
            format!("{}/{}", reachable, DEPLOYMENTS),
            if paths > 0 { format!("{:.1}", stages_sum as f64 / paths as f64) } else { "-".into() },
            stages_max.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_table_shows_guided_dominance() {
        let t = fuzz(3);
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn attack_graph_reachability_grows_with_scale() {
        let t = attack_graph(11);
        let s = t.render();
        // More devices → more vulnerable entry points → more reachable
        // goals. Check the last row reaches more often than the first.
        let fracs: Vec<f64> = s
            .lines()
            .filter(|l| l.starts_with("| ") && l.contains('/'))
            .filter_map(|l| {
                let cell = l.split('|').nth(3)?.trim().to_string();
                let (a, b) = cell.split_once('/')?;
                Some(a.trim().parse::<f64>().ok()? / b.trim().parse::<f64>().ok()?)
            })
            .collect();
        assert!(fracs.len() >= 2);
        assert!(fracs.last().unwrap() >= fracs.first().unwrap());
    }
}
