//! E23 — adversarial scenario vetting: a seeded campaign of randomized
//! homes through the defense-on/off differential oracle, plus a
//! weakened-defense arm proving the oracle and shrinker actually bite.
//!
//! The campaign arm generates `SCENARIOS` scenarios from consecutive
//! seeds (correct defense: fail-closed chains, full safety stack) and
//! runs each through `iotsec_fuzz::oracle::run`. The CI vet gate
//! requires:
//!
//! * **zero violations** — the shipping defense holds every E18 + vet
//!   invariant on every generated home;
//! * **zero vacuous passes** — every scenario's attack lands when
//!   undefended, so the passes mean something;
//! * **thread invariance** — per-scenario digests from the parallel
//!   sweep match the serial reference byte for byte;
//! * **reproducibility** — a second serial run matches the first;
//! * **a sharp oracle** — the weakened arm (quarantine escalation
//!   disabled, chains failing open) produces at least one violation,
//!   and every violation shrinks to a small replayable repro.
//!
//! `BENCH_E23.json` records the stable campaign digest and shrink
//! statistics (sim-derived, byte-stable) plus one `wall_ms`-marked
//! volatile line; CI diffs the file with `-I'wall_ms'`.

use crate::sweep::run_sweep;
use crate::Table;
use iotsec_fuzz::{generate, oracle, shrink, GenConfig, Verdict, Weakness};
use std::time::Instant;

/// Campaign width for the correct-defense arm.
pub const SCENARIOS: usize = 200;
/// Campaign width for the weakened-defense arm.
pub const WEAKENED: usize = 12;

/// One shrunk weakened-arm violation, as stable statistics.
pub struct ShrinkStat {
    /// Generator seed of the original scenario.
    pub seed: u64,
    /// The first violated invariant (labels sorted, so deterministic).
    pub invariant: &'static str,
    /// Devices left after shrinking.
    pub devices: usize,
    /// Faults left after shrinking.
    pub faults: usize,
    /// Attack steps left after shrinking.
    pub steps: usize,
    /// Horizon left after shrinking (secs).
    pub horizon_secs: u32,
    /// Defense-on oracle runs the shrink spent.
    pub oracle_runs: u32,
}

/// E23's full result: verdict tallies, gate bits and shrink stats.
pub struct VetReport {
    /// Campaign + weakened-arm summary table.
    pub table: Table,
    /// Scenarios in the correct-defense campaign.
    pub scenarios: usize,
    /// Scenarios that passed non-vacuously.
    pub passes: usize,
    /// Scenarios whose undefended attack never landed.
    pub vacuous: usize,
    /// Scenarios where defense-on broke an invariant.
    pub violations: usize,
    /// Parallel sweep digests matched the serial reference.
    pub threads_identical: bool,
    /// A second serial run matched the first.
    pub reproducible: bool,
    /// Worker count of the parallel sweep.
    pub threads: usize,
    /// Violations found in the weakened arm.
    pub weakened_violations: usize,
    /// Shrink statistics, one per weakened violation.
    pub shrinks: Vec<ShrinkStat>,
    /// One-line human summary.
    pub summary: String,
    json: String,
}

impl VetReport {
    /// The CI vet gate: every campaign property held.
    pub fn deterministic(&self) -> bool {
        self.violations == 0
            && self.vacuous == 0
            && self.threads_identical
            && self.reproducible
            && self.weakened_violations > 0
            && self.shrinks.len() == self.weakened_violations
    }

    /// The `BENCH_E23.json` payload.
    pub fn render_json(&self) -> &str {
        &self.json
    }
}

/// Per-scenario digest: verdict, violations and both arms' metric
/// summaries. Everything the oracle derives from sim-time, nothing
/// wall-clock — so digests compare across threads and reruns.
fn digest(i: usize, seed: u64, cfg: &GenConfig) -> String {
    let spec = generate(seed, cfg);
    let report = oracle::run(&spec);
    format!(
        "{i} seed={seed} verdict={} violations={:?} on=[{}] off=[{}]",
        report.verdict.label(),
        report.violations,
        report.on_summary,
        report.off_summary
    )
}

/// FNV-1a over the campaign digest lines — the stable fingerprint
/// committed in `BENCH_E23.json`.
fn fingerprint(digests: &[String]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for d in digests {
        for b in d.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

fn render_json(seed: u64, report: &VetReport, campaign_fp: u64, wall_ms: u128) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"scenarios\": {},\n", report.scenarios));
    out.push_str(&format!("  \"passes\": {},\n", report.passes));
    out.push_str(&format!("  \"vacuous\": {},\n", report.vacuous));
    out.push_str(&format!("  \"violations\": {},\n", report.violations));
    out.push_str(&format!("  \"campaign_fingerprint\": {campaign_fp},\n"));
    out.push_str(&format!("  \"threads_identical\": {},\n", report.threads_identical));
    out.push_str(&format!("  \"reproducible\": {},\n", report.reproducible));
    out.push_str(&format!("  \"weakened_scenarios\": {WEAKENED},\n"));
    out.push_str(&format!("  \"weakened_violations\": {},\n", report.weakened_violations));
    out.push_str("  \"shrinks\": [\n");
    for (i, s) in report.shrinks.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"seed\": {}, \"invariant\": \"{}\", \"devices\": {}, \"faults\": {}, \
             \"steps\": {}, \"horizon_secs\": {}, \"oracle_runs\": {}}}{}\n",
            s.seed,
            s.invariant,
            s.devices,
            s.faults,
            s.steps,
            s.horizon_secs,
            s.oracle_runs,
            if i + 1 == report.shrinks.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    // Volatile line: wall-clock only, ignored by the CI byte-diff.
    out.push_str(&format!("  \"wall_ms\": {wall_ms}\n"));
    out.push_str("}\n");
    out
}

/// E23 — the vet campaign. `threads` drives the parallel sweep whose
/// digests are checked against the serial reference.
pub fn vet(seed: u64, threads: usize) -> VetReport {
    let start = Instant::now();
    let cfg = GenConfig::default();
    let seeds: Vec<u64> = (0..SCENARIOS as u64).map(|i| seed.wrapping_add(i)).collect();

    // Serial reference, parallel sweep, serial rerun — all three must
    // agree line for line.
    let serial = run_sweep(seeds.clone(), 1, |i, s| digest(i, *s, &cfg));
    let parallel = run_sweep(seeds.clone(), threads.max(2), |i, s| digest(i, *s, &cfg));
    let rerun = run_sweep(seeds.clone(), 1, |i, s| digest(i, *s, &cfg));
    let threads_identical = serial == parallel;
    let reproducible = serial == rerun;

    let mut passes = 0;
    let mut vacuous = 0;
    let mut violations = 0;
    for d in &serial {
        if d.contains("verdict=pass") {
            passes += 1;
        } else if d.contains("verdict=vacuous") {
            vacuous += 1;
        } else {
            violations += 1;
        }
    }

    // Weakened arm: quarantine escalation off, chains failing open —
    // the oracle must catch it and the shrinker must minimize it.
    let weak_cfg = GenConfig::weakened(Weakness::NoQuarantine);
    let mut weakened_violations = 0;
    let mut shrinks = Vec::new();
    for i in 0..WEAKENED as u64 {
        let wseed = seed.wrapping_add(0x5EED_0000).wrapping_add(i);
        let spec = generate(wseed, &weak_cfg);
        if oracle::run(&spec).verdict != Verdict::Violation {
            continue;
        }
        weakened_violations += 1;
        let repro = shrink(&spec).expect("violating scenario must shrink");
        shrinks.push(ShrinkStat {
            seed: wseed,
            invariant: repro.violations.first().map_or("?", |v| v.invariant),
            devices: repro.spec.devices.len(),
            faults: repro.spec.faults.len(),
            steps: repro.spec.attack.len(),
            horizon_secs: repro.spec.horizon_secs,
            oracle_runs: repro.oracle_runs,
        });
    }

    let campaign_fp = fingerprint(&serial);
    let mut table = Table::new(
        "E23: adversarial vet campaign — differential oracle over generated homes",
        &["arm", "scenarios", "pass", "vacuous", "violation", "notes"],
    );
    table.rowd(&[
        "correct".to_string(),
        SCENARIOS.to_string(),
        passes.to_string(),
        vacuous.to_string(),
        violations.to_string(),
        format!("fingerprint {campaign_fp:016x}"),
    ]);
    table.rowd(&[
        "weakened".to_string(),
        WEAKENED.to_string(),
        (WEAKENED - weakened_violations).to_string(),
        "-".to_string(),
        weakened_violations.to_string(),
        format!(
            "max shrunk: {} devices, {} faults",
            shrinks.iter().map(|s| s.devices).max().unwrap_or(0),
            shrinks.iter().map(|s| s.faults).max().unwrap_or(0),
        ),
    ]);

    let mut report = VetReport {
        table,
        scenarios: SCENARIOS,
        passes,
        vacuous,
        violations,
        threads_identical,
        reproducible,
        threads: threads.max(2),
        weakened_violations,
        shrinks,
        summary: String::new(),
        json: String::new(),
    };
    report.summary = format!(
        "E23 summary: {} scenarios — {} pass / {} vacuous / {} violation; \
         threads identical: {}, reproducible: {}; weakened arm: {}/{} violations, \
         all shrunk (max {} devices, {} faults)",
        report.scenarios,
        report.passes,
        report.vacuous,
        report.violations,
        report.threads_identical,
        report.reproducible,
        report.weakened_violations,
        WEAKENED,
        report.shrinks.iter().map(|s| s.devices).max().unwrap_or(0),
        report.shrinks.iter().map(|s| s.faults).max().unwrap_or(0),
    );
    report.json = render_json(seed, &report, campaign_fp, start.elapsed().as_millis());
    report
}
