//! E19 — the packed-state parallel state-space engine, measured.
//!
//! The population-scaling sweep runs the same E1 policy family
//! ([`crate::exp_policy::policy_for`]) through three engines:
//!
//! 1. **naive** — the legacy `Vec<SecurityContext>`-per-state odometer
//!    with a fresh `FsmPolicy::evaluate` per state (the pre-E19
//!    `collapse_count` path), run only while the raw space fits under
//!    [`NAIVE_SWEEP_LIMIT`];
//! 2. **packed-serial** — bitfield-encoded states with memoized policy
//!    evaluation;
//! 3. **packed-parallel** — the same sweep chunked over work-stealing
//!    workers at each thread count in [`PAR_THREADS`].
//!
//! Every engine must report the identical state count, posture-class
//! count and order-independent digests; any divergence fails the run
//! (and, through the runner, the CI `state-space-gate` job). On top of
//! the exhaustive sweeps, each population also runs the frontier BFS
//! (serial vs parallel vs naive shell histograms) and the exact
//! reachable-conflict scan (packed co-activation vs witness search).
//!
//! The n = 12 population (3,359,232 raw states) is the cell the naive
//! engine could not fill at the old `1 << 20` ceiling — here it runs
//! through the packed engines only, which is the point.

use crate::Table;
use iotpolicy::conflict::{find_reachable_rule_conflicts, find_reachable_rule_conflicts_naive};
use iotpolicy::explore::{
    bfs_naive, bfs_packed, bfs_uses_dense_visited, explore_naive, explore_packed,
};
use iotpolicy::policy::FsmPolicy;
use std::time::Instant;
use trace::tracer::Tracer;

/// The repo-wide experiment seed (E19 is fully deterministic — the seed
/// is recorded in the JSON for provenance, not consumed).
pub const SEED: u64 = 20151116;

/// Device populations swept (coupled pairs follow E1's `n / 4` rule).
pub const POPULATIONS: &[u32] = &[6, 8, 10, 12];

/// Raw-space ceiling for the naive exhaustive legs. The n = 12
/// population sits well above it — naive is recorded as infeasible
/// there, exactly as E1 recorded "-" before the packed engine landed.
pub const NAIVE_SWEEP_LIMIT: u128 = 1 << 19;

/// Raw-space ceiling for the naive BFS leg (it clones a full
/// `SystemState` per successor, so it drowns far earlier).
pub const NAIVE_BFS_LIMIT: u128 = 1 << 16;

/// Thread counts for the parallel legs; fixed (not CLI-driven) so the
/// stable section of `BENCH_E19.json` is byte-identical across hosts.
pub const PAR_THREADS: &[usize] = &[2, 4];

/// One population's measurements across all engines.
pub struct SpaceCell {
    /// Device count `n` (coupled pairs = `n / 4`).
    pub devices: u32,
    /// Raw product-space size.
    pub states: u128,
    /// Distinct posture classes found by the packed-serial sweep.
    pub classes: u64,
    /// Full packed-serial digest line (counts + order-independent
    /// class/quiet digests) — the reference every other leg must match.
    pub digest: String,
    /// BFS shell histogram plus frontier digest from the packed
    /// serial BFS.
    pub bfs: String,
    /// Whether the BFS visited set fit the dense bitset arena.
    pub dense_visited: bool,
    /// Reachable rule conflicts found by the packed co-activation scan.
    pub conflicts: usize,
    /// Whether the naive legs ran (raw space under the limits).
    pub naive_ran: bool,
    /// Every engine that ran agreed on counts and digests.
    pub identical: bool,
    /// Memoized-evaluator `(lookups, hits)` from the serial sweep.
    pub memo: (u64, u64),
    /// Naive exhaustive wall time, when the leg ran.
    pub naive_wall_ms: Option<u128>,
    /// Packed-serial exhaustive wall time.
    pub serial_wall_ms: u128,
    /// Packed-parallel wall times, aligned with [`PAR_THREADS`].
    pub parallel_wall_ms: Vec<u128>,
}

/// The E19 report: the printed table plus everything the JSON needs.
pub struct SpaceReport {
    /// Rendered population table.
    pub table: Table,
    /// Per-population measurements.
    pub cells: Vec<SpaceCell>,
    /// True iff every engine agreed on every population.
    pub deterministic: bool,
    /// One-line human summary.
    pub summary: String,
}

impl SpaceReport {
    /// Total states enumerated by the packed-serial reference sweeps
    /// (deterministic, so safe to surface as the runner's event count).
    pub fn states_total(&self) -> u64 {
        self.cells.iter().map(|c| c.states as u64).sum()
    }

    /// Aggregate memo hit rate across the serial sweeps.
    pub fn memo_hit_rate(&self) -> f64 {
        let lookups: u64 = self.cells.iter().map(|c| c.memo.0).sum();
        let hits: u64 = self.cells.iter().map(|c| c.memo.1).sum();
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }
    }

    /// Best naive-vs-packed-serial speedup over the populations where
    /// the naive leg ran (wall-clock, so host-dependent — recorded in
    /// the volatile JSON section, never gated on).
    pub fn best_speedup(&self) -> f64 {
        self.cells
            .iter()
            .filter_map(|c| {
                let naive = c.naive_wall_ms? as f64;
                Some(naive / (c.serial_wall_ms.max(1) as f64))
            })
            .fold(0.0, f64::max)
    }

    /// `BENCH_E19.json`: a stable section (counts, digests, engine
    /// agreement) plus a `timing_wall_ms` section where **every**
    /// volatile line contains `wall_ms`, so CI can assert byte
    /// stability with `git diff -I'wall_ms'`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"e19\",\n");
        out.push_str(&format!("  \"seed\": {SEED},\n"));
        let threads: Vec<String> = PAR_THREADS.iter().map(|t| t.to_string()).collect();
        out.push_str(&format!("  \"parallel_threads\": [{}],\n", threads.join(", ")));
        out.push_str(&format!("  \"naive_sweep_limit\": {NAIVE_SWEEP_LIMIT},\n"));
        out.push_str(&format!("  \"naive_bfs_limit\": {NAIVE_BFS_LIMIT},\n"));
        out.push_str("  \"populations\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"devices\": {}, \"states\": {}, \"classes\": {}, \"digest\": \"{}\", \
                 \"bfs\": \"{}\", \"dense_visited\": {}, \"conflicts\": {}, \
                 \"naive_ran\": {}, \"identical\": {}}}{}\n",
                c.devices,
                c.states,
                c.classes,
                c.digest,
                c.bfs,
                c.dense_visited,
                c.conflicts,
                c.naive_ran,
                c.identical,
                if i + 1 == self.cells.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!("  \"deterministic\": {},\n", self.deterministic));
        out.push_str("  \"timing_wall_ms\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let naive = c.naive_wall_ms.map(|m| m.to_string()).unwrap_or_else(|| "null".into());
            let par: Vec<String> = c.parallel_wall_ms.iter().map(|m| m.to_string()).collect();
            out.push_str(&format!(
                "    {{\"devices\": {}, \"naive_wall_ms\": {}, \"packed_serial_wall_ms\": {}, \
                 \"packed_parallel_wall_ms\": [{}]}}{}\n",
                c.devices,
                naive,
                c.serial_wall_ms,
                par.join(", "),
                if i + 1 == self.cells.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"speedup_wall_ms\": {{\"best_naive_vs_packed_serial\": {:.1}, \
             \"floor_5x_met\": {}}}\n",
            self.best_speedup(),
            self.best_speedup() >= 5.0,
        ));
        out.push_str("}\n");
        out
    }
}

fn ms(start: Instant) -> u128 {
    start.elapsed().as_millis()
}

fn run_cell(n: u32) -> SpaceCell {
    let policy: FsmPolicy = crate::exp_policy::policy_for(n, n / 4);
    let raw = policy.schema.size();
    let mut identical = true;

    // Packed-serial exhaustive sweep: the reference digest.
    let start = Instant::now();
    let serial = explore_packed(&policy, 1).expect("E19 policies are packable by construction");
    let serial_wall_ms = ms(start);
    let reference = serial.digest();

    // Naive exhaustive sweep, while it still fits.
    let naive_ran = raw <= NAIVE_SWEEP_LIMIT;
    let naive_wall_ms = if naive_ran {
        let start = Instant::now();
        let naive = explore_naive(&policy);
        let wall = ms(start);
        identical &= naive.digest() == reference;
        Some(wall)
    } else {
        None
    };

    // Packed-parallel sweeps at each fixed thread count.
    let mut parallel_wall_ms = Vec::new();
    for &t in PAR_THREADS {
        let start = Instant::now();
        let par = explore_packed(&policy, t).expect("E19 policies are packable by construction");
        parallel_wall_ms.push(ms(start));
        identical &= par.digest() == reference;
    }

    // Frontier BFS: serial reference, parallel byte-identity, naive
    // shell histogram while it fits.
    let tracer = Tracer::disabled();
    let bfs_serial =
        bfs_packed(&policy, 1, &tracer).expect("E19 policies are packable by construction");
    let bfs_ref = format!("{} fd={:016x}", bfs_serial.histogram(), bfs_serial.frontier_digest);
    for &t in PAR_THREADS {
        let par =
            bfs_packed(&policy, t, &tracer).expect("E19 policies are packable by construction");
        identical &= format!("{} fd={:016x}", par.histogram(), par.frontier_digest) == bfs_ref;
    }
    if raw <= NAIVE_BFS_LIMIT {
        // The naive BFS carries no frontier digest; shells must match.
        identical &= bfs_naive(&policy).histogram() == bfs_serial.histogram();
    }

    // Reachable conflicts: packed co-activation vs witness search.
    let conflicts = find_reachable_rule_conflicts(&policy);
    if let Some(naive_conflicts) = find_reachable_rule_conflicts_naive(&policy, NAIVE_SWEEP_LIMIT) {
        identical &= naive_conflicts == conflicts;
    }

    SpaceCell {
        devices: n,
        states: serial.states,
        classes: serial.classes,
        digest: reference,
        bfs: bfs_ref,
        dense_visited: bfs_uses_dense_visited(&policy).unwrap_or(false),
        conflicts: conflicts.len(),
        naive_ran,
        identical,
        memo: serial.memo,
        naive_wall_ms,
        serial_wall_ms,
        parallel_wall_ms,
    }
}

/// E19 — run the population-scaling sweep and build the report.
pub fn space() -> SpaceReport {
    let mut t = Table::new(
        "E19: packed-state engine — three engines, one digest per population",
        &[
            "devices",
            "raw |S|",
            "classes",
            "memo hit rate",
            "bfs shells",
            "dense visited",
            "conflicts",
            "naive leg",
            "identical",
        ],
    );
    let cells: Vec<SpaceCell> = POPULATIONS.iter().map(|&n| run_cell(n)).collect();
    for c in &cells {
        let hit_rate = if c.memo.0 == 0 { 0.0 } else { c.memo.1 as f64 / c.memo.0 as f64 };
        t.rowd(&[
            c.devices.to_string(),
            c.states.to_string(),
            c.classes.to_string(),
            format!("{:.4}", hit_rate),
            // shells=[a,b,...] → shell count (depth of the BFS layering).
            c.bfs.matches(',').count().saturating_add(1).to_string(),
            c.dense_visited.to_string(),
            c.conflicts.to_string(),
            if c.naive_ran { "ran" } else { "infeasible" }.to_string(),
            c.identical.to_string(),
        ]);
    }
    let deterministic = cells.iter().all(|c| c.identical);
    let report = SpaceReport { table: t, cells, deterministic, summary: String::new() };
    let summary = format!(
        "E19 summary: {} populations, {} states in reference sweeps, memo hit rate {:.4}, \
         best naive-vs-packed speedup {:.1}x, deterministic: {}",
        report.cells.len(),
        report.states_total(),
        report.memo_hit_rate(),
        report.best_speedup(),
        report.deterministic,
    );
    SpaceReport { summary, ..report }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cell_agrees_across_engines() {
        let c = run_cell(6);
        assert!(c.identical);
        assert!(c.naive_ran);
        assert_eq!(c.states, 2592);
        assert!(c.classes > 0);
        assert!(c.dense_visited);
    }

    #[test]
    fn json_volatile_lines_all_carry_wall_ms() {
        let cell = SpaceCell {
            devices: 6,
            states: 2592,
            classes: 9,
            digest: "states=2592 classes=9 cd=0 quiet=1 qd=0".into(),
            bfs: "visited=2592 shells=[1,13] fd=0000000000000000".into(),
            dense_visited: true,
            conflicts: 0,
            naive_ran: true,
            identical: true,
            memo: (2592, 2500),
            naive_wall_ms: Some(12),
            serial_wall_ms: 1,
            parallel_wall_ms: vec![1, 1],
        };
        let report = SpaceReport {
            table: Table::new("t", &["a"]),
            cells: vec![cell],
            deterministic: true,
            summary: String::new(),
        };
        let json = report.render_json();
        // Everything after the stable section must be filterable by
        // `git diff -I'wall_ms'`: each line with a timing value (or a
        // host-dependent speedup) carries the marker.
        let mut in_timing = false;
        for line in json.lines() {
            if line.contains("\"timing_wall_ms\"") {
                in_timing = true;
            }
            let volatile = line.contains("_wall_ms\":") || line.contains("speedup_wall_ms");
            if in_timing && line.contains('{') {
                assert!(line.contains("wall_ms"), "volatile line lacks marker: {line}");
            }
            if volatile {
                assert!(line.contains("wall_ms"));
            }
        }
        assert!(json.contains("\"deterministic\": true"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn speedup_ignores_infeasible_cells() {
        let mk = |naive: Option<u128>, serial: u128| SpaceCell {
            devices: 6,
            states: 1,
            classes: 1,
            digest: String::new(),
            bfs: String::new(),
            dense_visited: true,
            conflicts: 0,
            naive_ran: naive.is_some(),
            identical: true,
            memo: (0, 0),
            naive_wall_ms: naive,
            serial_wall_ms: serial,
            parallel_wall_ms: vec![],
        };
        let report = SpaceReport {
            table: Table::new("t", &["a"]),
            cells: vec![mk(Some(100), 10), mk(None, 1), mk(Some(30), 10)],
            deterministic: true,
            summary: String::new(),
        };
        assert!((report.best_speedup() - 10.0).abs() < 1e-9);
    }
}
