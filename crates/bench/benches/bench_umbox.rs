//! Criterion benchmarks for the µmbox data plane: chain processing
//! throughput per posture and IDS ruleset size (E10's wall-clock
//! companion), plus lifecycle churn.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iotdev::device::{AdminCreds, DeviceId};
use iotdev::proto::{ports, AppMessage, TelemetryKind};
use iotdev::registry::Sku;
use iotlearn::signature::{AttackSignature, Matcher, Severity};
use iotnet::addr::{Ipv4Addr, MacAddr};
use iotnet::packet::{Packet, TransportHeader};
use iotnet::time::SimTime;
use iotpolicy::posture::{Posture, SecurityModule};
use umbox::chain::{build_chain, ChainConfig};
use umbox::element::{EventSink, ViewHandle};
use umbox::lifecycle::{LifecycleManager, VmKind};

fn packet() -> Packet {
    Packet::new(
        MacAddr::from_index(3),
        MacAddr::from_index(1),
        Ipv4Addr::new(10, 0, 0, 3),
        Ipv4Addr::new(10, 0, 0, 5),
        TransportHeader::udp(5683, ports::TELEMETRY),
        AppMessage::Telemetry { kind: TelemetryKind::Power, value: 4.2 }.encode(),
    )
}

fn cfg(sigs: usize) -> ChainConfig {
    let sku = Sku::new("acme", "widget", "1");
    ChainConfig {
        device: DeviceId(0),
        required_creds: AdminCreds::owner_default(),
        cleared_sources: vec![],
        signatures: (0..sigs)
            .map(|i| {
                AttackSignature::new(
                    sku.clone(),
                    "x",
                    Matcher::PayloadContains(vec![0xF0, i as u8]),
                    Severity::Low,
                )
            })
            .collect(),
        view: ViewHandle::new(),
        events: EventSink::new(),
        failure_mode: umbox::chain::FailureMode::FailOpen,
        tracer: trace::Tracer::disabled(),
    }
}

fn bench_chain_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_per_packet");
    let cases: Vec<(&str, Posture, usize)> = vec![
        ("proxy", Posture::of(SecurityModule::PasswordProxy), 0),
        ("ids_10", Posture::of(SecurityModule::Ids { ruleset: 1 }), 10),
        ("ids_1000", Posture::of(SecurityModule::Ids { ruleset: 1 }), 1000),
        (
            "full_chain",
            Posture::of(SecurityModule::PasswordProxy)
                .with(SecurityModule::Ids { ruleset: 1 })
                .with(SecurityModule::RateLimit { pps: 1_000_000 })
                .with(SecurityModule::ProtocolWhitelist)
                .with(SecurityModule::Mirror),
            10,
        ),
    ];
    for (label, posture, sigs) in cases {
        let mut chain = build_chain(&posture, &cfg(sigs));
        let pkt = packet();
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            b.iter(|| std::hint::black_box(chain.run(SimTime::ZERO, pkt.clone()).latency));
        });
    }
    group.finish();
}

fn bench_lifecycle_churn(c: &mut Criterion) {
    c.bench_function("lifecycle_launch_retire_100_pooled", |b| {
        b.iter(|| {
            let mut mgr = LifecycleManager::new(128);
            let ids: Vec<_> = (0..100)
                .map(|i| mgr.launch(DeviceId(i), VmKind::UnikernelPooled, SimTime::ZERO).0)
                .collect();
            mgr.advance(SimTime::from_secs(1));
            for id in ids {
                mgr.retire(id);
            }
            std::hint::black_box(mgr.pool_available)
        });
    });
}

fn bench_signature_matching(c: &mut Criterion) {
    let sig = AttackSignature::new(
        Sku::new("belkin", "wemo", "1.0"),
        "open-dns-resolver",
        Matcher::RecursiveDnsFromExternal,
        Severity::Medium,
    );
    let pkt = Packet::new(
        MacAddr::from_index(9),
        MacAddr::from_index(1),
        Ipv4Addr::new(203, 0, 113, 7),
        Ipv4Addr::new(10, 0, 0, 5),
        TransportHeader::udp(5353, ports::DNS),
        AppMessage::DnsQuery { name: "amp.example".into(), recursion: true }.encode(),
    );
    c.bench_function("signature_match_dns", |b| {
        b.iter(|| std::hint::black_box(sig.matcher.matches(&pkt)));
    });
}

criterion_group!(benches, bench_chain_throughput, bench_lifecycle_churn, bench_signature_matching);
criterion_main!(benches);
