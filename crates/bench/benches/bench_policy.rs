//! Criterion microbenchmarks for the policy layer: evaluation cost per
//! state, factoring cost, and corpus compilation — the inner loops of
//! the controller (E1's wall-clock companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iotdev::device::{DeviceClass, DeviceId};
use iotdev::vuln::Vulnerability;
use iotpolicy::compile::PolicyCompiler;
use iotpolicy::context::SecurityContext;
use iotpolicy::prune::factor;
use iotpolicy::recipe::{default_target_pool, table2_corpus};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn policy(n: u32) -> iotpolicy::policy::FsmPolicy {
    let mut c = PolicyCompiler::new();
    for i in 0..n {
        let vulns = if i % 3 == 0 { vec![Vulnerability::default_admin_admin()] } else { vec![] };
        c.device(DeviceId(i), DeviceClass::Camera, &vulns);
    }
    for p in 0..n / 10 {
        c.protect_on_suspicion(DeviceId(p * 10), DeviceId(p * 10 + 1));
    }
    c.build()
}

fn bench_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_evaluate");
    for n in [10u32, 50, 100, 500] {
        let p = policy(n);
        let state = p.schema.initial_state().with_context(
            &p.schema,
            DeviceId(0),
            SecurityContext::Suspicious,
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(p.evaluate(&state)));
        });
    }
    group.finish();
}

fn bench_factor(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_factor");
    for n in [50u32, 200, 500] {
        let p = policy(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(factor(&p).effective_states()));
        });
    }
    group.finish();
}

fn bench_table2_generation(c: &mut Criterion) {
    c.bench_function("table2_corpus_generate_478", |b| {
        let pool = default_target_pool();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            std::hint::black_box(table2_corpus(&pool, &mut rng))
        });
    });
}

fn bench_conflict_scan(c: &mut Criterion) {
    let pool = default_target_pool();
    let mut rng = StdRng::seed_from_u64(7);
    let recipes: Vec<_> = table2_corpus(&pool, &mut rng).into_iter().flat_map(|(_, r)| r).collect();
    c.bench_function("conflict_scan_478_recipes", |b| {
        b.iter(|| std::hint::black_box(iotpolicy::conflict::find_recipe_conflicts(&recipes).len()));
    });
}

criterion_group!(
    benches,
    bench_evaluate,
    bench_factor,
    bench_table2_generation,
    bench_conflict_scan
);
criterion_main!(benches);
