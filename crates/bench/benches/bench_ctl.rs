//! Criterion benchmarks for the control plane: event ingestion and
//! reconciliation throughput (flat vs hierarchical), and the real
//! thread-contention cost of the strongly consistent shared view.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iotctl::concurrent::stress;
use iotctl::controller::{Controller, ControllerConfig};
use iotctl::hier::{HierarchicalController, Partitioning};
use iotdev::device::{DeviceClass, DeviceId};
use iotdev::events::{SecurityEvent, SecurityEventKind};
use iotnet::time::SimTime;
use iotpolicy::compile::PolicyCompiler;
use umbox::element::ViewHandle;

fn policy(n: u32) -> iotpolicy::policy::FsmPolicy {
    let mut c = PolicyCompiler::new();
    for i in 0..n {
        c.device(DeviceId(i), DeviceClass::Camera, &[]);
    }
    for p in 0..n / 10 {
        c.protect_on_suspicion(DeviceId(p * 10), DeviceId(p * 10 + 1));
    }
    c.build()
}

fn burst(n: u32) -> Vec<SecurityEvent> {
    (0..200u64)
        .map(|i| {
            SecurityEvent::new(
                SimTime::from_micros(i * 10),
                DeviceId((i % n as u64) as u32),
                SecurityEventKind::AuthFailureBurst,
            )
        })
        .collect()
}

fn bench_flat_vs_hier(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller_burst_200_events");
    for n in [50u32, 200] {
        group.bench_with_input(BenchmarkId::new("flat", n), &n, |b, &n| {
            b.iter(|| {
                let mut ctl =
                    Controller::new(policy(n), ControllerConfig::default(), ViewHandle::new());
                ctl.reconcile(SimTime::ZERO);
                for e in burst(n) {
                    ctl.ingest(e);
                }
                std::hint::black_box(ctl.step(SimTime::from_secs(3600)).len())
            });
        });
        group.bench_with_input(BenchmarkId::new("hier", n), &n, |b, &n| {
            b.iter(|| {
                let mut ctl = HierarchicalController::new(
                    policy(n),
                    Partitioning::ByCoupling,
                    ControllerConfig::default(),
                    ViewHandle::new(),
                );
                ctl.reconcile(SimTime::ZERO);
                for e in burst(n) {
                    ctl.ingest(e);
                }
                std::hint::black_box(ctl.step(SimTime::from_secs(3600)).len())
            });
        });
    }
    group.finish();
}

fn bench_concurrent_view(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrent_view_stress");
    group.sample_size(10);
    for writers in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(writers), &writers, |b, &w| {
            b.iter(|| std::hint::black_box(stress(w, 2, 2_000, 64).writes));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flat_vs_hier, bench_concurrent_view);
criterion_main!(benches);
