//! Criterion benchmarks for the network substrate: wire codec, flow
//! lookup, end-to-end simulated delivery, and a full world tick — the
//! simulator's own cost, which bounds experiment scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iotdev::proto::{AppMessage, TelemetryKind};
use iotnet::addr::{Ipv4Addr, MacAddr, PortNo};
use iotnet::flow::{FlowAction, FlowMatch, FlowRule, FlowTable};
use iotnet::link::LinkParams;
use iotnet::net::Network;
use iotnet::packet::{Packet, TransportHeader};
use iotnet::time::SimTime;
use iotnet::topology::TopologyBuilder;
use iotsec::defense::Defense;
use iotsec::scenario;
use iotsec::world::World;

fn sample_packet() -> Packet {
    Packet::new(
        MacAddr::from_index(1),
        MacAddr::from_index(2),
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        TransportHeader::udp(5683, 5683),
        AppMessage::Telemetry { kind: TelemetryKind::Power, value: 1.5 }.encode(),
    )
}

fn bench_codec(c: &mut Criterion) {
    let pkt = sample_packet();
    let wire = pkt.to_wire();
    c.bench_function("packet_encode", |b| b.iter(|| std::hint::black_box(pkt.to_wire())));
    c.bench_function("packet_decode", |b| {
        b.iter(|| std::hint::black_box(Packet::from_wire(&wire).unwrap()))
    });
}

fn bench_flow_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_lookup");
    for rules in [16u32, 256, 1024] {
        let mut table = FlowTable::new();
        for i in 0..rules {
            table.install(FlowRule::new(
                (i % 100) as u16,
                FlowMatch::to_host(Ipv4Addr::from_index(i + 100)),
                FlowAction::Drop,
            ));
        }
        table.install(FlowRule::new(200, FlowMatch::any(), FlowAction::Normal));
        let pkt = sample_packet();
        group.bench_with_input(BenchmarkId::from_parameter(rules), &rules, |b, _| {
            b.iter(|| std::hint::black_box(table.lookup(PortNo(0), &pkt).is_some()));
        });
    }
    group.finish();
}

fn bench_end_to_end_delivery(c: &mut Criterion) {
    c.bench_function("net_send_and_deliver_100", |b| {
        b.iter(|| {
            let mut builder = TopologyBuilder::new();
            let sw = builder.add_switch();
            let a = builder.attach_endpoint(sw, LinkParams::lan());
            let z = builder.attach_endpoint(sw, LinkParams::lan());
            let mut net = Network::new(builder.build(), 1);
            let pkt = Packet::new(
                net.mac_of(a),
                net.mac_of(z),
                net.ip_of(a),
                net.ip_of(z),
                TransportHeader::udp(1, 2),
                AppMessage::Telemetry { kind: TelemetryKind::Power, value: 0.0 }.encode(),
            );
            for i in 0..100u64 {
                net.send(a, SimTime::from_micros(i), pkt.clone());
            }
            std::hint::black_box(net.step_until(SimTime::from_secs(1)).len())
        });
    });
}

fn bench_world_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("world_second_of_simulation");
    group.sample_size(20);
    for (label, defense) in [("undefended", Defense::None), ("iotsec", Defense::iotsec())] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            b.iter(|| {
                let (d, _) = scenario::smart_home(defense.clone(), 7);
                let mut w = World::new(&d);
                w.run(iotnet::time::SimDuration::from_secs(1));
                std::hint::black_box(w.clock)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_flow_lookup,
    bench_end_to_end_delivery,
    bench_world_tick
);
criterion_main!(benches);
