//! Topology graph and builders.
//!
//! A topology is a set of switches whose ports are wired either to other
//! switches or to endpoints (device NICs, the attacker host, cloud stubs).
//! Each wire carries a pair of directed [`Link`]s so asymmetric paths are
//! expressible. Builders construct the two deployment shapes the paper
//! targets: a smart home behind an IoT router, and an enterprise tree with
//! an on-premise NFV cluster.

use crate::addr::{EndpointId, Ipv4Addr, MacAddr, NodeId, PortNo, SwitchId};
use crate::link::{Link, LinkParams};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What a switch port is wired to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortTarget {
    /// Wired to a port on another switch.
    Switch(SwitchId, PortNo),
    /// Wired to an endpoint.
    Endpoint(EndpointId),
    /// Unused.
    Unwired,
}

/// Static information about an endpoint attachment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EndpointInfo {
    /// The endpoint's MAC address.
    pub mac: MacAddr,
    /// The endpoint's IPv4 address.
    pub ip: Ipv4Addr,
    /// First-hop switch.
    pub switch: SwitchId,
    /// Port on the first-hop switch.
    pub port: PortNo,
}

/// A directed-link key: traffic flowing out of `from` towards `to`.
pub type LinkKey = (NodeId, NodeId);

/// The wiring of a network: switches, endpoints, and directed links.
#[derive(Debug, Default)]
pub struct Topology {
    switch_ports: Vec<Vec<PortTarget>>,
    endpoints: Vec<EndpointInfo>,
    links: HashMap<LinkKey, Link>,
    ip_index: HashMap<Ipv4Addr, EndpointId>,
}

impl Topology {
    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switch_ports.len()
    }

    /// Number of endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Ports (count) on a switch.
    pub fn ports_of(&self, sw: SwitchId) -> u16 {
        self.switch_ports[sw.0 as usize].len() as u16
    }

    /// What a given switch port is wired to.
    pub fn port_target(&self, sw: SwitchId, port: PortNo) -> PortTarget {
        self.switch_ports
            .get(sw.0 as usize)
            .and_then(|ports| ports.get(port.0 as usize))
            .copied()
            .unwrap_or(PortTarget::Unwired)
    }

    /// Attachment info for an endpoint.
    pub fn endpoint(&self, ep: EndpointId) -> &EndpointInfo {
        &self.endpoints[ep.0 as usize]
    }

    /// Iterate over all endpoints.
    pub fn endpoints(&self) -> impl Iterator<Item = (EndpointId, &EndpointInfo)> {
        self.endpoints.iter().enumerate().map(|(i, e)| (EndpointId(i as u32), e))
    }

    /// Look up the endpoint owning an IP address.
    pub fn endpoint_by_ip(&self, ip: Ipv4Addr) -> Option<EndpointId> {
        self.ip_index.get(&ip).copied()
    }

    /// Mutable access to the directed link `from -> to`, if wired.
    pub fn link_mut(&mut self, from: NodeId, to: NodeId) -> Option<&mut Link> {
        self.links.get_mut(&(from, to))
    }

    /// Read access to the directed link `from -> to`, if wired.
    pub fn link(&self, from: NodeId, to: NodeId) -> Option<&Link> {
        self.links.get(&(from, to))
    }

    /// Fail both directions of the wire between two nodes.
    pub fn fail_wire(&mut self, a: NodeId, b: NodeId) {
        if let Some(l) = self.links.get_mut(&(a, b)) {
            l.fail();
        }
        if let Some(l) = self.links.get_mut(&(b, a)) {
            l.fail();
        }
    }

    /// Repair both directions of the wire between two nodes.
    pub fn repair_wire(&mut self, a: NodeId, b: NodeId) {
        self.heal_wire(a, b);
    }

    /// Heal both directions of the wire between two nodes: the link comes
    /// back up and traffic resumes. Counterpart to [`Topology::fail_wire`];
    /// the fault scheduler uses this for the "heal" half of a link flap.
    pub fn heal_wire(&mut self, a: NodeId, b: NodeId) {
        if let Some(l) = self.links.get_mut(&(a, b)) {
            l.repair();
        }
        if let Some(l) = self.links.get_mut(&(b, a)) {
            l.repair();
        }
    }

    /// Set or clear a transient loss-probability override on both
    /// directions of the wire between two nodes.
    pub fn set_wire_burst_loss(&mut self, a: NodeId, b: NodeId, loss: Option<f64>) {
        if let Some(l) = self.links.get_mut(&(a, b)) {
            l.burst_loss = loss;
        }
        if let Some(l) = self.links.get_mut(&(b, a)) {
            l.burst_loss = loss;
        }
    }

    /// Set the in-flight corruption probability on both directions of the
    /// wire between two nodes (`0.0` ends the burst).
    pub fn set_wire_corrupt_rate(&mut self, a: NodeId, b: NodeId, rate: f64) {
        if let Some(l) = self.links.get_mut(&(a, b)) {
            l.corrupt_rate = rate;
        }
        if let Some(l) = self.links.get_mut(&(b, a)) {
            l.corrupt_rate = rate;
        }
    }

    /// Reset the runtime state of every link (both directions) back to
    /// freshly-built: up, idle, zeroed counters, no fault overrides.
    /// Per-link and order-independent, so map iteration order is
    /// irrelevant to the result.
    pub fn reset_links(&mut self) {
        for link in self.links.values_mut() {
            link.reset_runtime();
        }
    }

    /// All undirected wires, each reported once as its lexicographically
    /// smaller directed key, in sorted order (deterministic regardless of
    /// insertion order — fault planning iterates this).
    pub fn wires(&self) -> Vec<LinkKey> {
        let mut keys: Vec<LinkKey> = self.links.keys().filter(|(a, b)| a <= b).copied().collect();
        keys.sort();
        keys
    }
}

/// Incremental topology builder.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    topo: Topology,
    next_ip: u32,
}

impl TopologyBuilder {
    /// Start an empty topology.
    pub fn new() -> TopologyBuilder {
        TopologyBuilder { topo: Topology::default(), next_ip: 1 }
    }

    /// Add a switch with no ports yet; ports are added by wiring.
    pub fn add_switch(&mut self) -> SwitchId {
        let id = SwitchId(self.topo.switch_ports.len() as u32);
        self.topo.switch_ports.push(Vec::new());
        id
    }

    fn alloc_port(&mut self, sw: SwitchId, target: PortTarget) -> PortNo {
        let ports = &mut self.topo.switch_ports[sw.0 as usize];
        let port = PortNo(ports.len() as u16);
        ports.push(target);
        port
    }

    /// Wire two switches together with symmetric link parameters.
    pub fn connect_switches(
        &mut self,
        a: SwitchId,
        b: SwitchId,
        params: LinkParams,
    ) -> (PortNo, PortNo) {
        let pa = self.alloc_port(a, PortTarget::Unwired);
        let pb = self.alloc_port(b, PortTarget::Unwired);
        self.topo.switch_ports[a.0 as usize][pa.0 as usize] = PortTarget::Switch(b, pb);
        self.topo.switch_ports[b.0 as usize][pb.0 as usize] = PortTarget::Switch(a, pa);
        let na = NodeId::Switch(a);
        let nb = NodeId::Switch(b);
        self.topo.links.insert((na, nb), Link::new(params));
        self.topo.links.insert((nb, na), Link::new(params));
        (pa, pb)
    }

    /// Attach a new endpoint to `sw` with an auto-assigned `10.0.x.y`
    /// address and a MAC derived from the endpoint index.
    pub fn attach_endpoint(&mut self, sw: SwitchId, params: LinkParams) -> EndpointId {
        let ip = Ipv4Addr::from_index(self.next_ip);
        self.next_ip += 1;
        self.attach_endpoint_with(sw, params, ip)
    }

    /// Attach a new endpoint with an explicit IP address.
    pub fn attach_endpoint_with(
        &mut self,
        sw: SwitchId,
        params: LinkParams,
        ip: Ipv4Addr,
    ) -> EndpointId {
        let ep = EndpointId(self.topo.endpoints.len() as u32);
        let mac = MacAddr::from_index(ep.0 + 1);
        let port = self.alloc_port(sw, PortTarget::Endpoint(ep));
        self.topo.endpoints.push(EndpointInfo { mac, ip, switch: sw, port });
        self.topo.ip_index.insert(ip, ep);
        let ns = NodeId::Switch(sw);
        let ne = NodeId::Endpoint(ep);
        self.topo.links.insert((ns, ne), Link::new(params));
        self.topo.links.insert((ne, ns), Link::new(params));
        ep
    }

    /// Finish building.
    pub fn build(self) -> Topology {
        self.topo
    }

    /// A smart-home shape: one IoT router (a single switch) with `devices`
    /// Wi-Fi-attached device endpoints, plus a WAN uplink endpoint that
    /// stands in for "the Internet" (remote attackers and cloud services
    /// attach behind it in `iotdev`). Returns
    /// `(switch, device_endpoints, wan_endpoint)`.
    pub fn smart_home(devices: usize) -> (Topology, SwitchId, Vec<EndpointId>, EndpointId) {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch();
        let eps: Vec<EndpointId> =
            (0..devices).map(|_| b.attach_endpoint(sw, LinkParams::wifi())).collect();
        let wan = b.attach_endpoint_with(sw, LinkParams::wan(), Ipv4Addr::new(100, 64, 0, 1));
        (b.build(), sw, eps, wan)
    }

    /// An enterprise shape: a core switch wired to `edges` edge switches,
    /// each with `devices_per_edge` device endpoints; a WAN uplink and an
    /// NFV-cluster attachment point hang off the core. Returns
    /// `(topology, core, edge_switches, device_endpoints, wan, cluster)`.
    #[allow(clippy::type_complexity)]
    pub fn enterprise(
        edges: usize,
        devices_per_edge: usize,
    ) -> (Topology, SwitchId, Vec<SwitchId>, Vec<EndpointId>, EndpointId, EndpointId) {
        let mut b = TopologyBuilder::new();
        let core = b.add_switch();
        let mut edge_switches = Vec::with_capacity(edges);
        let mut eps = Vec::with_capacity(edges * devices_per_edge);
        for _ in 0..edges {
            let e = b.add_switch();
            b.connect_switches(core, e, LinkParams::lan());
            for _ in 0..devices_per_edge {
                eps.push(b.attach_endpoint(e, LinkParams::wifi()));
            }
            edge_switches.push(e);
        }
        let wan = b.attach_endpoint_with(core, LinkParams::wan(), Ipv4Addr::new(100, 64, 0, 1));
        let cluster = b.attach_endpoint_with(core, LinkParams::lan(), Ipv4Addr::new(10, 200, 0, 1));
        (b.build(), core, edge_switches, eps, wan, cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_wires_ports_symmetrically() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch();
        let s1 = b.add_switch();
        let (p0, p1) = b.connect_switches(s0, s1, LinkParams::lan());
        let t = b.build();
        assert_eq!(t.port_target(s0, p0), PortTarget::Switch(s1, p1));
        assert_eq!(t.port_target(s1, p1), PortTarget::Switch(s0, p0));
        assert!(t.link(NodeId::Switch(s0), NodeId::Switch(s1)).is_some());
        assert!(t.link(NodeId::Switch(s1), NodeId::Switch(s0)).is_some());
    }

    #[test]
    fn endpoint_attachment_and_ip_index() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch();
        let e0 = b.attach_endpoint(s0, LinkParams::wifi());
        let e1 = b.attach_endpoint_with(s0, LinkParams::lan(), Ipv4Addr::new(192, 168, 1, 50));
        let t = b.build();
        assert_eq!(t.endpoint(e0).switch, s0);
        assert_ne!(t.endpoint(e0).ip, t.endpoint(e1).ip);
        assert_eq!(t.endpoint_by_ip(Ipv4Addr::new(192, 168, 1, 50)), Some(e1));
        assert_eq!(t.endpoint_by_ip(Ipv4Addr::new(1, 1, 1, 1)), None);
        assert_ne!(t.endpoint(e0).mac, t.endpoint(e1).mac);
    }

    #[test]
    fn smart_home_shape() {
        let (t, sw, eps, wan) = TopologyBuilder::smart_home(5);
        assert_eq!(t.switch_count(), 1);
        assert_eq!(eps.len(), 5);
        assert_eq!(t.endpoint_count(), 6); // 5 devices + WAN
        assert_eq!(t.endpoint(wan).switch, sw);
        assert_eq!(t.ports_of(sw), 6);
    }

    #[test]
    fn enterprise_shape() {
        let (t, core, edges, eps, wan, cluster) = TopologyBuilder::enterprise(3, 4);
        assert_eq!(t.switch_count(), 4);
        assert_eq!(edges.len(), 3);
        assert_eq!(eps.len(), 12);
        assert_eq!(t.endpoint(wan).switch, core);
        assert_eq!(t.endpoint(cluster).switch, core);
        // Core has: 3 edge uplinks + wan + cluster = 5 ports.
        assert_eq!(t.ports_of(core), 5);
        // Each edge: 1 core uplink + 4 devices.
        for e in edges {
            assert_eq!(t.ports_of(e), 5);
        }
    }

    #[test]
    fn wire_failure_is_bidirectional() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch();
        let e0 = b.attach_endpoint(s0, LinkParams::lan());
        let mut t = b.build();
        let ns = NodeId::Switch(s0);
        let ne = NodeId::Endpoint(e0);
        t.fail_wire(ns, ne);
        assert!(!t.link(ns, ne).unwrap().up);
        assert!(!t.link(ne, ns).unwrap().up);
        t.repair_wire(ns, ne);
        assert!(t.link(ns, ne).unwrap().up);
    }

    #[test]
    fn heal_wire_restores_both_directions() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch();
        let e0 = b.attach_endpoint(s0, LinkParams::lan());
        let mut t = b.build();
        let ns = NodeId::Switch(s0);
        let ne = NodeId::Endpoint(e0);
        t.fail_wire(ns, ne);
        t.heal_wire(ns, ne);
        assert!(t.link(ns, ne).unwrap().up);
        assert!(t.link(ne, ns).unwrap().up);
    }

    #[test]
    fn wires_enumerates_each_wire_once_sorted() {
        let (t, _, _, _, _, _) = TopologyBuilder::enterprise(2, 3);
        let wires = t.wires();
        // 2 core-edge trunks + 6 device uplinks + wan + cluster = 10 wires.
        assert_eq!(wires.len(), 10);
        let mut sorted = wires.clone();
        sorted.sort();
        assert_eq!(wires, sorted);
        for (a, b) in &wires {
            assert!(a <= b);
            assert!(t.link(*a, *b).is_some() && t.link(*b, *a).is_some());
        }
    }

    #[test]
    fn wire_burst_helpers_hit_both_directions() {
        let mut b = TopologyBuilder::new();
        let s0 = b.add_switch();
        let e0 = b.attach_endpoint(s0, LinkParams::lan());
        let mut t = b.build();
        let (ns, ne) = (NodeId::Switch(s0), NodeId::Endpoint(e0));
        t.set_wire_burst_loss(ns, ne, Some(0.5));
        assert_eq!(t.link(ne, ns).unwrap().effective_loss(), 0.5);
        t.set_wire_burst_loss(ns, ne, None);
        assert_eq!(t.link(ns, ne).unwrap().effective_loss(), 0.0);
        t.set_wire_corrupt_rate(ns, ne, 0.25);
        assert_eq!(t.link(ne, ns).unwrap().corrupt_rate, 0.25);
    }
}
