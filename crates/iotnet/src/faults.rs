//! Deterministic fault injection for the network substrate.
//!
//! The chaos layer needs repeatable failure schedules: the same seed must
//! produce the same faults at the same simulated instants, run after run.
//! [`FaultScheduler`] therefore rides on the existing event wheel
//! ([`EventQueue`]) rather than drawing random timers at runtime — every
//! fault is scheduled up front (or at least deterministically), and
//! [`FaultScheduler::apply_due`] drains the due ones into a [`Topology`]
//! each simulation tick.
//!
//! Supported fault shapes:
//!
//! * **Link flap** — a wire fails at one instant and *heals* at a later
//!   one ([`FaultScheduler::flap_wire`]). Both halves are scheduled
//!   together so a flap can never leave the wire down forever.
//! * **Loss burst** — a wire's loss probability is overridden for a
//!   window ([`FaultScheduler::loss_burst`]).
//! * **Corruption burst** — frames on a wire are corrupted in flight and
//!   discarded for a window ([`FaultScheduler::corruption_burst`]).
//! * **Partition** — every wire crossing a node-set boundary fails for a
//!   window ([`FaultScheduler::partition`]); the crossing set is computed
//!   deterministically from the topology's sorted wire list.

use crate::addr::NodeId;
use crate::engine::EventQueue;
use crate::time::SimTime;
use crate::topology::Topology;
use trace::{TraceEvent, Tracer};

/// One scheduled fault action against the topology.
#[derive(Debug, Clone, PartialEq)]
pub enum NetFault {
    /// Fail both directions of the wire between two nodes.
    WireDown(NodeId, NodeId),
    /// Heal both directions of the wire between two nodes.
    WireHeal(NodeId, NodeId),
    /// Begin a loss burst: override the wire's loss probability.
    LossBurst(NodeId, NodeId, f64),
    /// End a loss burst: restore the wire's static loss probability.
    LossClear(NodeId, NodeId),
    /// Begin a corruption burst at the given per-frame probability.
    CorruptBurst(NodeId, NodeId, f64),
    /// End a corruption burst.
    CorruptClear(NodeId, NodeId),
    /// Fail every wire in the cut set (a network partition forms).
    PartitionCut(Vec<(NodeId, NodeId)>),
    /// Heal every wire in the cut set (the partition heals).
    PartitionHeal(Vec<(NodeId, NodeId)>),
}

/// A seedless, deterministic fault schedule over the event wheel.
///
/// Faults are enqueued with explicit times; ties apply in FIFO order
/// (the event wheel is FIFO-stable), so a schedule built the same way
/// twice applies identically twice.
#[derive(Debug, Default)]
pub struct FaultScheduler {
    queue: EventQueue<NetFault>,
    /// Total fault actions applied so far.
    pub applied: u64,
    /// Control-class trace emission (fault fire/heal; disabled by default).
    tracer: Tracer,
}

impl FaultScheduler {
    /// An empty schedule.
    pub fn new() -> FaultScheduler {
        FaultScheduler::default()
    }

    /// Attach a tracer for fault fire/heal events.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Schedule a raw fault action at `at`.
    pub fn schedule(&mut self, at: SimTime, fault: NetFault) {
        self.queue.schedule(at, fault);
    }

    /// Schedule a link flap: the wire between `a` and `b` fails at
    /// `down_at` and heals at `heal_at`. Both halves are enqueued
    /// together, so every injected outage is bounded.
    pub fn flap_wire(&mut self, a: NodeId, b: NodeId, down_at: SimTime, heal_at: SimTime) {
        assert!(down_at <= heal_at, "flap must heal at or after it fails");
        self.queue.schedule(down_at, NetFault::WireDown(a, b));
        self.queue.schedule(heal_at, NetFault::WireHeal(a, b));
    }

    /// Schedule a loss burst on the wire between `a` and `b`: loss
    /// probability `loss` from `from` until `until`.
    pub fn loss_burst(&mut self, a: NodeId, b: NodeId, from: SimTime, until: SimTime, loss: f64) {
        assert!(from <= until, "burst must end at or after it starts");
        self.queue.schedule(from, NetFault::LossBurst(a, b, loss));
        self.queue.schedule(until, NetFault::LossClear(a, b));
    }

    /// Schedule a corruption burst on the wire between `a` and `b`:
    /// per-frame corruption probability `rate` from `from` until `until`.
    pub fn corruption_burst(
        &mut self,
        a: NodeId,
        b: NodeId,
        from: SimTime,
        until: SimTime,
        rate: f64,
    ) {
        assert!(from <= until, "burst must end at or after it starts");
        self.queue.schedule(from, NetFault::CorruptBurst(a, b, rate));
        self.queue.schedule(until, NetFault::CorruptClear(a, b));
    }

    /// Schedule a partition isolating `group` from the rest of the
    /// topology between `from` and `until`: every wire with exactly one
    /// end in `group` fails at `from` and heals at `until`. The cut set
    /// is computed from the topology's sorted wire list, so identical
    /// topologies yield identical cuts.
    pub fn partition(&mut self, topo: &Topology, group: &[NodeId], from: SimTime, until: SimTime) {
        assert!(from <= until, "partition must heal at or after it cuts");
        let cut: Vec<(NodeId, NodeId)> = topo
            .wires()
            .into_iter()
            .filter(|(a, b)| group.contains(a) != group.contains(b))
            .collect();
        self.queue.schedule(from, NetFault::PartitionCut(cut.clone()));
        self.queue.schedule(until, NetFault::PartitionHeal(cut));
    }

    /// Number of fault actions still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Time of the next pending fault action, if any.
    pub fn next_at(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Apply every fault action due at or before `now` to the topology,
    /// in schedule order. Returns how many actions were applied.
    pub fn apply_due(&mut self, now: SimTime, topo: &mut Topology) -> usize {
        let mut n = 0;
        while let Some((at, fault)) = self.queue.pop_until(now) {
            // The trace key is the fault's *scheduled* instant, not the tick
            // that drained it — schedules trace identically regardless of how
            // coarsely the caller polls.
            match fault {
                NetFault::WireDown(a, b) => {
                    self.tracer.emit(at.as_nanos(), TraceEvent::FaultFired { kind: "wire-down" });
                    topo.fail_wire(a, b);
                }
                NetFault::WireHeal(a, b) => {
                    self.tracer.emit(at.as_nanos(), TraceEvent::FaultHealed { kind: "wire-heal" });
                    topo.heal_wire(a, b);
                }
                NetFault::LossBurst(a, b, loss) => {
                    self.tracer.emit(at.as_nanos(), TraceEvent::FaultFired { kind: "loss-burst" });
                    topo.set_wire_burst_loss(a, b, Some(loss));
                }
                NetFault::LossClear(a, b) => {
                    self.tracer.emit(at.as_nanos(), TraceEvent::FaultHealed { kind: "loss-clear" });
                    topo.set_wire_burst_loss(a, b, None);
                }
                NetFault::CorruptBurst(a, b, rate) => {
                    self.tracer
                        .emit(at.as_nanos(), TraceEvent::FaultFired { kind: "corrupt-burst" });
                    topo.set_wire_corrupt_rate(a, b, rate);
                }
                NetFault::CorruptClear(a, b) => {
                    self.tracer
                        .emit(at.as_nanos(), TraceEvent::FaultHealed { kind: "corrupt-clear" });
                    topo.set_wire_corrupt_rate(a, b, 0.0);
                }
                NetFault::PartitionCut(cut) => {
                    self.tracer
                        .emit(at.as_nanos(), TraceEvent::FaultFired { kind: "partition-cut" });
                    for (a, b) in cut {
                        topo.fail_wire(a, b);
                    }
                }
                NetFault::PartitionHeal(cut) => {
                    self.tracer
                        .emit(at.as_nanos(), TraceEvent::FaultHealed { kind: "partition-heal" });
                    for (a, b) in cut {
                        topo.heal_wire(a, b);
                    }
                }
            }
            n += 1;
        }
        self.applied += n as u64;
        n as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::EndpointId;
    use crate::link::LinkParams;
    use crate::net::Network;
    use crate::packet::{Packet, TransportHeader};
    use crate::time::SimDuration;
    use crate::topology::TopologyBuilder;
    use bytes::Bytes;

    fn two_host_net() -> (Network, EndpointId, EndpointId) {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch();
        let a = b.attach_endpoint(sw, LinkParams::lan());
        let c = b.attach_endpoint(sw, LinkParams::lan());
        (Network::new(b.build(), 7), a, c)
    }

    fn pkt(net: &Network, from: EndpointId, to: EndpointId, payload: &[u8]) -> Packet {
        Packet::new(
            net.mac_of(from),
            net.mac_of(to),
            net.ip_of(from),
            net.ip_of(to),
            TransportHeader::udp(1000, 80),
            Bytes::copy_from_slice(payload),
        )
    }

    #[test]
    fn flap_fails_then_heals_and_traffic_resumes() {
        let (mut net, a, c) = two_host_net();
        let (na, nsw) = (NodeId::Endpoint(a), NodeId::Switch(crate::addr::SwitchId(0)));
        let mut faults = FaultScheduler::new();
        faults.flap_wire(na, nsw, SimTime::from_secs(1), SimTime::from_secs(2));

        // During the flap the uplink is dead: the packet is dropped.
        faults.apply_due(SimTime::from_secs(1), net.topology_mut());
        net.send(a, SimTime::from_secs(1), pkt(&net, a, c, b"lost"));
        assert!(net.step_until(SimTime::from_millis(1500)).is_empty());

        // After the heal, traffic resumes.
        faults.apply_due(SimTime::from_secs(2), net.topology_mut());
        net.send(a, SimTime::from_secs(2), pkt(&net, a, c, b"back"));
        let deliveries = net.step_until(SimTime::from_secs(3));
        assert_eq!(deliveries.len(), 1);
        assert_eq!(&deliveries[0].packet.payload[..], b"back");
        assert_eq!(faults.applied, 2);
        assert_eq!(faults.pending(), 0);
    }

    #[test]
    fn loss_and_corruption_bursts_window_correctly() {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch();
        let e = b.attach_endpoint(sw, LinkParams::ideal());
        let mut topo = b.build();
        let (ne, ns) = (NodeId::Endpoint(e), NodeId::Switch(sw));

        let mut faults = FaultScheduler::new();
        faults.loss_burst(ne, ns, SimTime::from_secs(1), SimTime::from_secs(2), 0.9);
        faults.corruption_burst(ne, ns, SimTime::from_secs(1), SimTime::from_secs(3), 0.4);

        faults.apply_due(SimTime::from_secs(1), &mut topo);
        assert_eq!(topo.link(ne, ns).unwrap().effective_loss(), 0.9);
        assert_eq!(topo.link(ns, ne).unwrap().corrupt_rate, 0.4);

        faults.apply_due(SimTime::from_secs(2), &mut topo);
        assert_eq!(topo.link(ne, ns).unwrap().effective_loss(), 0.0);
        assert_eq!(topo.link(ne, ns).unwrap().corrupt_rate, 0.4);

        faults.apply_due(SimTime::from_secs(3), &mut topo);
        assert_eq!(topo.link(ne, ns).unwrap().corrupt_rate, 0.0);
        assert_eq!(faults.applied, 4);
    }

    #[test]
    fn partition_cuts_exactly_the_boundary_wires() {
        let (mut topo, core, edges, eps, _, _) = TopologyBuilder::enterprise(2, 2);
        let mut faults = FaultScheduler::new();
        // Isolate edge 0 and everything attached to it.
        let group =
            vec![NodeId::Switch(edges[0]), NodeId::Endpoint(eps[0]), NodeId::Endpoint(eps[1])];
        faults.partition(&topo, &group, SimTime::from_secs(1), SimTime::from_secs(5));
        faults.apply_due(SimTime::from_secs(1), &mut topo);
        // Only the core<->edge0 trunk crosses the boundary.
        let trunk = (NodeId::Switch(core), NodeId::Switch(edges[0]));
        assert!(!topo.link(trunk.0, trunk.1).unwrap().up);
        // Wires inside the group and outside it are untouched.
        assert!(topo.link(NodeId::Switch(edges[0]), NodeId::Endpoint(eps[0])).unwrap().up);
        assert!(topo.link(NodeId::Switch(core), NodeId::Switch(edges[1])).unwrap().up);
        faults.apply_due(SimTime::from_secs(5), &mut topo);
        assert!(topo.link(trunk.0, trunk.1).unwrap().up);
    }

    #[test]
    fn same_schedule_applies_identically() {
        let build = |faults: &mut FaultScheduler, topo: &Topology| {
            let w = topo.wires();
            let (a, b) = w[0];
            faults.flap_wire(a, b, SimTime::from_millis(100), SimTime::from_millis(400));
            faults.loss_burst(a, b, SimTime::from_millis(200), SimTime::from_millis(300), 0.5);
        };
        let run = || {
            let (mut topo, _, _, _, _, _) = TopologyBuilder::enterprise(2, 2);
            let mut faults = FaultScheduler::new();
            build(&mut faults, &topo);
            let mut trace = Vec::new();
            let mut t = SimTime::ZERO;
            while faults.pending() > 0 {
                t += SimDuration::from_millis(50);
                let n = faults.apply_due(t, &mut topo);
                if n > 0 {
                    trace.push((t, n, format!("{:?}", topo.wires())));
                }
            }
            trace
        };
        assert_eq!(run(), run());
    }
}
