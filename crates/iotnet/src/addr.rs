//! Addressing and identifiers.
//!
//! The simulator uses real-format MAC and IPv4 addresses so that the wire
//! codec in [`crate::packet`] produces byte-accurate headers, plus small
//! integer identifiers for switches, endpoints and topology nodes.

use core::fmt;
use serde::{Deserialize, Serialize};

/// A 48-bit Ethernet MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// A locally-administered unicast MAC derived from a small integer,
    /// convenient for assigning unique device MACs in generated topologies.
    pub const fn from_index(idx: u32) -> MacAddr {
        let b = idx.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// Whether the multicast (group) bit is set.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", b[0], b[1], b[2], b[3], b[4], b[5])
    }
}

/// An IPv4 address.
///
/// A thin wrapper (rather than `std::net::Ipv4Addr`) so that we control the
/// serde representation and can add prefix-matching helpers used by flow
/// rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr([0, 0, 0, 0]);
    /// The limited broadcast address `255.255.255.255`.
    pub const BROADCAST: Ipv4Addr = Ipv4Addr([255, 255, 255, 255]);

    /// Construct from four dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr([a, b, c, d])
    }

    /// Construct a `10.0.x.y` address from a small index, used when
    /// auto-assigning addresses in generated topologies.
    pub const fn from_index(idx: u32) -> Ipv4Addr {
        Ipv4Addr([10, ((idx >> 16) & 0xff) as u8, ((idx >> 8) & 0xff) as u8, (idx & 0xff) as u8])
    }

    /// The address as a big-endian `u32`.
    pub const fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Construct from a big-endian `u32`.
    pub const fn from_u32(v: u32) -> Ipv4Addr {
        Ipv4Addr(v.to_be_bytes())
    }

    /// Whether `self` falls inside `prefix/len`.
    pub fn in_prefix(self, prefix: Ipv4Addr, len: u8) -> bool {
        if len == 0 {
            return true;
        }
        let len = len.min(32);
        let mask = if len == 32 { u32::MAX } else { !(u32::MAX >> len) };
        (self.to_u32() & mask) == (prefix.to_u32() & mask)
    }

    /// Whether this address is in RFC1918 private space (the paper's
    /// deployments are homes and enterprises, i.e. private networks).
    pub fn is_private(self) -> bool {
        self.in_prefix(Ipv4Addr::new(10, 0, 0, 0), 8)
            || self.in_prefix(Ipv4Addr::new(172, 16, 0, 0), 12)
            || self.in_prefix(Ipv4Addr::new(192, 168, 0, 0), 16)
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub const fn index(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of an SDN switch in the topology.
    SwitchId
);
id_type!(
    /// Identifier of an attached endpoint (a device NIC, an attacker host,
    /// the controller's management interface, a cloud/WAN stub, ...).
    EndpointId
);

/// A switch port number (local to one switch).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PortNo(pub u16);

impl PortNo {
    /// Wildcard used in flow matches ("any ingress port").
    pub const ANY: PortNo = PortNo(u16::MAX);
}

impl fmt::Display for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A node in the topology graph: either a switch or an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// An SDN switch.
    Switch(SwitchId),
    /// An attached endpoint.
    Endpoint(EndpointId),
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Switch(s) => write!(f, "{s}"),
            NodeId::Endpoint(e) => write!(f, "{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display_and_flags() {
        let m = MacAddr([0x02, 0, 0, 0, 0x01, 0x2a]);
        assert_eq!(m.to_string(), "02:00:00:00:01:2a");
        assert!(!m.is_broadcast());
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::from_index(7).is_multicast());
    }

    #[test]
    fn mac_from_index_unique() {
        let a = MacAddr::from_index(1);
        let b = MacAddr::from_index(2);
        assert_ne!(a, b);
    }

    #[test]
    fn ipv4_prefix_matching() {
        let a = Ipv4Addr::new(10, 0, 1, 7);
        assert!(a.in_prefix(Ipv4Addr::new(10, 0, 0, 0), 8));
        assert!(a.in_prefix(Ipv4Addr::new(10, 0, 1, 0), 24));
        assert!(!a.in_prefix(Ipv4Addr::new(10, 0, 2, 0), 24));
        assert!(a.in_prefix(Ipv4Addr::UNSPECIFIED, 0));
        assert!(a.in_prefix(a, 32));
        assert!(!Ipv4Addr::new(10, 0, 1, 8).in_prefix(a, 32));
    }

    #[test]
    fn ipv4_private_ranges() {
        assert!(Ipv4Addr::new(10, 1, 2, 3).is_private());
        assert!(Ipv4Addr::new(192, 168, 0, 1).is_private());
        assert!(Ipv4Addr::new(172, 31, 0, 1).is_private());
        assert!(!Ipv4Addr::new(172, 32, 0, 1).is_private());
        assert!(!Ipv4Addr::new(8, 8, 8, 8).is_private());
    }

    #[test]
    fn ipv4_u32_round_trip() {
        let a = Ipv4Addr::new(192, 168, 10, 20);
        assert_eq!(Ipv4Addr::from_u32(a.to_u32()), a);
    }

    #[test]
    fn display_ids() {
        assert_eq!(SwitchId(3).to_string(), "SwitchId(3)");
        assert_eq!(EndpointId(9).to_string(), "EndpointId(9)");
        assert_eq!(PortNo(2).to_string(), "p2");
    }
}
