//! Packet capture.
//!
//! Mirrored packets (flow action `Mirror`) and IDS-relevant traffic land in
//! a bounded ring buffer. The learning layer replays captures to mine
//! signatures, and the test suite asserts on them. Captures store both the
//! structured packet and the exact wire bytes, since signature matchers
//! operate on wire bytes.

use crate::addr::SwitchId;
use crate::packet::Packet;
use crate::time::SimTime;
use bytes::Bytes;
use std::collections::VecDeque;

/// One captured packet.
#[derive(Debug, Clone)]
pub struct CapturedPacket {
    /// Capture timestamp.
    pub at: SimTime,
    /// Switch the packet was mirrored from.
    pub switch: SwitchId,
    /// The structured packet.
    pub packet: Packet,
    /// Exact wire bytes.
    pub wire: Bytes,
}

/// A bounded ring buffer of captured packets.
#[derive(Debug)]
pub struct Capture {
    ring: VecDeque<CapturedPacket>,
    capacity: usize,
    /// Total packets ever captured (including evicted ones).
    pub total: u64,
}

impl Capture {
    /// A capture buffer holding up to `capacity` packets.
    pub fn new(capacity: usize) -> Capture {
        Capture { ring: VecDeque::with_capacity(capacity.min(4096)), capacity, total: 0 }
    }

    /// Record a packet, evicting the oldest if full.
    pub fn record(&mut self, at: SimTime, switch: SwitchId, packet: Packet) {
        let wire = packet.to_wire();
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(CapturedPacket { at, switch, packet, wire });
        self.total += 1;
    }

    /// Number of packets currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Iterate oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &CapturedPacket> {
        self.ring.iter()
    }

    /// Drain all held packets, oldest-first.
    pub fn drain(&mut self) -> Vec<CapturedPacket> {
        self.ring.drain(..).collect()
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.ring.clear();
    }

    /// Return the buffer to its freshly-constructed state — empty, total
    /// zero, same `capacity` bound — retaining the ring's allocation.
    /// The ring is the single largest per-world buffer (E25 recycles it
    /// across fleet homes), and since a `VecDeque`'s spare capacity is
    /// behaviorally invisible, a recycled capture records and evicts
    /// exactly like a cold one.
    pub fn recycle(&mut self) {
        self.ring.clear();
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Ipv4Addr, MacAddr};
    use crate::packet::TransportHeader;

    fn pkt(n: u8) -> Packet {
        Packet::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            TransportHeader::udp(n as u16, 80),
            Bytes::new(),
        )
    }

    #[test]
    fn records_and_evicts() {
        let mut c = Capture::new(3);
        for i in 0..5 {
            c.record(SimTime::from_millis(i as u64), SwitchId(0), pkt(i));
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.total, 5);
        let ports: Vec<u16> = c.iter().map(|p| p.packet.transport.src_port()).collect();
        assert_eq!(ports, vec![2, 3, 4]);
    }

    #[test]
    fn wire_bytes_match_packet() {
        let mut c = Capture::new(8);
        c.record(SimTime::ZERO, SwitchId(1), pkt(9));
        let cap = c.iter().next().unwrap();
        assert_eq!(cap.wire, cap.packet.to_wire());
        assert_eq!(cap.switch, SwitchId(1));
    }

    #[test]
    fn drain_empties() {
        let mut c = Capture::new(8);
        c.record(SimTime::ZERO, SwitchId(0), pkt(1));
        c.record(SimTime::ZERO, SwitchId(0), pkt(2));
        let drained = c.drain();
        assert_eq!(drained.len(), 2);
        assert!(c.is_empty());
        assert_eq!(c.total, 2);
    }
}
