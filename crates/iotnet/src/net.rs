//! The [`Network`]: wiring, switching, steering and delivery.
//!
//! The network owns the topology, the switches, a time-ordered event queue
//! and the registry of **inline processors** — the hook through which
//! µmboxes (built in the `umbox` crate) interpose on traffic. Higher
//! layers drive the network with a simple inversion-of-control loop:
//!
//! ```text
//! loop {
//!     for delivery in net.step_until(deadline) {
//!         // hand each delivered packet to the owning device/attacker,
//!         // which may call net.send(...) in response
//!     }
//! }
//! ```
//!
//! This keeps `iotnet` entirely independent of device logic while still
//! modelling the paper's enforcement path: *device → first-hop switch →
//! (steer to µmbox) → destination*.

use crate::addr::{EndpointId, Ipv4Addr, MacAddr, NodeId, PortNo, SwitchId};
use crate::capture::Capture;
use crate::engine::{AnyEventQueue, QueueKind};
use crate::flow::{FlowRule, SteerId};
use crate::packet::Packet;
use crate::stats::NetStats;
use crate::switch::{Switch, SwitchDecision};
use crate::time::{SimDuration, SimTime};
use crate::topology::{PortTarget, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use trace::{MetricsRegistry, Tracer};

/// A packet delivered to an endpoint.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// Receiving endpoint.
    pub endpoint: EndpointId,
    /// Delivery time.
    pub at: SimTime,
    /// The packet.
    pub packet: Packet,
}

/// Packets surviving inline processing, stored inline for the dominant
/// verdicts. *Pass* (one packet) and *drop* (none) never touch the heap;
/// only multi-packet verdicts — a proxy answering with several replies —
/// spill to a `Vec`. This keeps the steered steady state allocation-free.
#[derive(Debug, Default)]
pub struct ForwardList {
    one: Option<Packet>,
    rest: Vec<Packet>,
}

impl ForwardList {
    /// An empty list (the drop verdict).
    pub fn new() -> ForwardList {
        ForwardList::default()
    }

    /// A single-packet list (the pass verdict), allocation-free.
    pub fn one(pkt: Packet) -> ForwardList {
        ForwardList { one: Some(pkt), rest: Vec::new() }
    }

    /// Append a packet (the first stays inline).
    pub fn push(&mut self, pkt: Packet) {
        match self.one {
            None if self.rest.is_empty() => self.one = Some(pkt),
            _ => self.rest.push(pkt),
        }
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        usize::from(self.one.is_some()) + self.rest.len()
    }

    /// Whether no packets survived (the drop verdict).
    pub fn is_empty(&self) -> bool {
        self.one.is_none() && self.rest.is_empty()
    }

    /// Iterate over the packets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Packet> {
        self.one.iter().chain(self.rest.iter())
    }
}

impl From<Vec<Packet>> for ForwardList {
    fn from(v: Vec<Packet>) -> ForwardList {
        ForwardList { one: None, rest: v }
    }
}

impl IntoIterator for ForwardList {
    type Item = Packet;
    type IntoIter = std::iter::Chain<std::option::IntoIter<Packet>, std::vec::IntoIter<Packet>>;
    fn into_iter(self) -> Self::IntoIter {
        self.one.into_iter().chain(self.rest)
    }
}

impl<'a> IntoIterator for &'a ForwardList {
    type Item = &'a Packet;
    type IntoIter = std::iter::Chain<std::option::Iter<'a, Packet>, std::slice::Iter<'a, Packet>>;
    fn into_iter(self) -> Self::IntoIter {
        self.one.iter().chain(self.rest.iter())
    }
}

/// Outcome of inline processing: packets to keep forwarding (empty = drop)
/// plus the processing latency the detour added.
#[derive(Debug)]
pub struct InlineVerdict {
    /// Packets that continue from the steer switch (the original, a
    /// modified copy, a proxy reply toward the source — or nothing).
    pub forward: ForwardList,
    /// Processing latency added by the µmbox itself.
    pub latency: SimDuration,
}

impl InlineVerdict {
    /// Forward the packet unchanged with the given processing latency.
    pub fn pass(pkt: Packet, latency: SimDuration) -> InlineVerdict {
        InlineVerdict { forward: ForwardList::one(pkt), latency }
    }

    /// Drop the packet.
    pub fn drop(latency: SimDuration) -> InlineVerdict {
        InlineVerdict { forward: ForwardList::new(), latency }
    }
}

/// An inline packet processor — the attachment point for µmboxes.
///
/// Implementations live in the `umbox` crate; `iotnet` only defines the
/// contract. Processing is synchronous from the simulator's point of view;
/// the verdict's `latency` models the processing time and is added to the
/// forwarding delay of the surviving packets.
pub trait InlineProcessor {
    /// Process one packet that the flow table steered here.
    fn process(&mut self, now: SimTime, pkt: Packet) -> InlineVerdict;

    /// A short human-readable label (for reports and debugging).
    fn label(&self) -> &str {
        "inline"
    }
}

/// A registered steer point: the processor plus the fixed detour latency
/// of reaching it (e.g. tunnelling to the on-premise cluster and back).
pub struct SteerHandle {
    /// The processor.
    pub processor: Box<dyn InlineProcessor>,
    /// Fixed detour latency added to every steered packet (tunnel RTT).
    pub detour: SimDuration,
    /// Packets steered through this point.
    pub hits: u64,
}

enum NetEvent {
    AtSwitch { sw: SwitchId, in_port: PortNo, pkt: Packet },
    AtEndpoint { ep: EndpointId, pkt: Packet },
}

/// Recyclable network storage harvested from a finished simulation
/// (E25 arena-reuse). Holds the buffers whose construction dominates a
/// per-home world build — the event queue (arena + wheel + heaps), the
/// capture ring and the delivery buffer — each already reset to its
/// cold state so reuse is behaviorally invisible. Deliberately excludes
/// the steer `HashMap`: recycled map capacity could perturb iteration
/// order, and determinism outranks the few bytes it would save.
#[derive(Debug, Default)]
pub struct NetScrap {
    queue: Option<AnyEventQueue<NetEvent>>,
    capture: Option<Capture>,
    deliveries: Vec<Delivery>,
    /// Builds that reused this scrap's retained event queue.
    pub queue_reused: u64,
    /// Builds that cold-allocated their event queue (no matching scrap).
    pub queue_cold: u64,
    /// Builds that reused this scrap's retained capture ring.
    pub capture_reused: u64,
    /// Builds that cold-allocated their capture ring.
    pub capture_cold: u64,
}

impl NetScrap {
    /// Refill this scrap's buffers from a freshly harvested one while
    /// accumulating the reuse counters — [`Network::reclaim`] produces a
    /// counter-free scrap, so a plain assignment would silently zero the
    /// lifetime reuse statistics the fleet reports.
    pub fn refill(&mut self, harvested: NetScrap) {
        self.queue = harvested.queue;
        self.capture = harvested.capture;
        self.deliveries = harvested.deliveries;
        self.queue_reused += harvested.queue_reused;
        self.queue_cold += harvested.queue_cold;
        self.capture_reused += harvested.capture_reused;
        self.capture_cold += harvested.capture_cold;
    }
}

/// The simulated network.
///
/// ```
/// use iotnet::link::LinkParams;
/// use iotnet::net::Network;
/// use iotnet::packet::{Packet, TransportHeader};
/// use iotnet::time::SimTime;
/// use iotnet::topology::TopologyBuilder;
///
/// let mut b = TopologyBuilder::new();
/// let sw = b.add_switch();
/// let a = b.attach_endpoint(sw, LinkParams::lan());
/// let z = b.attach_endpoint(sw, LinkParams::lan());
/// let mut net = Network::new(b.build(), 42);
///
/// let pkt = Packet::new(
///     net.mac_of(a), net.mac_of(z), net.ip_of(a), net.ip_of(z),
///     TransportHeader::udp(5683, 5683), bytes::Bytes::from_static(b"hi"),
/// );
/// net.send(a, SimTime::ZERO, pkt);
/// let deliveries = net.step_until(SimTime::from_secs(1));
/// assert_eq!(deliveries.len(), 1);
/// assert_eq!(deliveries[0].endpoint, z);
/// ```
pub struct Network {
    topo: Topology,
    switches: Vec<Switch>,
    queue: AnyEventQueue<NetEvent>,
    steer: std::collections::HashMap<SteerId, SteerHandle>,
    deliveries: Vec<Delivery>,
    /// Mirrored-packet capture buffer.
    pub capture: Capture,
    rng: StdRng,
    /// Aggregate counters.
    pub stats: NetStats,
}

impl Network {
    /// Build a network over `topo`, seeding the loss-process RNG. Runs on
    /// the default (timer-wheel) event queue.
    pub fn new(topo: Topology, seed: u64) -> Network {
        Network::with_queue(topo, seed, QueueKind::default())
    }

    /// [`Network::new`] on an explicit event-queue backend — the hook the
    /// wheel-vs-heap differential harness uses to run whole worlds against
    /// the reference queue.
    pub fn with_queue(topo: Topology, seed: u64, kind: QueueKind) -> Network {
        Network::with_queue_recycled(topo, seed, kind, &mut NetScrap::default())
    }

    /// [`Network::with_queue`], rebuilding out of a [`NetScrap`]'s
    /// retained buffers where their shapes match (queue backend) and
    /// cold-allocating the rest. An empty scrap is exactly the cold
    /// path; a scrap harvested by [`Network::reclaim`] skips the big
    /// per-world allocations (event arena, capture ring, delivery
    /// buffer) without changing a single simulated byte.
    pub fn with_queue_recycled(
        topo: Topology,
        seed: u64,
        kind: QueueKind,
        scrap: &mut NetScrap,
    ) -> Network {
        let switches = (0..topo.switch_count())
            .map(|i| Switch::new(SwitchId(i as u32), topo.ports_of(SwitchId(i as u32))))
            .collect();
        // Pre-size the event arena for the typical in-flight load — a few
        // packets per endpoint plus inter-switch hops — so the warm-up
        // phase fills capacity once and the steady state never reallocates.
        let in_flight = (topo.endpoint_count() * 4 + topo.switch_count() * 2).max(64);
        let queue = match scrap.queue.take() {
            Some(q) if q.kind() == kind => {
                scrap.queue_reused += 1;
                q
            }
            _ => {
                scrap.queue_cold += 1;
                AnyEventQueue::with_capacity(kind, in_flight)
            }
        };
        let capture = match scrap.capture.take() {
            Some(c) => {
                scrap.capture_reused += 1;
                c
            }
            None => {
                scrap.capture_cold += 1;
                Capture::new(65_536)
            }
        };
        let deliveries = std::mem::take(&mut scrap.deliveries);
        Network {
            topo,
            switches,
            queue,
            steer: std::collections::HashMap::new(),
            deliveries,
            capture,
            rng: StdRng::seed_from_u64(seed ^ 0x006e_6574_776f_726b_u64),
            stats: NetStats::default(),
        }
    }

    /// Tear the network down into recyclable storage: the event queue,
    /// capture ring and delivery buffer, each reset to its
    /// freshly-constructed state with capacity retained. The next
    /// [`Network::with_queue_recycled`] build reuses them (E25
    /// arena-reuse across fleet homes).
    pub fn reclaim(mut self) -> NetScrap {
        self.queue.reset();
        self.capture.recycle();
        self.deliveries.clear();
        NetScrap {
            queue: Some(self.queue),
            capture: Some(self.capture),
            deliveries: self.deliveries,
            ..NetScrap::default()
        }
    }

    /// Reset the network in place to an observably freshly-built state —
    /// the resident-world (E26) counterpart of tearing down via
    /// [`Network::reclaim`] and rebuilding. Links, switches, the event
    /// queue, capture ring, delivery buffer and counters all return to
    /// their cold values with capacity retained; the loss-process RNG is
    /// reseeded exactly as [`Network::with_queue_recycled`] seeds it. The
    /// steer map is replaced by a brand-new `HashMap` for the same
    /// determinism reason the scrap excludes it: recycled map capacity
    /// could perturb iteration order.
    pub fn reset_resident(&mut self, seed: u64) {
        self.topo.reset_links();
        for sw in &mut self.switches {
            sw.reset_resident();
        }
        self.queue.reset();
        self.steer = std::collections::HashMap::new();
        self.deliveries.clear();
        self.capture.recycle();
        self.rng = StdRng::seed_from_u64(seed ^ 0x006e_6574_776f_726b_u64);
        self.stats = NetStats::default();
    }

    /// Select the flow-table lookup engine on every switch: packed-key
    /// SoA probing (`true`, the default) or the legacy field-by-field
    /// scan (`false`). Both return identical decisions — this is the
    /// toggle the E21 benchmark's legacy arm uses.
    pub fn set_packed_lookup(&mut self, on: bool) {
        for sw in &mut self.switches {
            sw.table.set_packed_lookup(on);
        }
    }

    /// Attach a tracer to every switch (cache and policy-drop events).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        for sw in &mut self.switches {
            sw.set_tracer(tracer.clone());
        }
    }

    /// Current simulated time (timestamp of the last processed event).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Immutable topology access.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Mutable topology access (failure injection).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// The MAC address of an endpoint (the simulator's stand-in for ARP).
    pub fn mac_of(&self, ep: EndpointId) -> MacAddr {
        self.topo.endpoint(ep).mac
    }

    /// The IP address of an endpoint.
    pub fn ip_of(&self, ep: EndpointId) -> Ipv4Addr {
        self.topo.endpoint(ep).ip
    }

    /// The endpoint owning `ip`, if any.
    pub fn endpoint_by_ip(&self, ip: Ipv4Addr) -> Option<EndpointId> {
        self.topo.endpoint_by_ip(ip)
    }

    /// Mutable access to a switch (rule installation).
    pub fn switch_mut(&mut self, sw: SwitchId) -> &mut Switch {
        &mut self.switches[sw.0 as usize]
    }

    /// Read access to a switch.
    pub fn switch(&self, sw: SwitchId) -> &Switch {
        &self.switches[sw.0 as usize]
    }

    /// Install a flow rule on a switch.
    pub fn install_rule(&mut self, sw: SwitchId, rule: FlowRule) {
        self.switches[sw.0 as usize].install(rule);
    }

    /// Remove rules stamped with `cookie` from every switch; returns the
    /// number removed.
    pub fn remove_rules_by_cookie(&mut self, cookie: u64) -> usize {
        self.switches.iter_mut().map(|s| s.remove_by_cookie(cookie)).sum()
    }

    /// Register an inline processor under `id` with a fixed detour latency.
    /// Replaces any previous registration under the same id.
    pub fn register_steer(
        &mut self,
        id: SteerId,
        processor: Box<dyn InlineProcessor>,
        detour: SimDuration,
    ) {
        self.steer.insert(id, SteerHandle { processor, detour, hits: 0 });
    }

    /// Remove a steer registration, returning it if present.
    pub fn unregister_steer(&mut self, id: SteerId) -> Option<SteerHandle> {
        self.steer.remove(&id)
    }

    /// Mutable access to a registered processor.
    pub fn steer_mut(&mut self, id: SteerId) -> Option<&mut SteerHandle> {
        self.steer.get_mut(&id)
    }

    /// Inject a packet from `ep` at time `now` (must be ≥ the network
    /// clock; the event engine clamps earlier times forward).
    pub fn send(&mut self, ep: EndpointId, now: SimTime, pkt: Packet) {
        self.stats.sent += 1;
        let info = *self.topo.endpoint(ep);
        let from = NodeId::Endpoint(ep);
        let to = NodeId::Switch(info.switch);
        let bits = pkt.wire_bits();
        let Some(link) = self.topo.link_mut(from, to) else {
            self.stats.dropped_loss += 1;
            return;
        };
        match link.transmit(now, bits, &mut self.rng) {
            Some(at) => {
                self.queue
                    .schedule(at, NetEvent::AtSwitch { sw: info.switch, in_port: info.port, pkt });
            }
            None => self.stats.dropped_loss += 1,
        }
    }

    /// Process queued events up to and including `deadline`, returning the
    /// packets delivered to endpoints in time order.
    pub fn step_until(&mut self, deadline: SimTime) -> Vec<Delivery> {
        let mut out = Vec::new();
        self.step_until_into(deadline, &mut out);
        out
    }

    /// [`Network::step_until`] appending into a caller-owned buffer, so a
    /// driver loop can reuse one `Vec`'s capacity across ticks instead of
    /// allocating a fresh delivery vector per step.
    pub fn step_until_into(&mut self, deadline: SimTime, out: &mut Vec<Delivery>) {
        while let Some((at, ev)) = self.queue.pop_until(deadline) {
            match ev {
                NetEvent::AtSwitch { sw, in_port, pkt } => {
                    self.handle_at_switch(at, sw, in_port, pkt)
                }
                NetEvent::AtEndpoint { ep, pkt } => {
                    let mac = self.topo.endpoint(ep).mac;
                    if pkt.eth.dst == mac || pkt.eth.dst.is_broadcast() {
                        self.stats.delivered += 1;
                        self.deliveries.push(Delivery { endpoint: ep, at, packet: pkt });
                    } else {
                        self.stats.nic_filtered += 1;
                    }
                }
            }
        }
        out.append(&mut self.deliveries);
    }

    /// Whether any events remain queued.
    pub fn has_pending(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Total events popped by the event engine over the network's lifetime.
    pub fn events_processed(&self) -> u64 {
        self.queue.processed()
    }

    /// Aggregate flow-decision-cache counters across every switch, as
    /// `(lookups, hits)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.switches.iter().fold((0, 0), |(l, h), s| (l + s.cache_lookups, h + s.cache_hits))
    }

    /// Fold the network's scattered counters into a metrics registry
    /// under `net.*` names.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.counter("net.sent", self.stats.sent);
        reg.counter("net.delivered", self.stats.delivered);
        reg.counter("net.dropped_policy", self.stats.dropped_policy);
        reg.counter("net.dropped_loss", self.stats.dropped_loss);
        reg.counter("net.dropped_inline", self.stats.dropped_inline);
        reg.counter("net.steered", self.stats.steered);
        reg.counter("net.mirrored", self.stats.mirrored);
        reg.counter("net.nic_filtered", self.stats.nic_filtered);
        reg.counter("net.events_processed", self.events_processed());
        let (lookups, hits) = self.cache_stats();
        reg.counter("net.cache_lookups", lookups);
        reg.counter("net.cache_hits", hits);
        for sw in &self.switches {
            reg.counter("net.rx_packets", sw.rx_packets);
        }
    }

    /// Timestamp of the next queued event.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    fn handle_at_switch(&mut self, at: SimTime, sw: SwitchId, in_port: PortNo, pkt: Packet) {
        let decision = self.switches[sw.0 as usize].process_at(at, in_port, &pkt);
        match decision {
            SwitchDecision::Drop => {
                self.stats.dropped_policy += 1;
            }
            SwitchDecision::Output(ports) => {
                self.forward_out(at, sw, &ports, pkt);
            }
            SwitchDecision::MirrorAnd(ports) => {
                self.stats.mirrored += 1;
                self.capture.record(at, sw, pkt.clone());
                self.forward_out(at, sw, &ports, pkt);
            }
            SwitchDecision::Steer(id) => {
                self.stats.steered += 1;
                let Some(handle) = self.steer.get_mut(&id) else {
                    // Steer rule with no registered µmbox: fail closed, as
                    // the paper's security posture demands.
                    self.stats.dropped_policy += 1;
                    return;
                };
                handle.hits += 1;
                let verdict = handle.processor.process(at, pkt);
                let delay = handle.detour + verdict.latency;
                if verdict.forward.is_empty() {
                    self.stats.dropped_inline += 1;
                }
                let resume_at = at + delay;
                for out in verdict.forward {
                    // Resume with normal forwarding (not a table re-lookup)
                    // so the steer rule cannot loop on its own output.
                    let ports = self.switches[sw.0 as usize].normal_ports(in_port, &out);
                    self.forward_out(resume_at, sw, &ports, out);
                }
            }
        }
    }

    fn forward_out(&mut self, at: SimTime, sw: SwitchId, ports: &[PortNo], pkt: Packet) {
        for &port in ports {
            let target = self.topo.port_target(sw, port);
            let bits = pkt.wire_bits();
            match target {
                PortTarget::Unwired => {}
                PortTarget::Switch(next_sw, next_port) => {
                    let from = NodeId::Switch(sw);
                    let to = NodeId::Switch(next_sw);
                    if let Some(link) = self.topo.link_mut(from, to) {
                        if let Some(t) = link.transmit(at, bits, &mut self.rng) {
                            self.queue.schedule(
                                t,
                                NetEvent::AtSwitch {
                                    sw: next_sw,
                                    in_port: next_port,
                                    pkt: pkt.clone(),
                                },
                            );
                        } else {
                            self.stats.dropped_loss += 1;
                        }
                    }
                }
                PortTarget::Endpoint(ep) => {
                    let from = NodeId::Switch(sw);
                    let to = NodeId::Endpoint(ep);
                    if let Some(link) = self.topo.link_mut(from, to) {
                        if let Some(t) = link.transmit(at, bits, &mut self.rng) {
                            self.queue.schedule(t, NetEvent::AtEndpoint { ep, pkt: pkt.clone() });
                        } else {
                            self.stats.dropped_loss += 1;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowAction, FlowMatch};
    use crate::link::LinkParams;
    use crate::packet::TransportHeader;
    use crate::topology::TopologyBuilder;
    use bytes::Bytes;

    fn two_host_net() -> (Network, EndpointId, EndpointId, SwitchId) {
        let mut b = TopologyBuilder::new();
        let sw = b.add_switch();
        let a = b.attach_endpoint(sw, LinkParams::lan());
        let c = b.attach_endpoint(sw, LinkParams::lan());
        (Network::new(b.build(), 7), a, c, sw)
    }

    fn pkt_between(net: &Network, from: EndpointId, to: EndpointId, payload: &[u8]) -> Packet {
        Packet::new(
            net.mac_of(from),
            net.mac_of(to),
            net.ip_of(from),
            net.ip_of(to),
            TransportHeader::udp(1000, 80),
            Bytes::copy_from_slice(payload),
        )
    }

    #[test]
    fn end_to_end_delivery() {
        let (mut net, a, c, _) = two_host_net();
        let p = pkt_between(&net, a, c, b"ping");
        net.send(a, SimTime::ZERO, p);
        let deliveries = net.step_until(SimTime::from_secs(1));
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].endpoint, c);
        assert_eq!(&deliveries[0].packet.payload[..], b"ping");
        // LAN link: 100us each hop, two hops.
        assert!(deliveries[0].at >= SimTime::from_micros(200));
        assert_eq!(net.stats.delivered, 1);
    }

    #[test]
    fn policy_drop_blocks_delivery() {
        let (mut net, a, c, sw) = two_host_net();
        let dst_ip = net.ip_of(c);
        net.install_rule(sw, FlowRule::new(100, FlowMatch::to_host(dst_ip), FlowAction::Drop));
        let p = pkt_between(&net, a, c, b"blocked");
        net.send(a, SimTime::ZERO, p);
        let deliveries = net.step_until(SimTime::from_secs(1));
        assert!(deliveries.is_empty());
        assert_eq!(net.stats.dropped_policy, 1);
    }

    #[test]
    fn mirror_captures_and_delivers() {
        let (mut net, a, c, sw) = two_host_net();
        net.install_rule(sw, FlowRule::new(100, FlowMatch::any(), FlowAction::Mirror));
        let p = pkt_between(&net, a, c, b"observed");
        net.send(a, SimTime::ZERO, p);
        let deliveries = net.step_until(SimTime::from_secs(1));
        assert_eq!(deliveries.len(), 1);
        assert_eq!(net.capture.len(), 1);
        assert_eq!(net.stats.mirrored, 1);
    }

    struct CountingDropper {
        seen: std::rc::Rc<std::cell::Cell<u32>>,
    }
    impl InlineProcessor for CountingDropper {
        fn process(&mut self, _now: SimTime, _pkt: Packet) -> InlineVerdict {
            self.seen.set(self.seen.get() + 1);
            InlineVerdict::drop(SimDuration::from_micros(50))
        }
    }

    struct PassThrough;
    impl InlineProcessor for PassThrough {
        fn process(&mut self, _now: SimTime, pkt: Packet) -> InlineVerdict {
            InlineVerdict::pass(pkt, SimDuration::from_micros(50))
        }
    }

    #[test]
    fn steer_to_dropping_processor() {
        let (mut net, a, c, sw) = two_host_net();
        let seen = std::rc::Rc::new(std::cell::Cell::new(0));
        net.register_steer(
            SteerId(1),
            Box::new(CountingDropper { seen: seen.clone() }),
            SimDuration::from_micros(200),
        );
        net.install_rule(sw, FlowRule::new(100, FlowMatch::any(), FlowAction::Steer(SteerId(1))));
        net.send(a, SimTime::ZERO, pkt_between(&net, a, c, b"x"));
        let deliveries = net.step_until(SimTime::from_secs(1));
        assert!(deliveries.is_empty());
        assert_eq!(seen.get(), 1);
        assert_eq!(net.stats.steered, 1);
        assert_eq!(net.stats.dropped_inline, 1);
    }

    #[test]
    fn steer_pass_adds_latency() {
        let (mut net, a, c, sw) = two_host_net();
        // First, measure direct latency.
        net.send(a, SimTime::ZERO, pkt_between(&net, a, c, b"direct"));
        let direct = net.step_until(SimTime::from_secs(1)).remove(0).at;
        // Now steer through a pass-through µmbox with 200us detour + 50us work.
        net.register_steer(SteerId(1), Box::new(PassThrough), SimDuration::from_micros(200));
        net.install_rule(sw, FlowRule::new(100, FlowMatch::any(), FlowAction::Steer(SteerId(1))));
        let t0 = net.now();
        net.send(a, t0, pkt_between(&net, a, c, b"steered"));
        let d = net.step_until(SimTime::from_secs(2)).remove(0);
        let steered_latency = d.at - t0;
        let direct_latency = direct - SimTime::ZERO;
        assert!(steered_latency.as_micros() >= direct_latency.as_micros() + 250);
    }

    #[test]
    fn steer_without_processor_fails_closed() {
        let (mut net, a, c, sw) = two_host_net();
        net.install_rule(sw, FlowRule::new(100, FlowMatch::any(), FlowAction::Steer(SteerId(99))));
        net.send(a, SimTime::ZERO, pkt_between(&net, a, c, b"x"));
        assert!(net.step_until(SimTime::from_secs(1)).is_empty());
        assert_eq!(net.stats.dropped_policy, 1);
    }

    #[test]
    fn multi_switch_forwarding() {
        let (topo, _core, _edges, eps, _wan, _cluster) = TopologyBuilder::enterprise(2, 2);
        let mut net = Network::new(topo, 3);
        // Device on edge 0 to device on edge 1: crosses the core.
        let from = eps[0];
        let to = eps[2];
        let p = pkt_between(&net, from, to, b"cross-edge");
        net.send(from, SimTime::ZERO, p);
        let deliveries = net.step_until(SimTime::from_secs(1));
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].endpoint, to);
    }

    #[test]
    fn nic_filters_flooded_packets() {
        let (mut net, a, c, _) = two_host_net();
        // Unknown unicast floods to both c and... only c here (2 endpoints),
        // but attach a third endpoint to observe filtering.
        let p = pkt_between(&net, a, c, b"flood");
        net.send(a, SimTime::ZERO, p);
        net.step_until(SimTime::from_secs(1));
        // With exactly one other endpoint the flood hits only the right NIC;
        // send the reverse so MACs are learned, then check counters stay sane.
        let p2 = pkt_between(&net, c, a, b"back");
        net.send(c, net.now(), p2);
        let d = net.step_until(SimTime::from_secs(2));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].endpoint, a);
    }

    #[test]
    fn failed_uplink_drops_sends() {
        let (mut net, a, c, sw) = two_host_net();
        net.topology_mut().fail_wire(NodeId::Endpoint(a), NodeId::Switch(sw));
        net.send(a, SimTime::ZERO, pkt_between(&net, a, c, b"x"));
        assert!(net.step_until(SimTime::from_secs(1)).is_empty());
        assert_eq!(net.stats.dropped_loss, 1);
    }

    #[test]
    fn deliveries_in_time_order() {
        let (mut net, a, c, _) = two_host_net();
        for i in 0..10 {
            let p = pkt_between(&net, a, c, &[i]);
            net.send(a, SimTime::from_millis(i as u64), p);
        }
        let d = net.step_until(SimTime::from_secs(1));
        assert_eq!(d.len(), 10);
        for w in d.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }
}
