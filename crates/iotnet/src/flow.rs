//! OpenFlow-style match/action rules.
//!
//! The IoTSec controller programs the network by installing flow rules on
//! first-hop switches: steer a device's traffic through its µmbox chain,
//! mirror suspicious flows to the controller, or block a message class
//! outright. The match structure is a wildcard-able subset of the OpenFlow
//! 1.0 12-tuple — enough to express every policy posture in the paper.

use crate::addr::{Ipv4Addr, MacAddr, PortNo};
use crate::packet::{ip_proto, PackedHeaders, Packet};
use serde::{Deserialize, Serialize};

/// The 7-field flow identity packed into two `u128` words, in the same
/// bit-field style as [`PackedHeaders`]:
///
/// ```text
/// lo: | eth_src 48 | eth_dst 48 | ip_src 32 |          (128 bits exactly)
/// hi: | ip_dst 32 | proto 8 | src_port 16 | dst_port 16 | (72 bits, low)
/// ```
///
/// Flow-cache lookups hash two words, and rule matching reduces to
/// masked word compares against [`FlowTable`]'s compiled pattern arrays.
/// The packing is a bijection of the matched fields, so two packets get
/// equal keys iff every field the legacy struct key compared is equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedFlowKey {
    /// Ethernet source/destination + IPv4 source.
    pub lo: u128,
    /// IPv4 destination + protocol + ports.
    pub hi: u128,
}

impl PackedFlowKey {
    /// Extract the flow key from a packet's headers.
    pub fn of(packet: &Packet) -> PackedFlowKey {
        PackedFlowKey::from_headers(&packet.packed_headers())
    }

    /// Derive the flow key from already-packed headers — pure word
    /// shifts, no struct walk.
    pub fn from_headers(h: &PackedHeaders) -> PackedFlowKey {
        let eth_dst = h.a >> 80;
        let eth_src = (h.a >> 32) & 0xffff_ffff_ffff;
        let ip_src = (h.b >> 96) & 0xffff_ffff;
        let ip_dst = (h.b >> 64) & 0xffff_ffff;
        let proto = (h.b >> 8) & 0xff;
        let src_port = (h.b >> 32) & 0xffff;
        let dst_port = (h.b >> 16) & 0xffff;
        PackedFlowKey {
            lo: (eth_src << 80) | (eth_dst << 32) | ip_src,
            hi: (ip_dst << 40) | (proto << 32) | (src_port << 16) | dst_port,
        }
    }
}

/// A wildcard-able packet match.
///
/// `None` in any field means "match anything". IP addresses match against
/// a prefix; ports match exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlowMatch {
    /// Ingress port on the switch.
    pub in_port: Option<PortNo>,
    /// Ethernet source.
    pub eth_src: Option<MacAddr>,
    /// Ethernet destination.
    pub eth_dst: Option<MacAddr>,
    /// IPv4 source prefix (address, prefix length).
    pub ip_src: Option<(Ipv4Addr, u8)>,
    /// IPv4 destination prefix (address, prefix length).
    pub ip_dst: Option<(Ipv4Addr, u8)>,
    /// IP protocol number.
    pub ip_proto: Option<u8>,
    /// Transport source port.
    pub src_port: Option<u16>,
    /// Transport destination port.
    pub dst_port: Option<u16>,
}

impl FlowMatch {
    /// Match everything.
    pub fn any() -> FlowMatch {
        FlowMatch::default()
    }

    /// Match traffic *to* a host address.
    pub fn to_host(ip: Ipv4Addr) -> FlowMatch {
        FlowMatch { ip_dst: Some((ip, 32)), ..FlowMatch::default() }
    }

    /// Match traffic *from* a host address.
    pub fn from_host(ip: Ipv4Addr) -> FlowMatch {
        FlowMatch { ip_src: Some((ip, 32)), ..FlowMatch::default() }
    }

    /// Match traffic to a specific TCP service on a host.
    pub fn to_tcp_service(ip: Ipv4Addr, port: u16) -> FlowMatch {
        FlowMatch {
            ip_dst: Some((ip, 32)),
            ip_proto: Some(ip_proto::TCP),
            dst_port: Some(port),
            ..FlowMatch::default()
        }
    }

    /// Match traffic to a specific UDP service on a host.
    pub fn to_udp_service(ip: Ipv4Addr, port: u16) -> FlowMatch {
        FlowMatch {
            ip_dst: Some((ip, 32)),
            ip_proto: Some(ip_proto::UDP),
            dst_port: Some(port),
            ..FlowMatch::default()
        }
    }

    /// Restrict this match to a given ingress port.
    pub fn with_in_port(mut self, port: PortNo) -> FlowMatch {
        self.in_port = Some(port);
        self
    }

    /// Whether `packet`, arriving on `in_port`, satisfies this match.
    pub fn matches(&self, in_port: PortNo, packet: &Packet) -> bool {
        if let Some(p) = self.in_port {
            if p != PortNo::ANY && p != in_port {
                return false;
            }
        }
        if let Some(m) = self.eth_src {
            if m != packet.eth.src {
                return false;
            }
        }
        if let Some(m) = self.eth_dst {
            if m != packet.eth.dst {
                return false;
            }
        }
        if let Some((pfx, len)) = self.ip_src {
            if !packet.ip.src.in_prefix(pfx, len) {
                return false;
            }
        }
        if let Some((pfx, len)) = self.ip_dst {
            if !packet.ip.dst.in_prefix(pfx, len) {
                return false;
            }
        }
        if let Some(proto) = self.ip_proto {
            if proto != packet.ip.protocol {
                return false;
            }
        }
        if let Some(sp) = self.src_port {
            if sp != packet.transport.src_port() {
                return false;
            }
        }
        if let Some(dp) = self.dst_port {
            if dp != packet.transport.dst_port() {
                return false;
            }
        }
        true
    }

    /// How many fields are constrained (used for specificity metrics and
    /// for auto-assigning priorities when the caller does not care).
    pub fn specificity(&self) -> u32 {
        let mut n = 0;
        n += self.in_port.is_some() as u32;
        n += self.eth_src.is_some() as u32;
        n += self.eth_dst.is_some() as u32;
        n += self.ip_src.is_some() as u32;
        n += self.ip_dst.is_some() as u32;
        n += self.ip_proto.is_some() as u32;
        n += self.src_port.is_some() as u32;
        n += self.dst_port.is_some() as u32;
        n
    }
}

/// One [`FlowMatch`] compiled to `(value, care-mask)` word pairs over
/// the [`PackedFlowKey`] layout. A packet matches iff
/// `key.lo & lo_mask == lo_val && key.hi & hi_mask == hi_val` and the
/// ingress port passes — exact fields become full-width field masks, IP
/// prefixes become their natural prefix masks, wildcards contribute
/// zero mask bits.
#[derive(Debug, Clone, Copy)]
struct CompiledMatch {
    lo_mask: u128,
    lo_val: u128,
    hi_mask: u128,
    hi_val: u128,
    /// Required ingress port; `PortNo::ANY.0` admits every port (the
    /// compiler folds `None` and `Some(PortNo::ANY)` together, exactly
    /// like the struct matcher does).
    in_port: u16,
}

/// The masked value of a `/len` IPv4 prefix, as (mask, value & mask).
fn prefix_mask(pfx: Ipv4Addr, len: u8) -> (u128, u128) {
    if len == 0 {
        return (0, 0);
    }
    let len = len.min(32);
    let mask = if len == 32 { u32::MAX } else { !(u32::MAX >> len) };
    (u128::from(mask), u128::from(pfx.to_u32() & mask))
}

impl CompiledMatch {
    fn compile(m: &FlowMatch) -> CompiledMatch {
        let mut lo_mask = 0u128;
        let mut lo_val = 0u128;
        let mut hi_mask = 0u128;
        let mut hi_val = 0u128;
        if let Some(mac) = m.eth_src {
            lo_mask |= 0xffff_ffff_ffff << 80;
            lo_val |= mac_word(mac) << 80;
        }
        if let Some(mac) = m.eth_dst {
            lo_mask |= 0xffff_ffff_ffff << 32;
            lo_val |= mac_word(mac) << 32;
        }
        if let Some((pfx, len)) = m.ip_src {
            let (mask, val) = prefix_mask(pfx, len);
            lo_mask |= mask;
            lo_val |= val;
        }
        if let Some((pfx, len)) = m.ip_dst {
            let (mask, val) = prefix_mask(pfx, len);
            hi_mask |= mask << 40;
            hi_val |= val << 40;
        }
        if let Some(proto) = m.ip_proto {
            hi_mask |= 0xff << 32;
            hi_val |= u128::from(proto) << 32;
        }
        if let Some(sp) = m.src_port {
            hi_mask |= 0xffff << 16;
            hi_val |= u128::from(sp) << 16;
        }
        if let Some(dp) = m.dst_port {
            hi_mask |= 0xffff;
            hi_val |= u128::from(dp);
        }
        let in_port = match m.in_port {
            None => PortNo::ANY.0,
            Some(p) => p.0,
        };
        CompiledMatch { lo_mask, lo_val, hi_mask, hi_val, in_port }
    }
}

fn mac_word(mac: MacAddr) -> u128 {
    let b = mac.0;
    (u128::from(b[0]) << 40)
        | (u128::from(b[1]) << 32)
        | (u128::from(b[2]) << 24)
        | (u128::from(b[3]) << 16)
        | (u128::from(b[4]) << 8)
        | u128::from(b[5])
}

/// The compiled patterns of a [`FlowTable`], stored struct-of-arrays so
/// the probe loop streams five flat arrays instead of hopping across
/// rule structs. Kept index-aligned with the rules on every structural
/// change.
#[derive(Debug, Default)]
struct CompiledTable {
    lo_mask: Vec<u128>,
    lo_val: Vec<u128>,
    hi_mask: Vec<u128>,
    hi_val: Vec<u128>,
    in_port: Vec<u16>,
}

impl CompiledTable {
    fn push(&mut self, m: &FlowMatch) {
        let c = CompiledMatch::compile(m);
        self.lo_mask.push(c.lo_mask);
        self.lo_val.push(c.lo_val);
        self.hi_mask.push(c.hi_mask);
        self.hi_val.push(c.hi_val);
        self.in_port.push(c.in_port);
    }

    fn remove(&mut self, i: usize) {
        self.lo_mask.remove(i);
        self.lo_val.remove(i);
        self.hi_mask.remove(i);
        self.hi_val.remove(i);
        self.in_port.remove(i);
    }

    fn clear(&mut self) {
        self.lo_mask.clear();
        self.lo_val.clear();
        self.hi_mask.clear();
        self.hi_val.clear();
        self.in_port.clear();
    }

    /// Whether pattern `i` admits `key` on `in_port`: three branch-free
    /// word compares folded with `&`.
    #[inline]
    fn hit(&self, i: usize, in_port: PortNo, key: PackedFlowKey) -> bool {
        ((self.in_port[i] == PortNo::ANY.0) | (self.in_port[i] == in_port.0))
            & ((key.lo & self.lo_mask[i]) == self.lo_val[i])
            & ((key.hi & self.hi_mask[i]) == self.hi_val[i])
    }
}

/// Identifier of a steer point (an inline µmbox attachment) on the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SteerId(pub u32);

/// What to do with a matching packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowAction {
    /// Forward out a specific port.
    Output(PortNo),
    /// Forward normally (L2 destination lookup / spanning-tree flood).
    Normal,
    /// Drop the packet.
    Drop,
    /// Divert through the inline processor registered under this steer id
    /// (the µmbox hook); the processor's verdict decides the packet's fate.
    Steer(SteerId),
    /// Copy the packet to the controller/capture channel, then continue
    /// with normal forwarding.
    Mirror,
}

/// A prioritized flow rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowRule {
    /// Higher priority wins; ties broken by later installation.
    pub priority: u16,
    /// Match predicate.
    pub matcher: FlowMatch,
    /// Action for matching packets.
    pub action: FlowAction,
    /// Cookie for bulk removal (the controller stamps rules with the
    /// posture epoch that installed them).
    pub cookie: u64,
}

impl FlowRule {
    /// Convenience constructor.
    pub fn new(priority: u16, matcher: FlowMatch, action: FlowAction) -> FlowRule {
        FlowRule { priority, matcher, action, cookie: 0 }
    }

    /// Set the cookie.
    pub fn with_cookie(mut self, cookie: u64) -> FlowRule {
        self.cookie = cookie;
        self
    }
}

/// The quarantine rule set for a host (IDIoT-style minimal
/// allow-list). Every `(tcp, port)` service in `allow` stays reachable
/// — and the host may still *send* toward those service ports, so
/// telemetry to the hub keeps flowing — while everything else to or
/// from the host is dropped.
///
/// Allow rules sit 10 above `base_priority`, the two drop rules at
/// `base_priority`; the caller picks a base above its steer priority so
/// the quarantine drop outranks the chain steer, and stamps `cookie`
/// so the whole set lifts with a single cookie removal.
pub fn quarantine_rules(
    host_ip: Ipv4Addr,
    host_port: PortNo,
    allow: &[(bool, u16)],
    base_priority: u16,
    cookie: u64,
) -> Vec<FlowRule> {
    let mut rules = Vec::with_capacity(allow.len() * 2 + 2);
    for &(tcp, port) in allow {
        let (to, proto) = if tcp {
            (FlowMatch::to_tcp_service(host_ip, port), ip_proto::TCP)
        } else {
            (FlowMatch::to_udp_service(host_ip, port), ip_proto::UDP)
        };
        rules.push(FlowRule::new(base_priority + 10, to, FlowAction::Normal).with_cookie(cookie));
        let from = FlowMatch {
            in_port: Some(host_port),
            ip_proto: Some(proto),
            dst_port: Some(port),
            ..FlowMatch::default()
        };
        rules.push(FlowRule::new(base_priority + 10, from, FlowAction::Normal).with_cookie(cookie));
    }
    rules.push(
        FlowRule::new(base_priority, FlowMatch::to_host(host_ip), FlowAction::Drop)
            .with_cookie(cookie),
    );
    rules.push(
        FlowRule::new(base_priority, FlowMatch::any().with_in_port(host_port), FlowAction::Drop)
            .with_cookie(cookie),
    );
    rules
}

/// A priority-ordered flow table with per-rule hit counters.
///
/// Every rule's matcher is additionally compiled to `(value, care-mask)`
/// word pairs over the [`PackedFlowKey`] layout, held struct-of-arrays;
/// the default lookup probes those flat arrays with branch-free word
/// compares. The legacy struct-walking scan survives as
/// [`FlowTable::lookup_index_scan`] — the equivalence reference for the
/// proptests and the "legacy" arm of the E21 benchmark — selectable via
/// [`FlowTable::set_packed_lookup`].
#[derive(Debug)]
pub struct FlowTable {
    rules: Vec<FlowRule>,
    compiled: CompiledTable,
    hits: Vec<u64>,
    install_seq: Vec<u64>,
    next_seq: u64,
    epoch: u64,
    packed_lookup: bool,
    /// Lookups that matched no rule.
    pub misses: u64,
}

impl Default for FlowTable {
    fn default() -> Self {
        FlowTable {
            rules: Vec::new(),
            compiled: CompiledTable::default(),
            hits: Vec::new(),
            install_seq: Vec::new(),
            next_seq: 0,
            epoch: 0,
            packed_lookup: true,
            misses: 0,
        }
    }
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Select the lookup engine: packed word-compare probing (the
    /// default) or the legacy struct-walking scan. Both return the same
    /// rule for every packet (proptested); the toggle exists so the E21
    /// benchmark can run an honest legacy arm.
    pub fn set_packed_lookup(&mut self, on: bool) {
        self.packed_lookup = on;
    }

    /// A counter bumped on every structural change (install / removal /
    /// clear). Rule *indices* are only meaningful within one epoch, which
    /// is what lets the switch's decision cache hold indices safely.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Install a rule. Later installations win priority ties (this mirrors
    /// OpenFlow's overlap behaviour closely enough for our controller,
    /// which always diffs epochs anyway).
    pub fn install(&mut self, rule: FlowRule) {
        self.compiled.push(&rule.matcher);
        self.rules.push(rule);
        self.hits.push(0);
        self.install_seq.push(self.next_seq);
        self.next_seq += 1;
        self.epoch += 1;
    }

    /// Remove every rule whose cookie equals `cookie`; returns how many
    /// were removed.
    pub fn remove_by_cookie(&mut self, cookie: u64) -> usize {
        let mut removed = 0;
        let mut i = 0;
        while i < self.rules.len() {
            if self.rules[i].cookie == cookie {
                self.rules.remove(i);
                self.compiled.remove(i);
                self.hits.remove(i);
                self.install_seq.remove(i);
                removed += 1;
            } else {
                i += 1;
            }
        }
        if removed > 0 {
            self.epoch += 1;
        }
        removed
    }

    /// Remove all rules.
    pub fn clear(&mut self) {
        self.rules.clear();
        self.compiled.clear();
        self.hits.clear();
        self.install_seq.clear();
        self.epoch += 1;
    }

    /// Reset the table to an observably freshly-constructed state while
    /// retaining allocated capacity. Unlike [`FlowTable::clear`], this
    /// also rewinds `next_seq` (install order participates in priority
    /// tie-breaks), the table epoch, and the miss counter, so a resident
    /// world's reused table behaves byte-identically to a cold build.
    /// The `packed_lookup` setting is configuration, not runtime state,
    /// and is preserved.
    pub fn recycle(&mut self) {
        self.rules.clear();
        self.compiled.clear();
        self.hits.clear();
        self.install_seq.clear();
        self.next_seq = 0;
        self.epoch = 0;
        self.misses = 0;
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Look up the best-matching rule for `packet` on `in_port`,
    /// incrementing its hit counter.
    pub fn lookup(&mut self, in_port: PortNo, packet: &Packet) -> Option<&FlowRule> {
        let best = self.lookup_index(in_port, packet);
        self.record(best);
        best.map(|i| &self.rules[i])
    }

    /// The index of the best-matching rule (no counter updates). Indices
    /// are stable only within the current [`FlowTable::epoch`].
    pub fn lookup_index(&self, in_port: PortNo, packet: &Packet) -> Option<usize> {
        if self.packed_lookup {
            self.lookup_index_packed(in_port, PackedFlowKey::of(packet))
        } else {
            self.lookup_index_scan(in_port, packet)
        }
    }

    /// Packed probe: best-matching rule for an already-extracted flow
    /// key. Each candidate costs three branch-free masked word compares
    /// against the struct-of-arrays pattern table; only the (rare)
    /// best-so-far update branches.
    pub fn lookup_index_packed(&self, in_port: PortNo, key: PackedFlowKey) -> Option<usize> {
        let mut best: Option<usize> = None;
        for i in 0..self.rules.len() {
            if !self.compiled.hit(i, in_port, key) {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    let better = (self.rules[i].priority, self.install_seq[i])
                        > (self.rules[b].priority, self.install_seq[b]);
                    if better {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    /// The legacy struct-walking scan, kept verbatim as the equivalence
    /// reference for the packed probe (`tests/packed_net_props.rs`) and
    /// as the E21 benchmark's legacy arm.
    pub fn lookup_index_scan(&self, in_port: PortNo, packet: &Packet) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, rule) in self.rules.iter().enumerate() {
            if !rule.matcher.matches(in_port, packet) {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    let better = (rule.priority, self.install_seq[i])
                        > (self.rules[b].priority, self.install_seq[b]);
                    if better {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    /// Keyed lookup for callers that already hold the packet's
    /// [`PackedFlowKey`] (the switch computes it once for its decision
    /// cache): dispatches on the configured engine without re-extracting
    /// the key.
    pub fn lookup_index_keyed(
        &self,
        in_port: PortNo,
        key: PackedFlowKey,
        packet: &Packet,
    ) -> Option<usize> {
        if self.packed_lookup {
            self.lookup_index_packed(in_port, key)
        } else {
            self.lookup_index_scan(in_port, packet)
        }
    }

    /// Account a lookup outcome: bump the rule's hit counter, or the miss
    /// counter. Used by the switch's decision cache to keep counters exact
    /// when the table scan itself is skipped.
    pub fn record(&mut self, index: Option<usize>) {
        match index {
            Some(i) => self.hits[i] += 1,
            None => self.misses += 1,
        }
    }

    /// The rule at `index` (panics if out of range; indices come from
    /// [`FlowTable::lookup_index`] within the same epoch).
    pub fn rule(&self, index: usize) -> &FlowRule {
        &self.rules[index]
    }

    /// Iterate over rules with their hit counts.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowRule, u64)> {
        self.rules.iter().zip(self.hits.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::TransportHeader;
    use bytes::Bytes;

    fn pkt(src: Ipv4Addr, dst: Ipv4Addr, transport: TransportHeader) -> Packet {
        Packet::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            src,
            dst,
            transport,
            Bytes::new(),
        )
    }

    #[test]
    fn wildcard_matches_everything() {
        let m = FlowMatch::any();
        let p =
            pkt(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8), TransportHeader::udp(1, 2));
        assert!(m.matches(PortNo(0), &p));
        assert_eq!(m.specificity(), 0);
    }

    #[test]
    fn host_and_service_matches() {
        let cam = Ipv4Addr::new(10, 0, 0, 5);
        let p80 = pkt(
            Ipv4Addr::new(10, 0, 0, 9),
            cam,
            TransportHeader::tcp(5555, 80, 0, Default::default()),
        );
        let p81 = pkt(
            Ipv4Addr::new(10, 0, 0, 9),
            cam,
            TransportHeader::tcp(5555, 81, 0, Default::default()),
        );
        assert!(FlowMatch::to_host(cam).matches(PortNo(0), &p80));
        assert!(FlowMatch::to_tcp_service(cam, 80).matches(PortNo(0), &p80));
        assert!(!FlowMatch::to_tcp_service(cam, 80).matches(PortNo(0), &p81));
        assert!(!FlowMatch::to_udp_service(cam, 80).matches(PortNo(0), &p80));
        assert!(FlowMatch::from_host(cam)
            .matches(PortNo(0), &pkt(cam, cam, TransportHeader::udp(1, 2))));
    }

    #[test]
    fn in_port_restriction() {
        let m = FlowMatch::any().with_in_port(PortNo(3));
        let p =
            pkt(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), TransportHeader::udp(1, 2));
        assert!(m.matches(PortNo(3), &p));
        assert!(!m.matches(PortNo(4), &p));
    }

    #[test]
    fn priority_lookup_and_ties() {
        let cam = Ipv4Addr::new(10, 0, 0, 5);
        let mut t = FlowTable::new();
        t.install(FlowRule::new(10, FlowMatch::any(), FlowAction::Normal));
        t.install(FlowRule::new(100, FlowMatch::to_host(cam), FlowAction::Drop));
        let p = pkt(Ipv4Addr::new(10, 0, 0, 9), cam, TransportHeader::udp(1, 2));
        assert_eq!(t.lookup(PortNo(0), &p).unwrap().action, FlowAction::Drop);
        // Tie: later installation wins.
        t.install(FlowRule::new(100, FlowMatch::to_host(cam), FlowAction::Mirror));
        assert_eq!(t.lookup(PortNo(0), &p).unwrap().action, FlowAction::Mirror);
    }

    #[test]
    fn miss_counter_and_cookie_removal() {
        let mut t = FlowTable::new();
        t.install(
            FlowRule::new(1, FlowMatch::to_host(Ipv4Addr::new(9, 9, 9, 9)), FlowAction::Drop)
                .with_cookie(42),
        );
        t.install(FlowRule::new(1, FlowMatch::any(), FlowAction::Normal).with_cookie(42));
        t.install(FlowRule::new(1, FlowMatch::any(), FlowAction::Normal).with_cookie(7));
        let p =
            pkt(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), TransportHeader::udp(1, 2));
        assert_eq!(t.remove_by_cookie(42), 2);
        assert_eq!(t.len(), 1);
        assert!(t.lookup(PortNo(0), &p).is_some());
        t.clear();
        assert!(t.lookup(PortNo(0), &p).is_none());
        assert_eq!(t.misses, 1);
    }

    #[test]
    fn quarantine_rules_allow_only_the_listed_services() {
        let dev = Ipv4Addr::new(10, 0, 0, 5);
        let hub = Ipv4Addr::new(10, 0, 0, 1);
        let dev_port = PortNo(2);
        let mut t = FlowTable::new();
        // Steer rule at 300, as the world installs it.
        t.install(FlowRule::new(300, FlowMatch::to_host(dev), FlowAction::Steer(SteerId(0))));
        for r in quarantine_rules(dev, dev_port, &[(false, 5683)], 400, 0x2005) {
            t.install(r);
        }
        // Telemetry inbound to the device survives.
        let telem_in = pkt(hub, dev, TransportHeader::udp(9, 5683));
        assert_eq!(t.lookup(PortNo(0), &telem_in).unwrap().action, FlowAction::Normal);
        // Telemetry outbound from the device survives.
        let telem_out = pkt(dev, hub, TransportHeader::udp(5683, 5683));
        assert_eq!(t.lookup(dev_port, &telem_out).unwrap().action, FlowAction::Normal);
        // Management inbound outranks the steer: dropped, not steered.
        let mgmt = pkt(hub, dev, TransportHeader::tcp(5555, 8080, 0, Default::default()));
        assert_eq!(t.lookup(PortNo(0), &mgmt).unwrap().action, FlowAction::Drop);
        // Anything else outbound from the device is dropped.
        let exfil = pkt(dev, hub, TransportHeader::udp(40000, 53));
        assert_eq!(t.lookup(dev_port, &exfil).unwrap().action, FlowAction::Drop);
        // Lifting the quarantine restores the steer.
        assert_eq!(t.remove_by_cookie(0x2005), 4);
        assert!(matches!(t.lookup(PortNo(0), &mgmt).unwrap().action, FlowAction::Steer(_)));
    }

    #[test]
    fn packed_key_equality_mirrors_field_equality() {
        let a =
            pkt(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), TransportHeader::udp(7, 9));
        let same =
            pkt(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), TransportHeader::udp(7, 9));
        assert_eq!(PackedFlowKey::of(&a), PackedFlowKey::of(&same));
        // Each keyed field flips the key.
        let other_port = pkt(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            TransportHeader::udp(7, 10),
        );
        assert_ne!(PackedFlowKey::of(&a), PackedFlowKey::of(&other_port));
        let tcp = pkt(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            TransportHeader::tcp(7, 9, 0, Default::default()),
        );
        assert_ne!(PackedFlowKey::of(&a), PackedFlowKey::of(&tcp));
    }

    #[test]
    fn packed_probe_agrees_with_legacy_scan() {
        let cam = Ipv4Addr::new(10, 0, 0, 5);
        let mut t = FlowTable::new();
        t.install(FlowRule::new(10, FlowMatch::any(), FlowAction::Normal));
        t.install(FlowRule::new(100, FlowMatch::to_host(cam), FlowAction::Drop));
        t.install(FlowRule::new(
            50,
            FlowMatch::from_host(cam).with_in_port(PortNo(2)),
            FlowAction::Mirror,
        ));
        t.install(FlowRule::new(
            90,
            FlowMatch { ip_dst: Some((Ipv4Addr::new(10, 0, 0, 0), 24)), ..FlowMatch::default() },
            FlowAction::Steer(SteerId(1)),
        ));
        let packets = [
            pkt(Ipv4Addr::new(10, 0, 0, 9), cam, TransportHeader::udp(1, 2)),
            pkt(cam, Ipv4Addr::new(10, 0, 0, 9), TransportHeader::udp(1, 2)),
            pkt(Ipv4Addr::new(8, 8, 8, 8), Ipv4Addr::new(10, 0, 0, 7), TransportHeader::udp(1, 2)),
            pkt(Ipv4Addr::new(8, 8, 8, 8), Ipv4Addr::new(9, 9, 9, 9), TransportHeader::udp(1, 2)),
        ];
        for p in &packets {
            for port in [PortNo(0), PortNo(2), PortNo::ANY] {
                let key = PackedFlowKey::of(p);
                assert_eq!(
                    t.lookup_index_packed(port, key),
                    t.lookup_index_scan(port, p),
                    "engines disagree for port {port}"
                );
            }
        }
    }

    #[test]
    fn lookup_engine_toggle_selects_the_same_rule() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(5, FlowMatch::any(), FlowAction::Normal));
        let p =
            pkt(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), TransportHeader::udp(1, 2));
        assert_eq!(t.lookup_index(PortNo(0), &p), Some(0));
        t.set_packed_lookup(false);
        assert_eq!(t.lookup_index(PortNo(0), &p), Some(0));
    }

    #[test]
    fn hit_counters_increment() {
        let mut t = FlowTable::new();
        t.install(FlowRule::new(1, FlowMatch::any(), FlowAction::Normal));
        let p =
            pkt(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), TransportHeader::udp(1, 2));
        for _ in 0..5 {
            t.lookup(PortNo(0), &p);
        }
        assert_eq!(t.iter().next().unwrap().1, 5);
    }
}
