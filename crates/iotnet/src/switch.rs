//! SDN switch model.
//!
//! Each switch has a set of ports, a priority [`FlowTable`] programmed by
//! the controller, a learning MAC table used by the `Normal` action, and
//! per-switch counters. The paper's enforcement story assumes every IoT
//! device's *first-hop* switch or AP is programmable; this model is that
//! first hop.
//!
//! Three fast paths keep per-packet work off the hot loop:
//!
//! * Port lists are [`PortList`]s (inline up to 8 ports) — unicast output
//!   and home-scale floods never allocate.
//! * A flow-decision cache memoizes the full `(in_port, flow key)` →
//!   decision mapping, skipping the linear table scan for repeat flows.
//!   The key is the two-word [`PackedFlowKey`], so hashing and equality
//!   compare machine words instead of seven header fields. The cache is
//!   invalidated by flow-table changes (via [`FlowTable::epoch`])
//!   and by MAC-table learning changes, so cached decisions are always
//!   exactly what the slow path would have computed. Rule hit / miss
//!   counters are still updated on cache hits, keeping every counter
//!   byte-identical to an uncached run.
//! * Cache misses probe the table through its compiled struct-of-arrays
//!   form ([`FlowTable::lookup_index_keyed`]), a branchless masked-word
//!   comparison per rule reusing the packed key already computed for the
//!   cache probe.

use crate::addr::{MacAddr, PortNo, SwitchId};
use crate::flow::{FlowAction, FlowRule, FlowTable, PackedFlowKey};
use crate::packet::Packet;
use crate::time::SimTime;
use smallvec::SmallVec;
use std::collections::HashMap;
use trace::{TraceEvent, Tracer};

/// An output port list, inline (allocation-free) up to 8 ports.
pub type PortList = SmallVec<PortNo, 8>;

/// Decisions cached per switch before the cache is wiped and refilled.
/// Sized for the workspace's scenarios (tens of devices × a few flows
/// each); wiping on overflow keeps the policy trivially correct.
const DECISION_CACHE_CAP: usize = 1024;

/// Forwarding decision produced by a switch for one packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchDecision {
    /// Send out these ports (normal forwarding may flood several).
    Output(PortList),
    /// Drop.
    Drop,
    /// Divert to the inline processor with this steer id; the network layer
    /// resumes forwarding with the processor's output packets.
    Steer(crate::flow::SteerId),
    /// Mirror to the capture/controller channel and also output normally.
    MirrorAnd(PortList),
}

#[derive(Debug, Clone)]
struct CachedDecision {
    /// The matched rule's index (`None` = table miss), replayed into the
    /// table's hit/miss counters on every cache hit.
    rule: Option<usize>,
    decision: SwitchDecision,
}

/// An SDN switch.
#[derive(Debug)]
pub struct Switch {
    /// This switch's id.
    pub id: SwitchId,
    /// Number of ports (ports are `0..n_ports`).
    pub n_ports: u16,
    /// The controller-programmed flow table.
    pub table: FlowTable,
    mac_table: HashMap<MacAddr, PortNo>,
    /// Decision cache keyed by the packed flow key — the two-word encoding
    /// of every packet field a forwarding decision can depend on (see
    /// [`PackedFlowKey`]). Packets differing only in payload share an entry.
    cache: HashMap<(PortNo, PackedFlowKey), CachedDecision>,
    /// Flow-table epoch the cache was filled against.
    cache_epoch: u64,
    /// Packets processed.
    pub rx_packets: u64,
    /// Packets dropped by policy.
    pub policy_drops: u64,
    /// Decision-cache lookups (one per processed packet).
    pub cache_lookups: u64,
    /// Decision-cache hits (table scan skipped).
    pub cache_hits: u64,
    /// Packet-class trace emission (disabled by default; see `crates/trace`).
    tracer: Tracer,
}

impl Switch {
    /// A new switch with `n_ports` ports and an empty flow table.
    pub fn new(id: SwitchId, n_ports: u16) -> Switch {
        Switch {
            id,
            n_ports,
            table: FlowTable::new(),
            mac_table: HashMap::new(),
            cache: HashMap::new(),
            cache_epoch: 0,
            rx_packets: 0,
            policy_drops: 0,
            cache_lookups: 0,
            cache_hits: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Reset the switch to an observably freshly-constructed state
    /// (empty flow table at epoch 0, cleared MAC/decision caches, zeroed
    /// counters) while retaining allocated capacity and the attached
    /// tracer. Resident worlds call this between rounds so a reused
    /// switch forwards byte-identically to a cold-built one.
    pub fn reset_resident(&mut self) {
        self.table.recycle();
        self.mac_table.clear();
        self.cache.clear();
        self.cache_epoch = 0;
        self.rx_packets = 0;
        self.policy_drops = 0;
        self.cache_lookups = 0;
        self.cache_hits = 0;
    }

    /// Attach a tracer for cache and policy-drop events.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Install a flow rule.
    pub fn install(&mut self, rule: FlowRule) {
        self.table.install(rule);
    }

    /// Remove rules stamped with `cookie`.
    pub fn remove_by_cookie(&mut self, cookie: u64) -> usize {
        self.table.remove_by_cookie(cookie)
    }

    /// The port a MAC was learned on, if any.
    pub fn learned_port(&self, mac: MacAddr) -> Option<PortNo> {
        self.mac_table.get(&mac).copied()
    }

    /// Process a packet arriving on `in_port`: learn the source MAC, then
    /// apply the flow table (falling back to `Normal` on a miss).
    ///
    /// Trace-free convenience wrapper over [`Switch::process_at`] for
    /// callers (mostly tests) that don't run under a simulation clock.
    pub fn process(&mut self, in_port: PortNo, packet: &Packet) -> SwitchDecision {
        self.process_at(SimTime::ZERO, in_port, packet)
    }

    /// [`Switch::process`] with the simulated arrival instant, used as
    /// the sim-time key for trace emission (cache hit/miss, policy drop).
    pub fn process_at(&mut self, now: SimTime, in_port: PortNo, packet: &Packet) -> SwitchDecision {
        self.rx_packets += 1;
        if !packet.eth.src.is_multicast()
            && self.mac_table.insert(packet.eth.src, in_port) != Some(in_port)
        {
            // A new or moved station changes what `Normal` forwarding does.
            self.cache.clear();
        }
        // The table is public, so catch *any* mutation (controller installs,
        // cookie removals, direct `table.clear()`) by epoch comparison.
        if self.cache_epoch != self.table.epoch() {
            self.cache_epoch = self.table.epoch();
            self.cache.clear();
        }
        let key = (in_port, PackedFlowKey::of(packet));
        self.cache_lookups += 1;
        if let Some(cached) = self.cache.get(&key) {
            self.cache_hits += 1;
            self.tracer.emit(now.as_nanos(), TraceEvent::CacheHit { switch: self.id.0 });
            self.table.record(cached.rule);
            if cached.decision == SwitchDecision::Drop {
                self.policy_drops += 1;
                self.tracer.emit(now.as_nanos(), TraceEvent::PolicyDrop { switch: self.id.0 });
            }
            return cached.decision.clone();
        }
        self.tracer.emit(now.as_nanos(), TraceEvent::CacheMiss { switch: self.id.0 });
        let rule = self.table.lookup_index_keyed(in_port, key.1, packet);
        self.table.record(rule);
        let action = rule.map(|i| self.table.rule(i).action).unwrap_or(FlowAction::Normal);
        let decision = match action {
            FlowAction::Drop => {
                self.policy_drops += 1;
                self.tracer.emit(now.as_nanos(), TraceEvent::PolicyDrop { switch: self.id.0 });
                SwitchDecision::Drop
            }
            FlowAction::Output(p) => SwitchDecision::Output(PortList::from_slice(&[p])),
            FlowAction::Steer(id) => SwitchDecision::Steer(id),
            FlowAction::Mirror => SwitchDecision::MirrorAnd(self.normal_ports(in_port, packet)),
            FlowAction::Normal => SwitchDecision::Output(self.normal_ports(in_port, packet)),
        };
        if self.cache.len() >= DECISION_CACHE_CAP {
            self.cache.clear();
        }
        self.cache.insert(key, CachedDecision { rule, decision: decision.clone() });
        decision
    }

    /// Normal (learning L2) forwarding: known unicast goes out its learned
    /// port; unknown unicast and broadcast flood all ports except ingress.
    pub fn normal_ports(&self, in_port: PortNo, packet: &Packet) -> PortList {
        if !packet.eth.dst.is_multicast() {
            if let Some(&p) = self.mac_table.get(&packet.eth.dst) {
                if p == in_port {
                    return PortList::new(); // already on the right segment
                }
                return PortList::from_slice(&[p]);
            }
        }
        (0..self.n_ports).map(PortNo).filter(|p| *p != in_port).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ipv4Addr;
    use crate::flow::{FlowMatch, SteerId};
    use crate::packet::TransportHeader;
    use bytes::Bytes;

    fn ports(ps: &[PortNo]) -> PortList {
        PortList::from_slice(ps)
    }

    fn pkt(src_mac: MacAddr, dst_mac: MacAddr) -> Packet {
        Packet::new(
            src_mac,
            dst_mac,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            TransportHeader::udp(1, 2),
            Bytes::new(),
        )
    }

    #[test]
    fn learns_and_forwards() {
        let mut sw = Switch::new(SwitchId(0), 4);
        let a = MacAddr::from_index(1);
        let b = MacAddr::from_index(2);
        // Unknown destination floods.
        let d = sw.process(PortNo(0), &pkt(a, b));
        assert_eq!(d, SwitchDecision::Output(ports(&[PortNo(1), PortNo(2), PortNo(3)])));
        // b replies from port 2; now a is known on port 0.
        let d = sw.process(PortNo(2), &pkt(b, a));
        assert_eq!(d, SwitchDecision::Output(ports(&[PortNo(0)])));
        // And b is now known on port 2.
        let d = sw.process(PortNo(0), &pkt(a, b));
        assert_eq!(d, SwitchDecision::Output(ports(&[PortNo(2)])));
        assert_eq!(sw.learned_port(a), Some(PortNo(0)));
    }

    #[test]
    fn same_segment_suppression() {
        let mut sw = Switch::new(SwitchId(0), 4);
        let a = MacAddr::from_index(1);
        let b = MacAddr::from_index(2);
        sw.process(PortNo(1), &pkt(b, a)); // learn b on port 1
        let d = sw.process(PortNo(1), &pkt(a, b)); // b is back out the ingress port
        assert_eq!(d, SwitchDecision::Output(ports(&[])));
    }

    #[test]
    fn broadcast_floods() {
        let mut sw = Switch::new(SwitchId(0), 3);
        let d = sw.process(PortNo(1), &pkt(MacAddr::from_index(1), MacAddr::BROADCAST));
        assert_eq!(d, SwitchDecision::Output(ports(&[PortNo(0), PortNo(2)])));
    }

    #[test]
    fn policy_drop_counted() {
        let mut sw = Switch::new(SwitchId(0), 2);
        sw.install(FlowRule::new(10, FlowMatch::any(), FlowAction::Drop));
        let d = sw.process(PortNo(0), &pkt(MacAddr::from_index(1), MacAddr::from_index(2)));
        assert_eq!(d, SwitchDecision::Drop);
        assert_eq!(sw.policy_drops, 1);
    }

    #[test]
    fn steer_and_mirror_decisions() {
        let mut sw = Switch::new(SwitchId(0), 2);
        sw.install(FlowRule::new(10, FlowMatch::any(), FlowAction::Steer(SteerId(7))));
        let p = pkt(MacAddr::from_index(1), MacAddr::from_index(2));
        assert_eq!(sw.process(PortNo(0), &p), SwitchDecision::Steer(SteerId(7)));
        sw.table.clear();
        sw.install(FlowRule::new(10, FlowMatch::any(), FlowAction::Mirror));
        match sw.process(PortNo(0), &p) {
            SwitchDecision::MirrorAnd(ports) => assert!(!ports.is_empty()),
            other => panic!("expected mirror, got {other:?}"),
        }
    }

    #[test]
    fn decision_cache_hits_repeat_flows_and_keeps_counters_exact() {
        let mut sw = Switch::new(SwitchId(0), 4);
        let a = MacAddr::from_index(1);
        let b = MacAddr::from_index(2);
        let p = pkt(a, b);
        sw.process(PortNo(0), &p); // cold: learns a, caches the flood
        assert_eq!(sw.cache_hits, 0);
        let d = sw.process(PortNo(0), &p); // warm
        assert_eq!(sw.cache_hits, 1);
        assert_eq!(d, SwitchDecision::Output(ports(&[PortNo(1), PortNo(2), PortNo(3)])));
        // Counters advance on cache hits exactly as on table scans.
        assert_eq!(sw.table.misses, 2);
    }

    #[test]
    fn decision_cache_invalidated_by_table_change() {
        let mut sw = Switch::new(SwitchId(0), 2);
        let p = pkt(MacAddr::from_index(1), MacAddr::from_index(2));
        sw.process(PortNo(0), &p);
        sw.process(PortNo(0), &p);
        assert_eq!(sw.cache_hits, 1);
        sw.install(FlowRule::new(10, FlowMatch::any(), FlowAction::Drop));
        // The cached Output decision must not survive the install.
        assert_eq!(sw.process(PortNo(0), &p), SwitchDecision::Drop);
        assert_eq!(sw.policy_drops, 1);
    }

    #[test]
    fn decision_cache_invalidated_by_mac_learning() {
        let mut sw = Switch::new(SwitchId(0), 4);
        let a = MacAddr::from_index(1);
        let b = MacAddr::from_index(2);
        // a → b floods (b unknown) and is cached.
        sw.process(PortNo(0), &pkt(a, b));
        // b appears on port 2: learning must invalidate the cached flood.
        sw.process(PortNo(2), &pkt(b, a));
        let d = sw.process(PortNo(0), &pkt(a, b));
        assert_eq!(d, SwitchDecision::Output(ports(&[PortNo(2)])));
    }

    #[test]
    fn hit_counters_replayed_on_cached_drops() {
        let mut sw = Switch::new(SwitchId(0), 2);
        sw.install(FlowRule::new(10, FlowMatch::any(), FlowAction::Drop));
        let p = pkt(MacAddr::from_index(1), MacAddr::from_index(2));
        for _ in 0..5 {
            assert_eq!(sw.process(PortNo(0), &p), SwitchDecision::Drop);
        }
        assert_eq!(sw.policy_drops, 5);
        assert_eq!(sw.cache_hits, 4);
        // The drop rule's hit counter saw all five packets.
        assert_eq!(sw.table.iter().next().unwrap().1, 5);
    }
}
