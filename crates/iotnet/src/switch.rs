//! SDN switch model.
//!
//! Each switch has a set of ports, a priority [`FlowTable`] programmed by
//! the controller, a learning MAC table used by the `Normal` action, and
//! per-switch counters. The paper's enforcement story assumes every IoT
//! device's *first-hop* switch or AP is programmable; this model is that
//! first hop.

use crate::addr::{MacAddr, PortNo, SwitchId};
use crate::flow::{FlowAction, FlowRule, FlowTable};
use crate::packet::Packet;
use std::collections::HashMap;

/// Forwarding decision produced by a switch for one packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchDecision {
    /// Send out these ports (normal forwarding may flood several).
    Output(Vec<PortNo>),
    /// Drop.
    Drop,
    /// Divert to the inline processor with this steer id; the network layer
    /// resumes forwarding with the processor's output packets.
    Steer(crate::flow::SteerId),
    /// Mirror to the capture/controller channel and also output normally.
    MirrorAnd(Vec<PortNo>),
}

/// An SDN switch.
#[derive(Debug)]
pub struct Switch {
    /// This switch's id.
    pub id: SwitchId,
    /// Number of ports (ports are `0..n_ports`).
    pub n_ports: u16,
    /// The controller-programmed flow table.
    pub table: FlowTable,
    mac_table: HashMap<MacAddr, PortNo>,
    /// Packets processed.
    pub rx_packets: u64,
    /// Packets dropped by policy.
    pub policy_drops: u64,
}

impl Switch {
    /// A new switch with `n_ports` ports and an empty flow table.
    pub fn new(id: SwitchId, n_ports: u16) -> Switch {
        Switch {
            id,
            n_ports,
            table: FlowTable::new(),
            mac_table: HashMap::new(),
            rx_packets: 0,
            policy_drops: 0,
        }
    }

    /// Install a flow rule.
    pub fn install(&mut self, rule: FlowRule) {
        self.table.install(rule);
    }

    /// Remove rules stamped with `cookie`.
    pub fn remove_by_cookie(&mut self, cookie: u64) -> usize {
        self.table.remove_by_cookie(cookie)
    }

    /// The port a MAC was learned on, if any.
    pub fn learned_port(&self, mac: MacAddr) -> Option<PortNo> {
        self.mac_table.get(&mac).copied()
    }

    /// Process a packet arriving on `in_port`: learn the source MAC, then
    /// apply the flow table (falling back to `Normal` on a miss).
    pub fn process(&mut self, in_port: PortNo, packet: &Packet) -> SwitchDecision {
        self.rx_packets += 1;
        if !packet.eth.src.is_multicast() {
            self.mac_table.insert(packet.eth.src, in_port);
        }
        let action =
            self.table.lookup(in_port, packet).map(|r| r.action).unwrap_or(FlowAction::Normal);
        match action {
            FlowAction::Drop => {
                self.policy_drops += 1;
                SwitchDecision::Drop
            }
            FlowAction::Output(p) => SwitchDecision::Output(vec![p]),
            FlowAction::Steer(id) => SwitchDecision::Steer(id),
            FlowAction::Mirror => SwitchDecision::MirrorAnd(self.normal_ports(in_port, packet)),
            FlowAction::Normal => SwitchDecision::Output(self.normal_ports(in_port, packet)),
        }
    }

    /// Normal (learning L2) forwarding: known unicast goes out its learned
    /// port; unknown unicast and broadcast flood all ports except ingress.
    pub fn normal_ports(&self, in_port: PortNo, packet: &Packet) -> Vec<PortNo> {
        if !packet.eth.dst.is_multicast() {
            if let Some(&p) = self.mac_table.get(&packet.eth.dst) {
                if p == in_port {
                    return Vec::new(); // already on the right segment
                }
                return vec![p];
            }
        }
        (0..self.n_ports).map(PortNo).filter(|p| *p != in_port).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ipv4Addr;
    use crate::flow::{FlowMatch, SteerId};
    use crate::packet::TransportHeader;
    use bytes::Bytes;

    fn pkt(src_mac: MacAddr, dst_mac: MacAddr) -> Packet {
        Packet::new(
            src_mac,
            dst_mac,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            TransportHeader::udp(1, 2),
            Bytes::new(),
        )
    }

    #[test]
    fn learns_and_forwards() {
        let mut sw = Switch::new(SwitchId(0), 4);
        let a = MacAddr::from_index(1);
        let b = MacAddr::from_index(2);
        // Unknown destination floods.
        let d = sw.process(PortNo(0), &pkt(a, b));
        assert_eq!(d, SwitchDecision::Output(vec![PortNo(1), PortNo(2), PortNo(3)]));
        // b replies from port 2; now a is known on port 0.
        let d = sw.process(PortNo(2), &pkt(b, a));
        assert_eq!(d, SwitchDecision::Output(vec![PortNo(0)]));
        // And b is now known on port 2.
        let d = sw.process(PortNo(0), &pkt(a, b));
        assert_eq!(d, SwitchDecision::Output(vec![PortNo(2)]));
        assert_eq!(sw.learned_port(a), Some(PortNo(0)));
    }

    #[test]
    fn same_segment_suppression() {
        let mut sw = Switch::new(SwitchId(0), 4);
        let a = MacAddr::from_index(1);
        let b = MacAddr::from_index(2);
        sw.process(PortNo(1), &pkt(b, a)); // learn b on port 1
        let d = sw.process(PortNo(1), &pkt(a, b)); // b is back out the ingress port
        assert_eq!(d, SwitchDecision::Output(vec![]));
    }

    #[test]
    fn broadcast_floods() {
        let mut sw = Switch::new(SwitchId(0), 3);
        let d = sw.process(PortNo(1), &pkt(MacAddr::from_index(1), MacAddr::BROADCAST));
        assert_eq!(d, SwitchDecision::Output(vec![PortNo(0), PortNo(2)]));
    }

    #[test]
    fn policy_drop_counted() {
        let mut sw = Switch::new(SwitchId(0), 2);
        sw.install(FlowRule::new(10, FlowMatch::any(), FlowAction::Drop));
        let d = sw.process(PortNo(0), &pkt(MacAddr::from_index(1), MacAddr::from_index(2)));
        assert_eq!(d, SwitchDecision::Drop);
        assert_eq!(sw.policy_drops, 1);
    }

    #[test]
    fn steer_and_mirror_decisions() {
        let mut sw = Switch::new(SwitchId(0), 2);
        sw.install(FlowRule::new(10, FlowMatch::any(), FlowAction::Steer(SteerId(7))));
        let p = pkt(MacAddr::from_index(1), MacAddr::from_index(2));
        assert_eq!(sw.process(PortNo(0), &p), SwitchDecision::Steer(SteerId(7)));
        sw.table.clear();
        sw.install(FlowRule::new(10, FlowMatch::any(), FlowAction::Mirror));
        match sw.process(PortNo(0), &p) {
            SwitchDecision::MirrorAnd(ports) => assert!(!ports.is_empty()),
            other => panic!("expected mirror, got {other:?}"),
        }
    }
}
