//! Packet representation and wire codec.
//!
//! Following the smoltcp philosophy, packets are explicit representation
//! types that can be emitted to and parsed from real wire bytes. The
//! simulator mostly moves the structured [`Packet`] around (cheap, and the
//! payload is a ref-counted [`Bytes`]), but the codec matters for three
//! reasons: signature-based µmboxes match on wire bytes, the capture layer
//! stores wire bytes, and byte-accurate encode/decode gives the property
//! tests a real invariant to check.

use crate::addr::{Ipv4Addr, MacAddr};
use bytes::{BufMut, Bytes, BytesMut};
use core::fmt;
use serde::{Deserialize, Serialize};

/// Errors produced when parsing wire bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer is shorter than the header demands.
    Truncated,
    /// An EtherType we do not model (only IPv4 is supported).
    UnsupportedEtherType(u16),
    /// An IP protocol number we do not model.
    UnsupportedProtocol(u8),
    /// IPv4 header checksum mismatch.
    BadChecksum,
    /// IPv4 version or IHL field malformed.
    Malformed,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated => write!(f, "truncated packet"),
            ParseError::UnsupportedEtherType(t) => write!(f, "unsupported ethertype 0x{t:04x}"),
            ParseError::UnsupportedProtocol(p) => write!(f, "unsupported ip protocol {p}"),
            ParseError::BadChecksum => write!(f, "bad ipv4 header checksum"),
            ParseError::Malformed => write!(f, "malformed header"),
        }
    }
}

impl std::error::Error for ParseError {}

/// EtherType for IPv4 — the only L3 protocol the substrate models.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// IP protocol numbers the substrate models.
pub mod ip_proto {
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
}

/// Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType (always [`ETHERTYPE_IPV4`] in this substrate).
    pub ethertype: u16,
}

impl EthernetHeader {
    /// Wire length of the header in bytes.
    pub const LEN: usize = 14;

    /// Emit to wire bytes.
    pub fn emit(&self, buf: &mut BytesMut) {
        buf.put_slice(&self.dst.0);
        buf.put_slice(&self.src.0);
        buf.put_u16(self.ethertype);
    }

    /// Parse from wire bytes, returning the header and bytes consumed.
    pub fn parse(data: &[u8]) -> Result<(Self, usize), ParseError> {
        if data.len() < Self::LEN {
            return Err(ParseError::Truncated);
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        let ethertype = u16::from_be_bytes([data[12], data[13]]);
        Ok((EthernetHeader { dst: MacAddr(dst), src: MacAddr(src), ethertype }, Self::LEN))
    }
}

/// IPv4 header (no options — IHL is always 5 in this substrate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Payload protocol ([`ip_proto`]).
    pub protocol: u8,
    /// Time-to-live.
    pub ttl: u8,
    /// Differentiated services byte (kept because some µmboxes re-mark it).
    pub dscp: u8,
    /// Total length of IPv4 header plus everything after it.
    pub total_len: u16,
}

impl Ipv4Header {
    /// Wire length of the (option-less) header.
    pub const LEN: usize = 20;

    /// Emit to wire bytes, computing the header checksum.
    pub fn emit(&self, buf: &mut BytesMut) {
        let start = buf.len();
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(self.dscp);
        buf.put_u16(self.total_len);
        buf.put_u16(0); // identification
        buf.put_u16(0x4000); // don't fragment
        buf.put_u8(self.ttl);
        buf.put_u8(self.protocol);
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&self.src.0);
        buf.put_slice(&self.dst.0);
        let cksum = internet_checksum(&buf[start..start + Self::LEN]);
        buf[start + 10..start + 12].copy_from_slice(&cksum.to_be_bytes());
    }

    /// Parse from wire bytes, verifying the checksum.
    pub fn parse(data: &[u8]) -> Result<(Self, usize), ParseError> {
        if data.len() < Self::LEN {
            return Err(ParseError::Truncated);
        }
        if data[0] >> 4 != 4 {
            return Err(ParseError::Malformed);
        }
        let ihl = (data[0] & 0x0f) as usize * 4;
        if ihl < Self::LEN || data.len() < ihl {
            return Err(ParseError::Malformed);
        }
        if internet_checksum(&data[..ihl]) != 0 {
            return Err(ParseError::BadChecksum);
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]);
        let ttl = data[8];
        let protocol = data[9];
        let mut src = [0u8; 4];
        let mut dst = [0u8; 4];
        src.copy_from_slice(&data[12..16]);
        dst.copy_from_slice(&data[16..20]);
        Ok((
            Ipv4Header {
                src: Ipv4Addr(src),
                dst: Ipv4Addr(dst),
                protocol,
                ttl,
                dscp: data[1],
                total_len,
            },
            ihl,
        ))
    }
}

/// TCP flag bits carried in [`TransportHeader::Tcp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags {
    /// SYN.
    pub syn: bool,
    /// ACK.
    pub ack: bool,
    /// FIN.
    pub fin: bool,
    /// RST.
    pub rst: bool,
}

impl TcpFlags {
    /// A SYN-only segment (connection open).
    pub const SYN: TcpFlags = TcpFlags { syn: true, ack: false, fin: false, rst: false };
    /// A pure ACK.
    pub const ACK: TcpFlags = TcpFlags { syn: false, ack: true, fin: false, rst: false };

    fn to_bits(self) -> u8 {
        (self.fin as u8)
            | ((self.syn as u8) << 1)
            | ((self.rst as u8) << 2)
            | ((self.ack as u8) << 4)
    }

    fn from_bits(b: u8) -> TcpFlags {
        TcpFlags { fin: b & 0x01 != 0, syn: b & 0x02 != 0, rst: b & 0x04 != 0, ack: b & 0x10 != 0 }
    }
}

/// Transport header: simplified UDP/TCP carrying ports (and, for TCP,
/// sequence numbers and flags — enough for the stateful-firewall and
/// proxy µmboxes to track connection establishment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransportHeader {
    /// UDP.
    Udp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
    },
    /// TCP (no window/checksum modelling; delivery is reliable in-order
    /// per link by construction of the event engine).
    Tcp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Sequence number.
        seq: u32,
        /// Flags.
        flags: TcpFlags,
    },
}

impl TransportHeader {
    /// A UDP header.
    pub fn udp(src_port: u16, dst_port: u16) -> Self {
        TransportHeader::Udp { src_port, dst_port }
    }

    /// A TCP header with the given flags.
    pub fn tcp(src_port: u16, dst_port: u16, seq: u32, flags: TcpFlags) -> Self {
        TransportHeader::Tcp { src_port, dst_port, seq, flags }
    }

    /// IP protocol number of this header.
    pub fn protocol(&self) -> u8 {
        match self {
            TransportHeader::Udp { .. } => ip_proto::UDP,
            TransportHeader::Tcp { .. } => ip_proto::TCP,
        }
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        match *self {
            TransportHeader::Udp { src_port, .. } | TransportHeader::Tcp { src_port, .. } => {
                src_port
            }
        }
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        match *self {
            TransportHeader::Udp { dst_port, .. } | TransportHeader::Tcp { dst_port, .. } => {
                dst_port
            }
        }
    }

    /// Wire length in bytes (UDP: 8, TCP: 20 with no options).
    pub fn wire_len(&self) -> usize {
        match self {
            TransportHeader::Udp { .. } => 8,
            TransportHeader::Tcp { .. } => 20,
        }
    }

    /// Emit to wire bytes. `payload_len` is needed for the UDP length field.
    pub fn emit(&self, buf: &mut BytesMut, payload_len: usize) {
        match *self {
            TransportHeader::Udp { src_port, dst_port } => {
                buf.put_u16(src_port);
                buf.put_u16(dst_port);
                buf.put_u16((8 + payload_len) as u16);
                buf.put_u16(0); // checksum unused (reliable substrate)
            }
            TransportHeader::Tcp { src_port, dst_port, seq, flags } => {
                buf.put_u16(src_port);
                buf.put_u16(dst_port);
                buf.put_u32(seq);
                buf.put_u32(0); // ack number unused
                buf.put_u8(5 << 4); // data offset 5 words
                buf.put_u8(flags.to_bits());
                buf.put_u16(0xffff); // window
                buf.put_u16(0); // checksum unused
                buf.put_u16(0); // urgent
            }
        }
    }

    /// Parse from wire bytes given the IP protocol number.
    pub fn parse(protocol: u8, data: &[u8]) -> Result<(Self, usize), ParseError> {
        match protocol {
            ip_proto::UDP => {
                if data.len() < 8 {
                    return Err(ParseError::Truncated);
                }
                Ok((
                    TransportHeader::Udp {
                        src_port: u16::from_be_bytes([data[0], data[1]]),
                        dst_port: u16::from_be_bytes([data[2], data[3]]),
                    },
                    8,
                ))
            }
            ip_proto::TCP => {
                if data.len() < 20 {
                    return Err(ParseError::Truncated);
                }
                let off = ((data[12] >> 4) as usize) * 4;
                if off < 20 || data.len() < off {
                    return Err(ParseError::Malformed);
                }
                Ok((
                    TransportHeader::Tcp {
                        src_port: u16::from_be_bytes([data[0], data[1]]),
                        dst_port: u16::from_be_bytes([data[2], data[3]]),
                        seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
                        flags: TcpFlags::from_bits(data[13]),
                    },
                    off,
                ))
            }
            other => Err(ParseError::UnsupportedProtocol(other)),
        }
    }
}

/// A full packet: Ethernet + IPv4 + transport + application payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Packet {
    /// L2 header.
    pub eth: EthernetHeader,
    /// L3 header. `total_len` is recomputed on [`Packet::to_wire`].
    pub ip: Ipv4Header,
    /// L4 header.
    pub transport: TransportHeader,
    /// Application payload bytes (the `iotdev` protocol codec fills this).
    pub payload: Bytes,
}

impl Packet {
    /// Build a packet with sensible defaults (TTL 64, DSCP 0) and a
    /// correctly-sized `total_len`.
    pub fn new(
        eth_src: MacAddr,
        eth_dst: MacAddr,
        ip_src: Ipv4Addr,
        ip_dst: Ipv4Addr,
        transport: TransportHeader,
        payload: Bytes,
    ) -> Packet {
        let total_len = (Ipv4Header::LEN + transport.wire_len() + payload.len()) as u16;
        Packet {
            eth: EthernetHeader { src: eth_src, dst: eth_dst, ethertype: ETHERTYPE_IPV4 },
            ip: Ipv4Header {
                src: ip_src,
                dst: ip_dst,
                protocol: transport.protocol(),
                ttl: 64,
                dscp: 0,
                total_len,
            },
            transport,
            payload,
        }
    }

    /// Total wire length in bytes.
    pub fn wire_len(&self) -> usize {
        EthernetHeader::LEN + Ipv4Header::LEN + self.transport.wire_len() + self.payload.len()
    }

    /// Wire length in bits (used for transmission-delay computation).
    pub fn wire_bits(&self) -> u64 {
        self.wire_len() as u64 * 8
    }

    /// Serialize to wire bytes.
    pub fn to_wire(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        self.eth.emit(&mut buf);
        let mut ip = self.ip;
        ip.total_len = (Ipv4Header::LEN + self.transport.wire_len() + self.payload.len()) as u16;
        ip.protocol = self.transport.protocol();
        ip.emit(&mut buf);
        self.transport.emit(&mut buf, self.payload.len());
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parse from wire bytes.
    pub fn from_wire(data: &[u8]) -> Result<Packet, ParseError> {
        let (eth, n1) = EthernetHeader::parse(data)?;
        if eth.ethertype != ETHERTYPE_IPV4 {
            return Err(ParseError::UnsupportedEtherType(eth.ethertype));
        }
        let (ip, n2) = Ipv4Header::parse(&data[n1..])?;
        let (transport, n3) = TransportHeader::parse(ip.protocol, &data[n1 + n2..])?;
        let payload_start = n1 + n2 + n3;
        let payload_end = (n1 + ip.total_len as usize).min(data.len());
        let payload = Bytes::copy_from_slice(&data[payload_start..payload_end.max(payload_start)]);
        Ok(Packet { eth, ip, transport, payload })
    }

    /// Decrement TTL; returns `false` if the packet must be dropped
    /// (TTL exhausted).
    pub fn decrement_ttl(&mut self) -> bool {
        if self.ip.ttl <= 1 {
            false
        } else {
            self.ip.ttl -= 1;
            true
        }
    }
}

/// All three packet headers packed into two `u128` words plus a `u32`
/// side word, in the bit-field register style the E19 packed-state
/// engine (and the arm-sysregs idiom it borrows) uses: the hot paths —
/// flow-key extraction, signature pre-filters, switch forwarding —
/// compare and mask whole words instead of walking three structs.
///
/// Layout (high bit → low bit):
///
/// ```text
/// a: | eth_dst 48 | eth_src 48 | ethertype 16 | ttl 8 | dscp 8 |
/// b: | ip_src 32 | ip_dst 32 | total_len 16 | src_port 16
///    | dst_port 16 | protocol 8 | kind 1 (pad 2) | tcp flags 5 |
/// seq: TCP sequence number (0 for UDP)
/// ```
///
/// The encoding is a **total bijection** with
/// `(EthernetHeader, Ipv4Header, TransportHeader)` — 286 raw header bits
/// do not fit two words, hence the `seq` side word — so
/// [`PackedHeaders::unpack`] reconstructs the exact structs for the
/// trace layer and the wire codec ([`From`]/[`Into`] both ways). The
/// payload is *not* packed: it rides alongside as its ref-counted
/// [`Bytes`], the fallback for data no fixed-width word can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedHeaders {
    /// L2 word: MACs, ethertype, TTL, DSCP.
    pub a: u128,
    /// L3/L4 word: addresses, lengths, ports, protocol, flags.
    pub b: u128,
    /// TCP sequence number side word (0 for UDP).
    pub seq: u32,
}

/// `kind` bit in word `b`: set for TCP, clear for UDP.
const PACKED_KIND_TCP: u128 = 1 << 7;

fn mac_to_u48(m: MacAddr) -> u128 {
    let b = m.0;
    (u128::from(b[0]) << 40)
        | (u128::from(b[1]) << 32)
        | (u128::from(b[2]) << 24)
        | (u128::from(b[3]) << 16)
        | (u128::from(b[4]) << 8)
        | u128::from(b[5])
}

fn mac_from_u48(v: u128) -> MacAddr {
    MacAddr([
        (v >> 40) as u8,
        (v >> 32) as u8,
        (v >> 24) as u8,
        (v >> 16) as u8,
        (v >> 8) as u8,
        v as u8,
    ])
}

impl PackedHeaders {
    /// Pack the three headers into words.
    pub fn pack(eth: &EthernetHeader, ip: &Ipv4Header, transport: &TransportHeader) -> Self {
        let a = (mac_to_u48(eth.dst) << 80)
            | (mac_to_u48(eth.src) << 32)
            | (u128::from(eth.ethertype) << 16)
            | (u128::from(ip.ttl) << 8)
            | u128::from(ip.dscp);
        let (kind, flag_bits, seq) = match *transport {
            TransportHeader::Udp { .. } => (0u128, 0u128, 0u32),
            TransportHeader::Tcp { seq, flags, .. } => {
                (PACKED_KIND_TCP, u128::from(flags.to_bits()), seq)
            }
        };
        let b = (u128::from(ip.src.to_u32()) << 96)
            | (u128::from(ip.dst.to_u32()) << 64)
            | (u128::from(ip.total_len) << 48)
            | (u128::from(transport.src_port()) << 32)
            | (u128::from(transport.dst_port()) << 16)
            | (u128::from(ip.protocol) << 8)
            | kind
            | flag_bits;
        PackedHeaders { a, b, seq }
    }

    /// Reconstruct the exact header structs (the trace layer and wire
    /// codec consume these).
    pub fn unpack(&self) -> (EthernetHeader, Ipv4Header, TransportHeader) {
        let eth = EthernetHeader {
            dst: mac_from_u48(self.a >> 80),
            src: mac_from_u48((self.a >> 32) & 0xffff_ffff_ffff),
            ethertype: (self.a >> 16) as u16,
        };
        let ip = Ipv4Header {
            src: Ipv4Addr::from_u32((self.b >> 96) as u32),
            dst: Ipv4Addr::from_u32((self.b >> 64) as u32),
            protocol: (self.b >> 8) as u8,
            ttl: (self.a >> 8) as u8,
            dscp: self.a as u8,
            total_len: (self.b >> 48) as u16,
        };
        let src_port = (self.b >> 32) as u16;
        let dst_port = (self.b >> 16) as u16;
        let transport = if self.b & PACKED_KIND_TCP != 0 {
            TransportHeader::Tcp {
                src_port,
                dst_port,
                seq: self.seq,
                flags: TcpFlags::from_bits((self.b & 0x1f) as u8),
            }
        } else {
            TransportHeader::Udp { src_port, dst_port }
        };
        (eth, ip, transport)
    }

    /// Destination port, straight off the packed word (pre-filters).
    pub fn dst_port(&self) -> u16 {
        (self.b >> 16) as u16
    }

    /// Source IPv4 address, straight off the packed word (pre-filters).
    pub fn ip_src(&self) -> Ipv4Addr {
        Ipv4Addr::from_u32((self.b >> 96) as u32)
    }
}

impl From<&Packet> for PackedHeaders {
    fn from(p: &Packet) -> Self {
        PackedHeaders::pack(&p.eth, &p.ip, &p.transport)
    }
}

impl From<PackedHeaders> for (EthernetHeader, Ipv4Header, TransportHeader) {
    fn from(p: PackedHeaders) -> Self {
        p.unpack()
    }
}

impl Packet {
    /// The packed-word view of this packet's headers.
    pub fn packed_headers(&self) -> PackedHeaders {
        PackedHeaders::from(self)
    }
}

/// RFC 1071 internet checksum over `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_packet(payload: &[u8]) -> Packet {
        Packet::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            TransportHeader::udp(5000, 80),
            Bytes::copy_from_slice(payload),
        )
    }

    #[test]
    fn udp_round_trip() {
        let p = sample_packet(b"hello iot");
        let wire = p.to_wire();
        assert_eq!(wire.len(), p.wire_len());
        let q = Packet::from_wire(&wire).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn tcp_round_trip() {
        let p = Packet::new(
            MacAddr::from_index(3),
            MacAddr::from_index(4),
            Ipv4Addr::new(192, 168, 1, 10),
            Ipv4Addr::new(192, 168, 1, 1),
            TransportHeader::tcp(43122, 443, 0xdeadbeef, TcpFlags::SYN),
            Bytes::new(),
        );
        let q = Packet::from_wire(&p.to_wire()).unwrap();
        assert_eq!(p, q);
        match q.transport {
            TransportHeader::Tcp { flags, seq, .. } => {
                assert!(flags.syn && !flags.ack);
                assert_eq!(seq, 0xdeadbeef);
            }
            _ => panic!("expected tcp"),
        }
    }

    #[test]
    fn packed_headers_round_trip_udp_and_tcp() {
        let udp = sample_packet(b"hello iot");
        let (eth, ip, transport) = udp.packed_headers().unpack();
        assert_eq!((eth, ip, transport), (udp.eth, udp.ip, udp.transport));

        let tcp = Packet::new(
            MacAddr::from_index(3),
            MacAddr::BROADCAST,
            Ipv4Addr::new(8, 8, 8, 8),
            Ipv4Addr::new(192, 168, 1, 1),
            TransportHeader::tcp(43122, 443, 0xdead_beef, TcpFlags::SYN),
            Bytes::new(),
        );
        let packed = PackedHeaders::from(&tcp);
        let (eth, ip, transport) = packed.into();
        assert_eq!((eth, ip, transport), (tcp.eth, tcp.ip, tcp.transport));
        assert_eq!(packed.dst_port(), 443);
        assert_eq!(packed.ip_src(), Ipv4Addr::new(8, 8, 8, 8));
    }

    #[test]
    fn packed_headers_preserve_independent_ip_protocol() {
        // `ip.protocol` is its own field: a (malformed) packet whose IP
        // protocol disagrees with the transport variant must survive the
        // word round trip bit-for-bit — the encoding keeps the protocol
        // byte and the transport kind bit separately.
        let mut p = sample_packet(b"");
        p.ip.protocol = 99;
        p.ip.ttl = 1;
        p.ip.dscp = 0xb8;
        let (eth, ip, transport) = p.packed_headers().unpack();
        assert_eq!((eth, ip, transport), (p.eth, p.ip, p.transport));
    }

    #[test]
    fn checksum_detects_corruption() {
        let p = sample_packet(b"payload");
        let mut wire = p.to_wire().to_vec();
        // Flip a bit in the IP source address.
        wire[EthernetHeader::LEN + 12] ^= 0x01;
        assert_eq!(Packet::from_wire(&wire), Err(ParseError::BadChecksum));
    }

    #[test]
    fn truncated_rejected() {
        let p = sample_packet(b"x");
        let wire = p.to_wire();
        assert_eq!(Packet::from_wire(&wire[..10]), Err(ParseError::Truncated));
        assert!(matches!(
            Packet::from_wire(&wire[..EthernetHeader::LEN + 4]),
            Err(ParseError::Truncated)
        ));
    }

    #[test]
    fn non_ipv4_rejected() {
        let mut wire = sample_packet(b"").to_wire().to_vec();
        wire[12] = 0x86; // 0x86dd = IPv6
        wire[13] = 0xdd;
        assert_eq!(Packet::from_wire(&wire), Err(ParseError::UnsupportedEtherType(0x86dd)));
    }

    #[test]
    fn ttl_decrement() {
        let mut p = sample_packet(b"");
        p.ip.ttl = 2;
        assert!(p.decrement_ttl());
        assert_eq!(p.ip.ttl, 1);
        assert!(!p.decrement_ttl());
    }

    #[test]
    fn internet_checksum_known_vector() {
        // Example from RFC 1071 section 3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), !0xddf2u16);
    }

    proptest! {
        #[test]
        fn prop_round_trip_udp(
            sp in any::<u16>(), dp in any::<u16>(),
            src in any::<u32>(), dst in any::<u32>(),
            payload in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let p = Packet::new(
                MacAddr::from_index(src & 0xffff),
                MacAddr::from_index(dst & 0xffff),
                Ipv4Addr::from_u32(src),
                Ipv4Addr::from_u32(dst),
                TransportHeader::udp(sp, dp),
                Bytes::from(payload),
            );
            let q = Packet::from_wire(&p.to_wire()).unwrap();
            prop_assert_eq!(p, q);
        }

        #[test]
        fn prop_round_trip_tcp(
            sp in any::<u16>(), dp in any::<u16>(), seq in any::<u32>(),
            syn in any::<bool>(), ack in any::<bool>(), fin in any::<bool>(), rst in any::<bool>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let p = Packet::new(
                MacAddr::from_index(9),
                MacAddr::from_index(10),
                Ipv4Addr::new(10, 0, 0, 9),
                Ipv4Addr::new(10, 0, 0, 10),
                TransportHeader::tcp(sp, dp, seq, TcpFlags { syn, ack, fin, rst }),
                Bytes::from(payload),
            );
            let q = Packet::from_wire(&p.to_wire()).unwrap();
            prop_assert_eq!(p, q);
        }

        #[test]
        fn prop_checksum_of_emitted_header_is_zero(
            src in any::<u32>(), dst in any::<u32>(), ttl in 1u8..255,
        ) {
            let hdr = Ipv4Header {
                src: Ipv4Addr::from_u32(src),
                dst: Ipv4Addr::from_u32(dst),
                protocol: ip_proto::UDP,
                ttl,
                dscp: 0,
                total_len: 20,
            };
            let mut buf = BytesMut::new();
            hdr.emit(&mut buf);
            prop_assert_eq!(internet_checksum(&buf), 0);
        }
    }
}
