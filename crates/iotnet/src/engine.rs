//! Discrete-event engine.
//!
//! A minimal, fully deterministic event queue: events are ordered by
//! timestamp, and events with equal timestamps are delivered in insertion
//! order (FIFO-stable). Determinism here is what makes every experiment in
//! EXPERIMENTS.md exactly reproducible from its seed.
//!
//! Two implementations share the same ordering contract:
//!
//! * [`EventQueue`] — the production queue, a **hierarchical timer wheel**
//!   with a binary-heap overflow tier. Near-future events (the common case:
//!   link latencies and µmbox detours are microseconds to milliseconds) go
//!   into O(1) wheel slots; events beyond the wheel's horizon wait in the
//!   overflow heap and are cascaded in when the wheel advances.
//! * [`HeapEventQueue`] — the original `BinaryHeap` queue, kept as the
//!   reference implementation. Property tests assert the wheel delivers
//!   the exact same event order on randomized schedules.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first, and break
        // timestamp ties by insertion sequence for FIFO stability.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Level-0 slot width: 2^12 ns = 4.096 µs.
const GRAN_BITS: u32 = 12;
/// Slots per wheel level (2^6 = 64).
const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Total span = 2^(12 + 3·6) ns ≈ 1.07 s; anything further
/// out sits in the overflow heap until the wheel advances.
const LEVELS: usize = 3;

fn level_shift(level: usize) -> u32 {
    GRAN_BITS + SLOT_BITS * level as u32
}

/// A time-ordered, FIFO-stable event queue backed by a hierarchical timer
/// wheel with a heap overflow tier.
pub struct EventQueue<E> {
    /// `levels[l][slot]` holds entries whose delivery time falls in that
    /// slot of level `l`. Slot vectors are unsorted; a slot is sorted once,
    /// when it becomes due, by draining it into `ready`.
    levels: Vec<Vec<Vec<Entry<E>>>>,
    /// Entries per level, to skip empty levels in O(1).
    level_len: [usize; LEVELS],
    /// Entries beyond the wheel's span, earliest first.
    overflow: BinaryHeap<Entry<E>>,
    /// The due set: every entry at or before the current level-0 slot,
    /// ordered by `(at, seq)`. Popping drains this heap; it is refilled by
    /// advancing the wheel cursor.
    ready: BinaryHeap<Entry<E>>,
    /// Start (ns) of the level-0 slot currently feeding `ready`.
    cursor: u64,
    len: usize,
    next_seq: u64,
    now: SimTime,
    /// Events popped over the queue's lifetime.
    pub processed: u64,
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue").field("len", &self.len).field("now", &self.now).finish()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            levels: (0..LEVELS).map(|_| (0..SLOTS).map(|_| Vec::new()).collect()).collect(),
            level_len: [0; LEVELS],
            overflow: BinaryHeap::new(),
            ready: BinaryHeap::new(),
            cursor: 0,
            len: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current clock: the timestamp of the last popped event (or zero).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to `now` — the event fires
    /// immediately on the next pop. (This arises when a zero-latency hop
    /// computes a delivery time equal to the current instant.)
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        self.place(Entry { at, seq, event });
    }

    /// Route an entry to the due set, a wheel slot, or the overflow tier.
    fn place(&mut self, entry: Entry<E>) {
        let ns = entry.at.as_nanos();
        // At or before the slot currently being drained: it is due now.
        // (This also catches clock-clamped entries "behind" the cursor.)
        if ns < self.cursor + (1 << GRAN_BITS) {
            self.ready.push(entry);
            return;
        }
        for level in 0..LEVELS {
            // The entry belongs at `level` iff all bits above that level's
            // slot index agree with the cursor's — i.e. it lands within the
            // window the level spans from the cursor's position.
            let shift = level_shift(level) + SLOT_BITS;
            if (ns >> shift) == (self.cursor >> shift) {
                let slot = (ns >> level_shift(level)) as usize & (SLOTS - 1);
                self.levels[level][slot].push(entry);
                self.level_len[level] += 1;
                return;
            }
        }
        self.overflow.push(entry);
    }

    /// Move the cursor to the next populated slot and drain it into
    /// `ready`. Precondition: `ready` is empty and `len > 0`.
    fn advance(&mut self) {
        loop {
            // A cascade may have routed entries straight into `ready` (they
            // landed at or before the moved cursor's slot); those are the
            // earliest pending events, so stop here.
            if !self.ready.is_empty() {
                return;
            }
            // Find the first populated level-0 slot at or after the cursor
            // within the current level-0 window.
            if self.level_len[0] > 0 {
                let start = (self.cursor >> GRAN_BITS) as usize & (SLOTS - 1);
                for slot in start..SLOTS {
                    if !self.levels[0][slot].is_empty() {
                        let drained = std::mem::take(&mut self.levels[0][slot]);
                        self.level_len[0] -= drained.len();
                        // Align the cursor with the drained slot.
                        let window = self.cursor >> (GRAN_BITS + SLOT_BITS);
                        self.cursor = (window << SLOT_BITS | slot as u64) << GRAN_BITS;
                        self.ready.extend(drained);
                        return;
                    }
                }
            }
            // Level-0 window exhausted: cascade the next populated slot of
            // the first higher level that has one, re-placing its entries
            // (they now fit lower levels relative to the moved cursor).
            let mut cascaded = false;
            for level in 1..LEVELS {
                if self.level_len[level] == 0 {
                    continue;
                }
                let shift = level_shift(level);
                let start = (self.cursor >> shift) as usize & (SLOTS - 1);
                // Entries at this level are strictly after the cursor's own
                // slot's lower-level window, so scanning from `start` is
                // safe: slot `start` can only hold entries not yet cascaded.
                for slot in start..SLOTS {
                    if self.levels[level][slot].is_empty() {
                        continue;
                    }
                    let drained = std::mem::take(&mut self.levels[level][slot]);
                    self.level_len[level] -= drained.len();
                    let window = self.cursor >> (shift + SLOT_BITS);
                    self.cursor = (window << SLOT_BITS | slot as u64) << shift;
                    for e in drained {
                        self.place(e);
                    }
                    cascaded = true;
                    break;
                }
                if cascaded {
                    break;
                }
            }
            if cascaded {
                continue;
            }
            // Wheel fully drained: re-anchor at the overflow's earliest
            // entry and pull in everything within the new span.
            let head = self.overflow.pop().expect("len > 0 but queue empty");
            self.cursor = head.at.as_nanos() >> GRAN_BITS << GRAN_BITS;
            let span_end = {
                let shift = level_shift(LEVELS - 1) + SLOT_BITS;
                ((self.cursor >> shift) + 1) << shift
            };
            self.ready.push(head);
            while let Some(peek) = self.overflow.peek() {
                if peek.at.as_nanos() >= span_end {
                    break;
                }
                let e = self.overflow.pop().unwrap();
                self.place(e);
            }
            return;
        }
    }

    /// Make `ready` non-empty if any event is pending.
    fn ensure_ready(&mut self) {
        if self.ready.is_empty() && self.len > 0 {
            self.advance();
        }
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if let Some(e) = self.ready.peek() {
            return Some(e.at);
        }
        // Cold path (`&self`, so no cursor advance): scan the wheel and the
        // overflow head. Only hit by callers polling an idle queue.
        let mut min: Option<SimTime> = None;
        for level in 0..LEVELS {
            if self.level_len[level] == 0 {
                continue;
            }
            for slot in &self.levels[level] {
                for e in slot {
                    if min.is_none_or(|m| e.at < m) {
                        min = Some(e.at);
                    }
                }
            }
        }
        if let Some(e) = self.overflow.peek() {
            if min.is_none_or(|m| e.at < m) {
                min = Some(e.at);
            }
        }
        min
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.ensure_ready();
        let entry = self.ready.pop()?;
        self.len -= 1;
        self.processed += 1;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Pop the next event only if it is due at or before `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        self.ensure_ready();
        if self.ready.peek()?.at <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// Drop all pending events (used when a scenario is reset).
    pub fn clear(&mut self) {
        for level in &mut self.levels {
            for slot in level {
                slot.clear();
            }
        }
        self.level_len = [0; LEVELS];
        self.overflow.clear();
        self.ready.clear();
        self.len = 0;
    }
}

/// The original `BinaryHeap`-backed queue, kept as the ordering reference
/// for the timer wheel (see `tests/sweep_props.rs`) and for benchmarks.
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    /// Events popped over the queue's lifetime.
    pub processed: u64,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        HeapEventQueue { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO, processed: 0 }
    }

    /// The current clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at` (clamped to `now`).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        self.processed += 1;
        Some((entry.at, entry.event))
    }

    /// Pop the next event only if it is due at or before `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek()?.at <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// Which [`AnyEventQueue`] backend a simulation runs on.
///
/// The two backends share one ordering contract (proptested in this
/// module and in `tests/trace_diff_props.rs`); selecting `Heap` exists so
/// the differential harness can run whole worlds against the reference
/// queue and byte-compare the traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// The hierarchical timer wheel ([`EventQueue`]) — the default.
    #[default]
    Wheel,
    /// The `BinaryHeap` reference ([`HeapEventQueue`]).
    Heap,
}

/// An event queue whose backend is chosen at construction time.
///
/// Both arms expose identical semantics, so a `Network` built on either
/// must produce byte-identical traces from the same seed — the
/// wheel-vs-heap invariant the golden-trace harness enforces.
pub enum AnyEventQueue<E> {
    /// Timer-wheel backend.
    Wheel(EventQueue<E>),
    /// Binary-heap reference backend.
    Heap(HeapEventQueue<E>),
}

impl<E> std::fmt::Debug for HeapEventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapEventQueue")
            .field("len", &self.heap.len())
            .field("now", &self.now)
            .finish()
    }
}

impl<E> std::fmt::Debug for AnyEventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnyEventQueue::Wheel(q) => f.debug_tuple("Wheel").field(q).finish(),
            AnyEventQueue::Heap(q) => f.debug_tuple("Heap").field(q).finish(),
        }
    }
}

impl<E> AnyEventQueue<E> {
    /// An empty queue on the requested backend.
    pub fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Wheel => AnyEventQueue::Wheel(EventQueue::new()),
            QueueKind::Heap => AnyEventQueue::Heap(HeapEventQueue::new()),
        }
    }

    /// The current clock.
    pub fn now(&self) -> SimTime {
        match self {
            AnyEventQueue::Wheel(q) => q.now(),
            AnyEventQueue::Heap(q) => q.now(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match self {
            AnyEventQueue::Wheel(q) => q.len(),
            AnyEventQueue::Heap(q) => q.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `event` at absolute time `at` (clamped to `now`).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        match self {
            AnyEventQueue::Wheel(q) => q.schedule(at, event),
            AnyEventQueue::Heap(q) => q.schedule(at, event),
        }
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match self {
            AnyEventQueue::Wheel(q) => q.peek_time(),
            AnyEventQueue::Heap(q) => q.peek_time(),
        }
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            AnyEventQueue::Wheel(q) => q.pop(),
            AnyEventQueue::Heap(q) => q.pop(),
        }
    }

    /// Pop the next event only if it is due at or before `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self {
            AnyEventQueue::Wheel(q) => q.pop_until(deadline),
            AnyEventQueue::Heap(q) => q.pop_until(deadline),
        }
    }

    /// Events popped over the queue's lifetime.
    pub fn processed(&self) -> u64 {
        match self {
            AnyEventQueue::Wheel(q) => q.processed,
            AnyEventQueue::Heap(q) => q.processed,
        }
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        match self {
            AnyEventQueue::Wheel(q) => q.clear(),
            AnyEventQueue::Heap(q) => q.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_stable_for_equal_timestamps() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_millis(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_and_clamps_past_schedules() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "x");
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(10));
        // Scheduling in the past clamps to now.
        q.schedule(SimTime::from_millis(1), "late");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "late")));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.pop_until(SimTime::from_millis(15)), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop_until(SimTime::from_millis(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn far_future_events_cross_the_overflow_tier() {
        let mut q = EventQueue::new();
        // Beyond the wheel's ~1.07 s span: lands in overflow.
        q.schedule(SimTime::from_secs(3600), "far");
        q.schedule(SimTime::from_secs(7200), "farther");
        q.schedule(SimTime::from_micros(3), "near");
        assert_eq!(q.pop(), Some((SimTime::from_micros(3), "near")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3600), "far")));
        // Scheduling relative to the advanced clock still orders correctly.
        q.schedule(SimTime::from_secs(3601), "mid");
        assert_eq!(q.pop(), Some((SimTime::from_secs(3601), "mid")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(7200), "farther")));
        assert!(q.is_empty());
        assert_eq!(q.processed, 4);
    }

    #[test]
    fn peek_time_without_popping() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(9), "later");
        q.schedule(SimTime::from_millis(7), "sooner");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
    }

    #[test]
    fn clear_empties_every_tier() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(1), 1);
        q.schedule(SimTime::from_millis(500), 2);
        q.schedule(SimTime::from_secs(50), 3);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn heap_queue_matches_wheel_surface() {
        // The reference queue grew `pop_until`/`clear`/`processed` so whole
        // worlds can run on either backend; pin the shared semantics.
        let mut q = HeapEventQueue::new();
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.pop_until(SimTime::from_millis(15)), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop_until(SimTime::from_millis(15)), None);
        assert_eq!(q.processed, 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn any_queue_backends_agree() {
        let mut wheel = AnyEventQueue::new(QueueKind::Wheel);
        let mut heap = AnyEventQueue::new(QueueKind::Heap);
        for q in [&mut wheel, &mut heap] {
            q.schedule(SimTime::from_millis(5), 1u32);
            q.schedule(SimTime::from_millis(5), 2);
            q.schedule(SimTime::from_micros(1), 0);
        }
        loop {
            assert_eq!(wheel.peek_time(), heap.peek_time());
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(wheel.processed(), 3);
        assert_eq!(heap.processed(), 3);
    }

    proptest! {
        #[test]
        fn prop_pop_order_is_nondecreasing(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((at, _)) = q.pop() {
                prop_assert!(at >= last);
                last = at;
            }
        }

        #[test]
        fn prop_all_events_delivered(times in proptest::collection::vec(0u64..1000, 0..100)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut seen = vec![false; times.len()];
            while let Some((_, i)) = q.pop() {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
            prop_assert!(seen.iter().all(|s| *s));
        }

        #[test]
        fn prop_wheel_matches_heap_order(times in proptest::collection::vec(0u64..5_000_000_000, 1..300)) {
            let mut wheel = EventQueue::new();
            let mut heap = HeapEventQueue::new();
            for (i, t) in times.iter().enumerate() {
                wheel.schedule(SimTime::from_nanos(*t), i);
                heap.schedule(SimTime::from_nanos(*t), i);
            }
            loop {
                let (a, b) = (wheel.pop(), heap.pop());
                prop_assert_eq!(a, b);
                if b.is_none() {
                    break;
                }
            }
        }
    }
}
