//! Discrete-event engine.
//!
//! A minimal, fully deterministic event queue: events are ordered by
//! timestamp, and events with equal timestamps are delivered in insertion
//! order (FIFO-stable). Determinism here is what makes every experiment in
//! EXPERIMENTS.md exactly reproducible from its seed.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first, and break
        // timestamp ties by insertion sequence for FIFO stability.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered, FIFO-stable event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue").field("len", &self.heap.len()).field("now", &self.now).finish()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO }
    }

    /// The current clock: the timestamp of the last popped event (or zero).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to `now` — the event fires
    /// immediately on the next pop. (This arises when a zero-latency hop
    /// computes a delivery time equal to the current instant.)
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Pop the next event only if it is due at or before `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// Drop all pending events (used when a scenario is reset).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_stable_for_equal_timestamps() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_millis(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_and_clamps_past_schedules() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "x");
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(10));
        // Scheduling in the past clamps to now.
        q.schedule(SimTime::from_millis(1), "late");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "late")));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.pop_until(SimTime::from_millis(15)), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop_until(SimTime::from_millis(15)), None);
        assert_eq!(q.len(), 1);
    }

    proptest! {
        #[test]
        fn prop_pop_order_is_nondecreasing(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((at, _)) = q.pop() {
                prop_assert!(at >= last);
                last = at;
            }
        }

        #[test]
        fn prop_all_events_delivered(times in proptest::collection::vec(0u64..1000, 0..100)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut seen = vec![false; times.len()];
            while let Some((_, i)) = q.pop() {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
            prop_assert!(seen.iter().all(|s| *s));
        }
    }
}
