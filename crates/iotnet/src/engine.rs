//! Discrete-event engine.
//!
//! A minimal, fully deterministic event queue: events are ordered by
//! timestamp, and events with equal timestamps are delivered in insertion
//! order (FIFO-stable). Determinism here is what makes every experiment in
//! EXPERIMENTS.md exactly reproducible from its seed.
//!
//! Two implementations share the same ordering contract:
//!
//! * [`EventQueue`] — the production queue, a **hierarchical timer wheel**
//!   with a binary-heap overflow tier. Near-future events (the common case:
//!   link latencies and µmbox detours are microseconds to milliseconds) go
//!   into O(1) wheel slots; events beyond the wheel's horizon wait in the
//!   overflow heap and are cascaded in when the wheel advances. Event
//!   payloads live in a slab [`EventArena`] with generational indices:
//!   the wheel slots and heaps move only plain `u32` [`EventHandle`]s
//!   (24-byte tickets), freed slots recycle through an intrusive free
//!   list, and the steady state allocates nothing (pinned by
//!   `tests/alloc_counter.rs`).
//! * [`HeapEventQueue`] — the original `BinaryHeap` queue, kept as the
//!   reference implementation. Property tests assert the wheel delivers
//!   the exact same event order on randomized schedules.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A generational handle into an [`EventArena`]: the low 24 bits are the
/// slot index, the high 8 bits the slot's generation at insertion time.
/// Accessing a slot after its event was removed fails (`None`) rather
/// than silently yielding a different event — the generation check turns
/// use-after-free into a detected error. (The 8-bit generation wraps
/// after 256 reuses of one slot; a handle held across exactly a multiple
/// of 256 recycles would alias. The engine never holds handles across
/// pops, and the proptests in `tests/packed_net_props.rs` pin the
/// detection behavior.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u32);

/// Bits of an [`EventHandle`] carrying the slot index.
const HANDLE_INDEX_BITS: u32 = 24;
/// Free-list terminator (also the max representable index, reserved).
const HANDLE_NIL: u32 = (1 << HANDLE_INDEX_BITS) - 1;

impl EventHandle {
    fn new(index: u32, generation: u8) -> EventHandle {
        EventHandle((u32::from(generation) << HANDLE_INDEX_BITS) | index)
    }

    /// The raw packed word (index | generation), for diagnostics.
    pub fn raw(self) -> u32 {
        self.0
    }

    fn index(self) -> u32 {
        self.0 & HANDLE_NIL
    }

    fn generation(self) -> u8 {
        (self.0 >> HANDLE_INDEX_BITS) as u8
    }
}

enum SlotState<E> {
    Occupied(E),
    Free { next: u32 },
}

struct ArenaSlot<E> {
    generation: u8,
    state: SlotState<E>,
}

/// A slab of event payloads addressed by generational [`EventHandle`]s.
///
/// Freed slots recycle through an intrusive free list threaded through
/// the `Free` variant, so a warm arena inserts and removes without
/// touching the allocator. Capacity grows only when every slot is
/// occupied (amortized, and avoidable entirely via
/// [`EventArena::with_capacity`]).
pub struct EventArena<E> {
    slots: Vec<ArenaSlot<E>>,
    free_head: u32,
    len: usize,
}

impl<E> Default for EventArena<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventArena<E> {
    /// An empty arena.
    pub fn new() -> Self {
        EventArena { slots: Vec::new(), free_head: HANDLE_NIL, len: 0 }
    }

    /// An empty arena with room for `cap` events before any growth.
    pub fn with_capacity(cap: usize) -> Self {
        EventArena { slots: Vec::with_capacity(cap), free_head: HANDLE_NIL, len: 0 }
    }

    /// Number of live events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots the arena can hold before growing.
    pub fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    /// Return the arena to its freshly-constructed state, retaining the
    /// slot storage. A reset arena assigns indices and generations
    /// exactly like a cold one (slots refill in append order from index
    /// 0), so recycled and cold worlds behave identically — only the
    /// allocator sees the difference.
    pub fn reset(&mut self) {
        self.slots.clear();
        self.free_head = HANDLE_NIL;
        self.len = 0;
    }

    /// Store `event`, returning its handle. Reuses a freed slot when one
    /// is available; otherwise appends (the only allocating path).
    ///
    /// # Panics
    /// If the arena holds 2^24 − 1 live events (the index space of the
    /// packed handle) — far beyond any simulated pending-event count.
    pub fn insert(&mut self, event: E) -> EventHandle {
        self.len += 1;
        if self.free_head != HANDLE_NIL {
            let index = self.free_head;
            let slot = &mut self.slots[index as usize];
            match slot.state {
                SlotState::Free { next } => self.free_head = next,
                SlotState::Occupied(_) => unreachable!("free list points at occupied slot"),
            }
            slot.state = SlotState::Occupied(event);
            EventHandle::new(index, slot.generation)
        } else {
            let index = self.slots.len() as u32;
            assert!(index < HANDLE_NIL, "event arena exhausted its 24-bit index space");
            self.slots.push(ArenaSlot { generation: 0, state: SlotState::Occupied(event) });
            EventHandle::new(index, 0)
        }
    }

    /// The event behind `handle`, or `None` if the handle is stale (its
    /// slot was freed or recycled) or out of range.
    pub fn get(&self, handle: EventHandle) -> Option<&E> {
        let slot = self.slots.get(handle.index() as usize)?;
        match &slot.state {
            SlotState::Occupied(e) if slot.generation == handle.generation() => Some(e),
            _ => None,
        }
    }

    /// Remove and return the event behind `handle`; `None` if the handle
    /// is stale or out of range. The slot's generation bumps so every
    /// outstanding copy of the handle becomes stale, and the slot joins
    /// the free list for reuse.
    pub fn remove(&mut self, handle: EventHandle) -> Option<E> {
        let index = handle.index() as usize;
        let slot = self.slots.get_mut(index)?;
        if slot.generation != handle.generation() || !matches!(slot.state, SlotState::Occupied(_)) {
            return None;
        }
        let state = std::mem::replace(&mut slot.state, SlotState::Free { next: self.free_head });
        slot.generation = slot.generation.wrapping_add(1);
        self.free_head = handle.index();
        self.len -= 1;
        match state {
            SlotState::Occupied(e) => Some(e),
            SlotState::Free { .. } => unreachable!("checked occupied above"),
        }
    }

    /// Drop every live event and rebuild the free list.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free_head = HANDLE_NIL;
        self.len = 0;
    }
}

/// A wheel/heap ticket: the ordering key plus the arena handle of the
/// event payload. 24 bytes and `Copy`, so slot vectors and heaps shuffle
/// words instead of event payloads.
#[derive(Clone, Copy)]
struct Ticket {
    at: SimTime,
    seq: u64,
    handle: EventHandle,
}

impl PartialEq for Ticket {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Ticket {}
impl PartialOrd for Ticket {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ticket {
    fn cmp(&self, other: &Self) -> Ordering {
        // Same inverted (at, seq) key as `Entry`: earliest first, FIFO
        // ties — the pop order is identical to the pre-arena queue.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first, and break
        // timestamp ties by insertion sequence for FIFO stability.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Level-0 slot width: 2^12 ns = 4.096 µs.
const GRAN_BITS: u32 = 12;
/// Slots per wheel level (2^6 = 64).
const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Total span = 2^(12 + 3·6) ns ≈ 1.07 s; anything further
/// out sits in the overflow heap until the wheel advances.
const LEVELS: usize = 3;

fn level_shift(level: usize) -> u32 {
    GRAN_BITS + SLOT_BITS * level as u32
}

/// A time-ordered, FIFO-stable event queue backed by a hierarchical timer
/// wheel with a heap overflow tier.
///
/// Event payloads live in an [`EventArena`]; the wheel slots and both
/// heaps move 24-byte [`Ticket`]s (ordering key + generational handle)
/// only. Slot vectors, heaps and arena slots all retain their capacity
/// across drains, so a warm queue schedules and pops with zero
/// allocations.
pub struct EventQueue<E> {
    /// Slab storage for the scheduled event payloads.
    arena: EventArena<E>,
    /// `levels[l][slot]` holds tickets whose delivery time falls in that
    /// slot of level `l`. Slot vectors are unsorted; a slot is sorted once,
    /// when it becomes due, by draining it into `ready`.
    levels: Vec<Vec<Vec<Ticket>>>,
    /// Tickets per level, to skip empty levels in O(1).
    level_len: [usize; LEVELS],
    /// Tickets beyond the wheel's span, earliest first.
    overflow: BinaryHeap<Ticket>,
    /// The due set: every ticket at or before the current level-0 slot,
    /// ordered by `(at, seq)`. Popping drains this heap; it is refilled by
    /// advancing the wheel cursor.
    ready: BinaryHeap<Ticket>,
    /// Reusable buffer for cascading a higher-level slot (capacity is
    /// retained across cascades so re-placing allocates nothing).
    cascade_scratch: Vec<Ticket>,
    /// Start (ns) of the level-0 slot currently feeding `ready`.
    cursor: u64,
    len: usize,
    next_seq: u64,
    now: SimTime,
    /// Events popped over the queue's lifetime.
    pub processed: u64,
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue").field("len", &self.len).field("now", &self.now).finish()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue pre-sized for `cap` pending events: the arena, the
    /// due heap and the cascade scratch reserve up front, so a workload
    /// that never exceeds `cap` pending events never grows them.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            arena: EventArena::with_capacity(cap),
            levels: (0..LEVELS).map(|_| (0..SLOTS).map(|_| Vec::new()).collect()).collect(),
            level_len: [0; LEVELS],
            overflow: BinaryHeap::new(),
            ready: BinaryHeap::with_capacity(cap),
            cascade_scratch: Vec::new(),
            cursor: 0,
            len: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current clock: the timestamp of the last popped event (or zero).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Return the queue to its freshly-constructed state — clock at
    /// zero, sequence counter at zero, nothing pending — retaining every
    /// buffer's capacity (arena slots, wheel slot vectors, heaps,
    /// cascade scratch). A reset queue schedules and pops exactly like a
    /// cold one; recycling it across worlds is invisible to the
    /// simulation (E25 arena-reuse).
    pub fn reset(&mut self) {
        self.arena.reset();
        for level in &mut self.levels {
            for slot in level {
                slot.clear();
            }
        }
        self.level_len = [0; LEVELS];
        self.overflow.clear();
        self.ready.clear();
        self.cascade_scratch.clear();
        self.cursor = 0;
        self.len = 0;
        self.next_seq = 0;
        self.now = SimTime::ZERO;
        self.processed = 0;
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to `now` — the event fires
    /// immediately on the next pop. (This arises when a zero-latency hop
    /// computes a delivery time equal to the current instant.)
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let handle = self.arena.insert(event);
        self.place(Ticket { at, seq, handle });
    }

    /// Route a ticket to the due set, a wheel slot, or the overflow tier.
    fn place(&mut self, entry: Ticket) {
        let ns = entry.at.as_nanos();
        // At or before the slot currently being drained: it is due now.
        // (This also catches clock-clamped entries "behind" the cursor.)
        if ns < self.cursor + (1 << GRAN_BITS) {
            self.ready.push(entry);
            return;
        }
        for level in 0..LEVELS {
            // The entry belongs at `level` iff all bits above that level's
            // slot index agree with the cursor's — i.e. it lands within the
            // window the level spans from the cursor's position.
            let shift = level_shift(level) + SLOT_BITS;
            if (ns >> shift) == (self.cursor >> shift) {
                let slot = (ns >> level_shift(level)) as usize & (SLOTS - 1);
                self.levels[level][slot].push(entry);
                self.level_len[level] += 1;
                return;
            }
        }
        self.overflow.push(entry);
    }

    /// Move the cursor to the next populated slot and drain it into
    /// `ready`. Precondition: `ready` is empty and `len > 0`.
    fn advance(&mut self) {
        loop {
            // A cascade may have routed entries straight into `ready` (they
            // landed at or before the moved cursor's slot); those are the
            // earliest pending events, so stop here.
            if !self.ready.is_empty() {
                return;
            }
            // Find the first populated level-0 slot at or after the cursor
            // within the current level-0 window.
            if self.level_len[0] > 0 {
                let start = (self.cursor >> GRAN_BITS) as usize & (SLOTS - 1);
                for slot in start..SLOTS {
                    if !self.levels[0][slot].is_empty() {
                        self.level_len[0] -= self.levels[0][slot].len();
                        // Align the cursor with the drained slot.
                        let window = self.cursor >> (GRAN_BITS + SLOT_BITS);
                        self.cursor = (window << SLOT_BITS | slot as u64) << GRAN_BITS;
                        // Drain in place: the slot vector keeps its
                        // capacity for the wheel's next lap.
                        self.ready.extend(self.levels[0][slot].drain(..));
                        return;
                    }
                }
            }
            // Level-0 window exhausted: cascade the next populated slot of
            // the first higher level that has one, re-placing its entries
            // (they now fit lower levels relative to the moved cursor).
            let mut cascaded = false;
            for level in 1..LEVELS {
                if self.level_len[level] == 0 {
                    continue;
                }
                let shift = level_shift(level);
                let start = (self.cursor >> shift) as usize & (SLOTS - 1);
                // Entries at this level are strictly after the cursor's own
                // slot's lower-level window, so scanning from `start` is
                // safe: slot `start` can only hold entries not yet cascaded.
                for slot in start..SLOTS {
                    if self.levels[level][slot].is_empty() {
                        continue;
                    }
                    self.level_len[level] -= self.levels[level][slot].len();
                    let window = self.cursor >> (shift + SLOT_BITS);
                    self.cursor = (window << SLOT_BITS | slot as u64) << shift;
                    // Move the tickets through the reusable scratch (both
                    // vectors retain capacity) and re-place them against
                    // the moved cursor.
                    let mut scratch = std::mem::take(&mut self.cascade_scratch);
                    scratch.append(&mut self.levels[level][slot]);
                    for e in scratch.drain(..) {
                        self.place(e);
                    }
                    self.cascade_scratch = scratch;
                    cascaded = true;
                    break;
                }
                if cascaded {
                    break;
                }
            }
            if cascaded {
                continue;
            }
            // Wheel fully drained: re-anchor at the overflow's earliest
            // entry and pull in everything within the new span.
            let head = self.overflow.pop().expect("len > 0 but queue empty");
            self.cursor = head.at.as_nanos() >> GRAN_BITS << GRAN_BITS;
            let span_end = {
                let shift = level_shift(LEVELS - 1) + SLOT_BITS;
                ((self.cursor >> shift) + 1) << shift
            };
            self.ready.push(head);
            while let Some(peek) = self.overflow.peek() {
                if peek.at.as_nanos() >= span_end {
                    break;
                }
                let e = self.overflow.pop().unwrap();
                self.place(e);
            }
            return;
        }
    }

    /// Make `ready` non-empty if any event is pending.
    fn ensure_ready(&mut self) {
        if self.ready.is_empty() && self.len > 0 {
            self.advance();
        }
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if let Some(e) = self.ready.peek() {
            return Some(e.at);
        }
        // Cold path (`&self`, so no cursor advance): scan the wheel and the
        // overflow head. Only hit by callers polling an idle queue.
        let mut min: Option<SimTime> = None;
        for level in 0..LEVELS {
            if self.level_len[level] == 0 {
                continue;
            }
            for slot in &self.levels[level] {
                for e in slot {
                    if min.is_none_or(|m| e.at < m) {
                        min = Some(e.at);
                    }
                }
            }
        }
        if let Some(e) = self.overflow.peek() {
            if min.is_none_or(|m| e.at < m) {
                min = Some(e.at);
            }
        }
        min
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.ensure_ready();
        let entry = self.ready.pop()?;
        self.len -= 1;
        self.processed += 1;
        self.now = entry.at;
        let event = self
            .arena
            .remove(entry.handle)
            .expect("every ticket in the wheel maps to a live arena slot");
        Some((entry.at, event))
    }

    /// Pop the next event only if it is due at or before `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        self.ensure_ready();
        if self.ready.peek()?.at <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// Drop all pending events (used when a scenario is reset).
    pub fn clear(&mut self) {
        for level in &mut self.levels {
            for slot in level {
                slot.clear();
            }
        }
        self.level_len = [0; LEVELS];
        self.overflow.clear();
        self.ready.clear();
        self.arena.clear();
        self.len = 0;
    }
}

/// The original `BinaryHeap`-backed queue, kept as the ordering reference
/// for the timer wheel (see `tests/sweep_props.rs`) and for benchmarks.
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    /// Events popped over the queue's lifetime.
    pub processed: u64,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue whose heap is pre-sized for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        HeapEventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at` (clamped to `now`).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        self.processed += 1;
        Some((entry.at, entry.event))
    }

    /// Pop the next event only if it is due at or before `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek()?.at <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Return the queue to its freshly-constructed state, retaining the
    /// heap's capacity (see [`EventQueue::reset`]).
    pub fn reset(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.now = SimTime::ZERO;
        self.processed = 0;
    }
}

/// Which [`AnyEventQueue`] backend a simulation runs on.
///
/// The two backends share one ordering contract (proptested in this
/// module and in `tests/trace_diff_props.rs`); selecting `Heap` exists so
/// the differential harness can run whole worlds against the reference
/// queue and byte-compare the traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// The hierarchical timer wheel ([`EventQueue`]) — the default.
    #[default]
    Wheel,
    /// The `BinaryHeap` reference ([`HeapEventQueue`]).
    Heap,
}

/// An event queue whose backend is chosen at construction time.
///
/// Both arms expose identical semantics, so a `Network` built on either
/// must produce byte-identical traces from the same seed — the
/// wheel-vs-heap invariant the golden-trace harness enforces.
pub enum AnyEventQueue<E> {
    /// Timer-wheel backend.
    Wheel(EventQueue<E>),
    /// Binary-heap reference backend.
    Heap(HeapEventQueue<E>),
}

impl<E> std::fmt::Debug for HeapEventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapEventQueue")
            .field("len", &self.heap.len())
            .field("now", &self.now)
            .finish()
    }
}

impl<E> std::fmt::Debug for AnyEventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnyEventQueue::Wheel(q) => f.debug_tuple("Wheel").field(q).finish(),
            AnyEventQueue::Heap(q) => f.debug_tuple("Heap").field(q).finish(),
        }
    }
}

impl<E> AnyEventQueue<E> {
    /// An empty queue on the requested backend.
    pub fn new(kind: QueueKind) -> Self {
        Self::with_capacity(kind, 0)
    }

    /// An empty queue on the requested backend, pre-sized for `cap`
    /// pending events (arena + due heap for the wheel, the heap itself
    /// for the reference backend).
    pub fn with_capacity(kind: QueueKind, cap: usize) -> Self {
        match kind {
            QueueKind::Wheel => AnyEventQueue::Wheel(EventQueue::with_capacity(cap)),
            QueueKind::Heap => AnyEventQueue::Heap(HeapEventQueue::with_capacity(cap)),
        }
    }

    /// The current clock.
    pub fn now(&self) -> SimTime {
        match self {
            AnyEventQueue::Wheel(q) => q.now(),
            AnyEventQueue::Heap(q) => q.now(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match self {
            AnyEventQueue::Wheel(q) => q.len(),
            AnyEventQueue::Heap(q) => q.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which backend this queue runs on.
    pub fn kind(&self) -> QueueKind {
        match self {
            AnyEventQueue::Wheel(_) => QueueKind::Wheel,
            AnyEventQueue::Heap(_) => QueueKind::Heap,
        }
    }

    /// Return the queue to its freshly-constructed state, retaining
    /// every buffer's capacity (see [`EventQueue::reset`]).
    pub fn reset(&mut self) {
        match self {
            AnyEventQueue::Wheel(q) => q.reset(),
            AnyEventQueue::Heap(q) => q.reset(),
        }
    }

    /// Schedule `event` at absolute time `at` (clamped to `now`).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        match self {
            AnyEventQueue::Wheel(q) => q.schedule(at, event),
            AnyEventQueue::Heap(q) => q.schedule(at, event),
        }
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match self {
            AnyEventQueue::Wheel(q) => q.peek_time(),
            AnyEventQueue::Heap(q) => q.peek_time(),
        }
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match self {
            AnyEventQueue::Wheel(q) => q.pop(),
            AnyEventQueue::Heap(q) => q.pop(),
        }
    }

    /// Pop the next event only if it is due at or before `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self {
            AnyEventQueue::Wheel(q) => q.pop_until(deadline),
            AnyEventQueue::Heap(q) => q.pop_until(deadline),
        }
    }

    /// Events popped over the queue's lifetime.
    pub fn processed(&self) -> u64 {
        match self {
            AnyEventQueue::Wheel(q) => q.processed,
            AnyEventQueue::Heap(q) => q.processed,
        }
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        match self {
            AnyEventQueue::Wheel(q) => q.clear(),
            AnyEventQueue::Heap(q) => q.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn arena_insert_get_remove_round_trip() {
        let mut a = EventArena::new();
        let h1 = a.insert("one");
        let h2 = a.insert("two");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(h1), Some(&"one"));
        assert_eq!(a.get(h2), Some(&"two"));
        assert_eq!(a.remove(h1), Some("one"));
        assert_eq!(a.len(), 1);
        assert_eq!(a.get(h1), None, "freed slot must not resolve");
        assert_eq!(a.remove(h1), None, "double free is an error, not a steal");
        assert_eq!(a.remove(h2), Some("two"));
        assert!(a.is_empty());
    }

    #[test]
    fn arena_recycles_slots_and_detects_stale_handles() {
        let mut a = EventArena::new();
        let h1 = a.insert(10u32);
        assert_eq!(a.remove(h1), Some(10));
        // The freed slot is reused (intrusive free list), under a new
        // generation: the old handle stays dead.
        let h2 = a.insert(20);
        assert_eq!(h2.index(), h1.index());
        assert_ne!(h2.generation(), h1.generation());
        assert_eq!(a.get(h1), None);
        assert_eq!(a.remove(h1), None);
        assert_eq!(a.get(h2), Some(&20));
        // Capacity did not grow past the single recycled slot.
        assert_eq!(a.slots.len(), 1);
    }

    #[test]
    fn arena_free_list_is_lifo_over_many_slots() {
        let mut a = EventArena::new();
        let handles: Vec<_> = (0..8u32).map(|i| a.insert(i)).collect();
        for h in &handles {
            assert!(a.remove(*h).is_some());
        }
        // Reinsertion pops the free list (most recently freed first) and
        // never grows the slot vector.
        for i in 0..8u32 {
            let h = a.insert(100 + i);
            assert_eq!(h.index(), handles[7 - i as usize].index());
        }
        assert_eq!(a.slots.len(), 8);
    }

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_stable_for_equal_timestamps() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_millis(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_and_clamps_past_schedules() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "x");
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(10));
        // Scheduling in the past clamps to now.
        q.schedule(SimTime::from_millis(1), "late");
        assert_eq!(q.pop(), Some((SimTime::from_millis(10), "late")));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.pop_until(SimTime::from_millis(15)), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop_until(SimTime::from_millis(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn far_future_events_cross_the_overflow_tier() {
        let mut q = EventQueue::new();
        // Beyond the wheel's ~1.07 s span: lands in overflow.
        q.schedule(SimTime::from_secs(3600), "far");
        q.schedule(SimTime::from_secs(7200), "farther");
        q.schedule(SimTime::from_micros(3), "near");
        assert_eq!(q.pop(), Some((SimTime::from_micros(3), "near")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3600), "far")));
        // Scheduling relative to the advanced clock still orders correctly.
        q.schedule(SimTime::from_secs(3601), "mid");
        assert_eq!(q.pop(), Some((SimTime::from_secs(3601), "mid")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(7200), "farther")));
        assert!(q.is_empty());
        assert_eq!(q.processed, 4);
    }

    #[test]
    fn peek_time_without_popping() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(9), "later");
        q.schedule(SimTime::from_millis(7), "sooner");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
    }

    #[test]
    fn clear_empties_every_tier() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(1), 1);
        q.schedule(SimTime::from_millis(500), 2);
        q.schedule(SimTime::from_secs(50), 3);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn heap_queue_matches_wheel_surface() {
        // The reference queue grew `pop_until`/`clear`/`processed` so whole
        // worlds can run on either backend; pin the shared semantics.
        let mut q = HeapEventQueue::new();
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.pop_until(SimTime::from_millis(15)), Some((SimTime::from_millis(10), "a")));
        assert_eq!(q.pop_until(SimTime::from_millis(15)), None);
        assert_eq!(q.processed, 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn any_queue_backends_agree() {
        let mut wheel = AnyEventQueue::new(QueueKind::Wheel);
        let mut heap = AnyEventQueue::new(QueueKind::Heap);
        for q in [&mut wheel, &mut heap] {
            q.schedule(SimTime::from_millis(5), 1u32);
            q.schedule(SimTime::from_millis(5), 2);
            q.schedule(SimTime::from_micros(1), 0);
        }
        loop {
            assert_eq!(wheel.peek_time(), heap.peek_time());
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(wheel.processed(), 3);
        assert_eq!(heap.processed(), 3);
    }

    proptest! {
        #[test]
        fn prop_pop_order_is_nondecreasing(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((at, _)) = q.pop() {
                prop_assert!(at >= last);
                last = at;
            }
        }

        #[test]
        fn prop_all_events_delivered(times in proptest::collection::vec(0u64..1000, 0..100)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut seen = vec![false; times.len()];
            while let Some((_, i)) = q.pop() {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
            prop_assert!(seen.iter().all(|s| *s));
        }

        #[test]
        fn prop_wheel_matches_heap_order(times in proptest::collection::vec(0u64..5_000_000_000, 1..300)) {
            let mut wheel = EventQueue::new();
            let mut heap = HeapEventQueue::new();
            for (i, t) in times.iter().enumerate() {
                wheel.schedule(SimTime::from_nanos(*t), i);
                heap.schedule(SimTime::from_nanos(*t), i);
            }
            loop {
                let (a, b) = (wheel.pop(), heap.pop());
                prop_assert_eq!(a, b);
                if b.is_none() {
                    break;
                }
            }
        }
    }
}
