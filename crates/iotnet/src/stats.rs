//! Counters and latency histograms used across the substrate and the
//! benchmark harness.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Aggregate network counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Packets injected by endpoints.
    pub sent: u64,
    /// Packets delivered to endpoints.
    pub delivered: u64,
    /// Packets lost on links (loss probability or failed links).
    pub dropped_loss: u64,
    /// Packets dropped by switch policy (flow-table `Drop`).
    pub dropped_policy: u64,
    /// Packets dropped by an inline processor (µmbox verdict).
    pub dropped_inline: u64,
    /// Packets that transited an inline processor.
    pub steered: u64,
    /// Packets copied to the mirror/capture channel.
    pub mirrored: u64,
    /// Packets discarded at an endpoint NIC (wrong destination MAC after a
    /// flood).
    pub nic_filtered: u64,
}

/// A simple sample-keeping histogram of durations.
///
/// Keeps raw samples (bounded by `cap`) so the harness can report exact
/// percentiles; the experiments generate at most a few hundred thousand
/// samples per run so this is cheap and exact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DurationHist {
    samples: Vec<u64>,
    cap: usize,
    /// Count of all recorded samples, including those beyond `cap`.
    pub count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for DurationHist {
    fn default() -> Self {
        DurationHist::new()
    }
}

impl DurationHist {
    /// A histogram retaining up to `cap` raw samples (percentiles are
    /// computed over retained samples; mean/max over all samples).
    pub fn with_capacity(cap: usize) -> DurationHist {
        DurationHist { samples: Vec::new(), cap, count: 0, sum_ns: 0, max_ns: 0 }
    }

    /// A histogram with the default retention (1M samples).
    pub fn new() -> DurationHist {
        Self::with_capacity(1_000_000)
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        self.count += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
        if self.samples.len() < self.cap {
            self.samples.push(ns);
        }
    }

    /// Number of retained samples.
    pub fn retained(&self) -> usize {
        self.samples.len()
    }

    /// Mean over all recorded samples.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_ns / self.count as u128) as u64)
        }
    }

    /// Maximum recorded sample.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// The `p`-th percentile (0–100) over retained samples.
    pub fn percentile(&self, p: f64) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        SimDuration::from_nanos(sorted[rank.min(sorted.len() - 1)])
    }

    /// Median (p50).
    pub fn median(&self) -> SimDuration {
        self.percentile(50.0)
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.count = 0;
        self.sum_ns = 0;
        self.max_ns = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basics() {
        let mut h = DurationHist::new();
        for ms in 1..=100u64 {
            h.record(SimDuration::from_millis(ms));
        }
        assert_eq!(h.count, 100);
        let med = h.median().as_millis();
        assert!((50..=51).contains(&med), "median {med}");
        assert_eq!(h.percentile(99.0).as_millis(), 99);
        assert_eq!(h.max().as_millis(), 100);
        assert_eq!(h.mean().as_millis(), 50); // (1+..+100)/100 = 50.5, trunc to ms
        h.clear();
        assert_eq!(h.count, 0);
        assert_eq!(h.median(), SimDuration::ZERO);
    }

    #[test]
    fn histogram_capacity_bound() {
        let mut h = DurationHist::with_capacity(10);
        for i in 0..100u64 {
            h.record(SimDuration::from_nanos(i));
        }
        assert_eq!(h.retained(), 10);
        assert_eq!(h.count, 100);
        assert_eq!(h.max().as_nanos(), 99);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = DurationHist::new();
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.percentile(99.0), SimDuration::ZERO);
    }
}
