//! Simulated time.
//!
//! All timing in the reproduction is driven by a virtual clock measured in
//! nanoseconds since simulation start. Using an explicit clock (rather than
//! wall time) keeps every experiment deterministic and lets the benchmark
//! harness report latencies that are a function of the modelled system, not
//! of the machine running the simulation.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};
use serde::{Deserialize, Serialize};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounds to nanoseconds).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1e9).round().max(0.0) as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Duration needed to serialize `bits` onto a link of `bits_per_sec`.
    ///
    /// Returns [`SimDuration::ZERO`] for an infinite-rate link
    /// (`bits_per_sec == 0` is treated as infinite, matching
    /// [`crate::link::LinkParams`]).
    pub fn transmission(bits: u64, bits_per_sec: u64) -> SimDuration {
        if bits_per_sec == 0 {
            SimDuration::ZERO
        } else {
            // ceil(bits * 1e9 / rate) without overflow for realistic sizes.
            let ns = (bits as u128 * 1_000_000_000u128).div_ceil(bits_per_sec as u128);
            SimDuration(ns.min(u64::MAX as u128) as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3000));
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5000));
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!((t - SimTime::from_millis(10)).as_millis(), 5);
        // Saturating: earlier - later == 0.
        assert_eq!(SimTime::from_millis(1) - SimTime::from_millis(9), SimDuration::ZERO);
    }

    #[test]
    fn transmission_delay() {
        // 1500-byte packet on 10 Mbit/s: 12000 bits / 1e7 bps = 1.2 ms.
        let d = SimDuration::transmission(1500 * 8, 10_000_000);
        assert_eq!(d.as_micros(), 1200);
        // Infinite-rate link.
        assert_eq!(SimDuration::transmission(1 << 20, 0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(1500)), "1.50ms");
        assert_eq!(format!("{}", SimDuration::from_millis(2500)), "2.500s");
    }

    #[test]
    fn duration_since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(3);
        assert_eq!(b.duration_since(a), SimDuration::from_secs(2));
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
    }
}
