//! Links: latency, bandwidth, loss and failure.
//!
//! A link connects two topology nodes. Packet delivery across a link takes
//! `propagation + serialization` time; serialization is queued behind the
//! previous packet on the same link (a simple fluid model of an output
//! queue), which is what makes the data-plane overhead experiment (E10)
//! show queueing effects under load.

use crate::time::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Static parameters of a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Bandwidth in bits per second; `0` means infinite (no serialization
    /// delay, no queueing).
    pub bandwidth_bps: u64,
    /// Independent per-packet loss probability in `[0, 1]`.
    pub loss: f64,
}

impl LinkParams {
    /// A fast wired LAN segment: 100 µs, 1 Gbit/s, lossless.
    pub fn lan() -> LinkParams {
        LinkParams {
            latency: SimDuration::from_micros(100),
            bandwidth_bps: 1_000_000_000,
            loss: 0.0,
        }
    }

    /// A home Wi-Fi hop: 2 ms, 50 Mbit/s, 0.5% loss.
    pub fn wifi() -> LinkParams {
        LinkParams { latency: SimDuration::from_millis(2), bandwidth_bps: 50_000_000, loss: 0.005 }
    }

    /// A low-power IoT radio (802.15.4-class): 5 ms, 250 kbit/s, 2% loss.
    pub fn lowpower_radio() -> LinkParams {
        LinkParams { latency: SimDuration::from_millis(5), bandwidth_bps: 250_000, loss: 0.02 }
    }

    /// A WAN/Internet path: 40 ms, 100 Mbit/s, 0.1% loss. Used for the
    /// remote-attacker and cloud-service attachment points.
    pub fn wan() -> LinkParams {
        LinkParams {
            latency: SimDuration::from_millis(40),
            bandwidth_bps: 100_000_000,
            loss: 0.001,
        }
    }

    /// An ideal link (zero latency, infinite bandwidth, lossless) for
    /// microbenchmarks that must isolate processing cost.
    pub fn ideal() -> LinkParams {
        LinkParams { latency: SimDuration::ZERO, bandwidth_bps: 0, loss: 0.0 }
    }
}

/// Runtime state of a link (one direction; the topology stores one `Link`
/// per direction so asymmetric paths are expressible).
#[derive(Debug, Clone)]
pub struct Link {
    /// Static parameters.
    pub params: LinkParams,
    /// Whether the link is administratively/physically up.
    pub up: bool,
    /// Time at which the transmitter becomes free (fluid queue model).
    tx_free_at: SimTime,
    /// Packets dropped by loss or failure.
    pub dropped: u64,
    /// Packets carried.
    pub carried: u64,
    /// Bytes carried.
    pub bytes: u64,
    /// Transient loss-probability override (fault-injection loss burst);
    /// while `Some`, it replaces `params.loss`.
    pub burst_loss: Option<f64>,
    /// Transient probability that a carried frame is corrupted in flight
    /// and discarded at the receiver (failed FCS). `0.0` outside bursts.
    pub corrupt_rate: f64,
    /// Packets discarded because they were corrupted in flight.
    pub corrupted: u64,
}

impl Link {
    /// A new, up link with the given parameters.
    pub fn new(params: LinkParams) -> Link {
        Link {
            params,
            up: true,
            tx_free_at: SimTime::ZERO,
            dropped: 0,
            carried: 0,
            bytes: 0,
            burst_loss: None,
            corrupt_rate: 0.0,
            corrupted: 0,
        }
    }

    /// Reset every runtime field back to its freshly-constructed value
    /// (up, idle transmitter, zeroed counters, no fault overrides) while
    /// keeping the static parameters. A resident world reuses its wiring
    /// across rounds; this makes a reused link indistinguishable from a
    /// cold-built one.
    pub fn reset_runtime(&mut self) {
        self.up = true;
        self.tx_free_at = SimTime::ZERO;
        self.dropped = 0;
        self.carried = 0;
        self.bytes = 0;
        self.burst_loss = None;
        self.corrupt_rate = 0.0;
        self.corrupted = 0;
    }

    /// The loss probability currently in force: the burst override if one
    /// is active, the static parameter otherwise.
    pub fn effective_loss(&self) -> f64 {
        self.burst_loss.unwrap_or(self.params.loss)
    }

    /// Attempt to transmit `wire_bits` at time `now`.
    ///
    /// Returns `Some(delivery_time)` if the packet survives, `None` if it
    /// is lost, corrupted in flight, or the link is down. The transmitter
    /// queue is advanced either way only on success.
    pub fn transmit<R: Rng>(
        &mut self,
        now: SimTime,
        wire_bits: u64,
        rng: &mut R,
    ) -> Option<SimTime> {
        if !self.up {
            self.dropped += 1;
            return None;
        }
        let loss = self.effective_loss();
        if loss > 0.0 && rng.gen::<f64>() < loss {
            self.dropped += 1;
            return None;
        }
        if self.corrupt_rate > 0.0 && rng.gen::<f64>() < self.corrupt_rate {
            self.corrupted += 1;
            return None;
        }
        let start = now.max(self.tx_free_at);
        let ser = SimDuration::transmission(wire_bits, self.params.bandwidth_bps);
        let done_tx = start + ser;
        self.tx_free_at = done_tx;
        self.carried += 1;
        self.bytes += wire_bits / 8;
        Some(done_tx + self.params.latency)
    }

    /// Current queueing delay a packet arriving at `now` would see before
    /// its serialization starts.
    pub fn queue_delay(&self, now: SimTime) -> SimDuration {
        self.tx_free_at.duration_since(now)
    }

    /// Take the link down (failure injection).
    pub fn fail(&mut self) {
        self.up = false;
    }

    /// Bring the link back up.
    pub fn repair(&mut self) {
        self.up = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lossless_delivery_time() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut link = Link::new(LinkParams {
            latency: SimDuration::from_millis(1),
            bandwidth_bps: 8_000_000, // 1 byte/µs
            loss: 0.0,
        });
        // 1000-byte packet: 1000 µs serialization + 1 ms latency = 2 ms.
        let t = link.transmit(SimTime::ZERO, 8000, &mut rng).unwrap();
        assert_eq!(t.as_micros(), 2000);
        assert_eq!(link.carried, 1);
    }

    #[test]
    fn queueing_behind_previous_packet() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut link = Link::new(LinkParams {
            latency: SimDuration::ZERO,
            bandwidth_bps: 8_000, // 1 ms per byte
            loss: 0.0,
        });
        let t1 = link.transmit(SimTime::ZERO, 8, &mut rng).unwrap();
        let t2 = link.transmit(SimTime::ZERO, 8, &mut rng).unwrap();
        assert_eq!(t1.as_millis(), 1);
        assert_eq!(t2.as_millis(), 2); // queued behind the first
        assert_eq!(link.queue_delay(SimTime::ZERO).as_millis(), 2);
    }

    #[test]
    fn down_link_drops() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut link = Link::new(LinkParams::ideal());
        link.fail();
        assert!(link.transmit(SimTime::ZERO, 100, &mut rng).is_none());
        assert_eq!(link.dropped, 1);
        link.repair();
        assert!(link.transmit(SimTime::ZERO, 100, &mut rng).is_some());
    }

    #[test]
    fn lossy_link_drops_roughly_at_rate() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut link =
            Link::new(LinkParams { latency: SimDuration::ZERO, bandwidth_bps: 0, loss: 0.3 });
        let mut delivered = 0;
        for _ in 0..10_000 {
            if link.transmit(SimTime::ZERO, 100, &mut rng).is_some() {
                delivered += 1;
            }
        }
        let rate = delivered as f64 / 10_000.0;
        assert!((rate - 0.7).abs() < 0.03, "delivery rate {rate}");
    }

    #[test]
    fn burst_loss_overrides_static_loss() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut link = Link::new(LinkParams::ideal()); // static loss 0.0
        assert_eq!(link.effective_loss(), 0.0);
        link.burst_loss = Some(1.0);
        assert_eq!(link.effective_loss(), 1.0);
        assert!(link.transmit(SimTime::ZERO, 100, &mut rng).is_none());
        assert_eq!(link.dropped, 1);
        link.burst_loss = None;
        assert!(link.transmit(SimTime::ZERO, 100, &mut rng).is_some());
    }

    #[test]
    fn corruption_burst_discards_frames() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut link = Link::new(LinkParams::ideal());
        link.corrupt_rate = 1.0;
        assert!(link.transmit(SimTime::ZERO, 100, &mut rng).is_none());
        assert_eq!(link.corrupted, 1);
        assert_eq!(link.dropped, 0); // corruption is counted separately
        link.corrupt_rate = 0.0;
        assert!(link.transmit(SimTime::ZERO, 100, &mut rng).is_some());
    }

    #[test]
    fn ideal_link_is_instant() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut link = Link::new(LinkParams::ideal());
        let t = link.transmit(SimTime::from_millis(5), 1 << 20, &mut rng).unwrap();
        assert_eq!(t, SimTime::from_millis(5));
    }
}
