//! `iotnet` — the network substrate of the IoTSec reproduction.
//!
//! The HotNets '15 IoTSec paper assumes an enterprise or home network in
//! which every IoT device's first-hop switch or access point can be
//! programmed (SDN-style) to steer traffic through security functions.
//! This crate provides that substrate as a **deterministic discrete-event
//! simulation**:
//!
//! * [`time`] — simulated clock ([`time::SimTime`]) and durations.
//! * [`engine`] — a time-ordered, FIFO-stable event queue.
//! * [`faults`] — deterministic fault injection over the event wheel:
//!   link flaps (fail *and* heal), loss/corruption bursts, partitions.
//! * [`addr`] — MAC/IPv4 addressing and node identifiers.
//! * [`packet`] — Ethernet/IPv4/UDP/TCP packet model with a real wire
//!   codec (encode to bytes, parse back), in the spirit of smoltcp's
//!   explicit representation types.
//! * [`flow`] — OpenFlow-like match/action rules and priority flow tables.
//! * [`switch`] — SDN switches with flow tables, default actions and
//!   per-port counters.
//! * [`link`] — links with latency, bandwidth, loss and failure state.
//! * [`topology`] — topology graph plus builders for the deployments the
//!   paper targets (smart home behind an IoT router, enterprise with an
//!   on-premise NFV cluster).
//! * [`net`] — the [`net::Network`]: owns switches and links, moves
//!   packets between attached endpoints, invokes inline packet
//!   processors (the hook µmboxes attach to), and produces deliveries.
//! * [`capture`] — ring-buffer packet capture with filters, used by the
//!   IDS µmboxes, the learning layer and the test suite.
//!
//! Everything is driven by an explicit event clock and seeded RNG so that
//! every experiment in the reproduction is exactly repeatable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod capture;
pub mod engine;
pub mod faults;
pub mod flow;
pub mod link;
pub mod net;
pub mod packet;
pub mod stats;
pub mod switch;
pub mod time;
pub mod topology;

pub use addr::{EndpointId, Ipv4Addr, MacAddr, NodeId, PortNo, SwitchId};
pub use engine::{EventArena, EventHandle, EventQueue};
pub use faults::{FaultScheduler, NetFault};
pub use flow::{FlowAction, FlowMatch, FlowRule, FlowTable, PackedFlowKey};
pub use link::{Link, LinkParams};
pub use net::{Delivery, ForwardList, InlineProcessor, InlineVerdict, Network, SteerHandle};
pub use packet::{EthernetHeader, Ipv4Header, PackedHeaders, Packet, TransportHeader};
pub use switch::Switch;
pub use time::{SimDuration, SimTime};
pub use topology::{Topology, TopologyBuilder};
